"""Tests for the experiment drivers (at tiny scale, few alphas)."""

from __future__ import annotations

import pytest

from repro.bench import experiments
from repro.errors import MiningError


class TestDatasetSuite:
    def test_all_four_datasets(self):
        suite = experiments.dataset_suite("tiny")
        assert set(suite) == {"BK", "GW", "AMINER", "SYN"}
        for network in suite.values():
            assert network.num_edges > 0
            assert network.databases

    def test_unknown_scale_rejected(self):
        with pytest.raises(MiningError):
            experiments.make_bk("huge")

    def test_scales_ordered(self):
        tiny = experiments.make_bk("tiny")
        small = experiments.make_bk("small")
        assert tiny.num_vertices < small.num_vertices


class TestTable2:
    def test_rows_and_columns(self):
        rows, report = experiments.experiment_table2("tiny")
        assert len(rows) == 4
        assert {"#Vertices", "#Edges", "#Transactions"} <= set(rows[0])
        assert "Table 2" in report


class TestFig3:
    def test_sweep_shape(self):
        rows, report = experiments.experiment_fig3(
            dataset="BK",
            scale="tiny",
            alphas=(0.3, 1.0),
            epsilons=(0.2,),
            sample_edges=60,
            max_length=2,
        )
        # 2 alphas × (tcfi + tcfa + 1 tcs) = 6 rows
        assert len(rows) == 6
        assert "Figure 3" in report
        methods = {row["run"] for row in rows}
        assert methods == {"tcfi", "tcfa", "tcs(eps=0.2)"}

    def test_exactness_in_sweep(self):
        rows, _ = experiments.experiment_fig3(
            dataset="BK",
            scale="tiny",
            alphas=(0.5,),
            epsilons=(0.1,),
            sample_edges=60,
            max_length=2,
        )
        by_method = {row["run"]: row for row in rows}
        assert by_method["tcfi"]["NP"] == by_method["tcfa"]["NP"]
        assert by_method["tcs(eps=0.1)"]["NP"] <= by_method["tcfi"]["NP"]


class TestFig4:
    def test_scalability_rows(self):
        rows, report = experiments.experiment_fig4(
            dataset="BK",
            scale="tiny",
            sizes=(40, 80),
            methods=("tcfi",),
            max_length=2,
        )
        assert len(rows) == 2
        assert rows[0]["edges"] <= rows[1]["edges"]
        assert "Figure 4" in report


class TestTable3AndFig5:
    def test_indexing_and_queries(self):
        rows, report, trees = experiments.experiment_table3(
            scale="tiny", datasets=("BK",), max_length=2
        )
        assert len(rows) == 1
        assert rows[0]["nodes"] > 0
        assert "peak_MB" in rows[0]

        tree = trees["BK"]
        qba_rows, qba_report = experiments.experiment_fig5_qba(
            tree, "BK", alpha_step=0.5, repeats=1
        )
        assert qba_rows[0]["retrieved_nodes"] == tree.num_nodes
        assert qba_rows[-1]["retrieved_nodes"] == 0

        qbp_rows, qbp_report = experiments.experiment_fig5_qbp(
            tree, "BK", patterns_per_length=3, repeats=1
        )
        assert qbp_rows
        assert qbp_rows[0]["pattern_length"] == 1


class TestAblation:
    def test_rows(self):
        rows, report = experiments.experiment_ablation_pruning(
            dataset="BK", scale="tiny", alphas=(0.5,)
        )
        assert len(rows) == 3
        assert "Ablation" in report
