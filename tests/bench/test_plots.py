"""Tests for the ASCII plotter."""

from __future__ import annotations

from repro.bench.plots import ascii_plot


class TestAsciiPlot:
    def test_basic_render(self):
        text = ascii_plot(
            [1, 10, 100],
            {"tcfi": [0.01, 0.1, 1.0], "tcfa": [0.02, 0.5, 10.0]},
            title="time vs size",
        )
        lines = text.splitlines()
        assert lines[0] == "time vs size"
        assert any("o" in line for line in lines)  # first series marker
        assert any("x" in line for line in lines)  # second series marker
        assert "o = tcfi" in text
        assert "x = tcfa" in text

    def test_log_scale_skips_zeros(self):
        text = ascii_plot([1, 2, 3], {"s": [0.0, 1.0, 10.0]}, log_y=True)
        # Renders without error; zero point skipped, two markers plotted
        # (count only chart rows, which start with "|").
        marker_cells = sum(
            line.count("o")
            for line in text.splitlines()
            if line.startswith("|")
        )
        assert marker_cells == 2

    def test_linear_scale(self):
        text = ascii_plot(
            [0, 1, 2], {"s": [0.0, 5.0, 10.0]}, log_y=False
        )
        assert "y(lin)" in text

    def test_monotone_series_has_monotone_rows(self):
        """A strictly increasing series must render left-low to right-high."""
        text = ascii_plot(
            [1, 2, 4, 8], {"s": [1.0, 10.0, 100.0, 1000.0]},
            width=40, height=10,
        )
        rows = [
            (line_index, line.index("o"))
            for line_index, line in enumerate(text.splitlines())
            if line.startswith("|") and "o" in line
        ]
        # Sorted by row (top first) the column must decrease.
        columns = [col for _, col in rows]
        assert columns == sorted(columns, reverse=True)

    def test_empty_series(self):
        text = ascii_plot([1, 2], {"s": [0.0, 0.0]}, log_y=True)
        assert "(empty)" in text
