"""Tests for ASCII reporting."""

from __future__ import annotations

from repro.bench.reporting import format_series, format_table


class TestFormatTable:
    def test_empty(self):
        assert "(no data)" in format_table([])
        assert "title" in format_table([], title="title")

    def test_alignment_and_header(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = format_table([{"a": 1}], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_missing_cells_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_table(rows)
        assert "b" in text.splitlines()[0]

    def test_float_formatting(self):
        text = format_table([{"x": 0.000001234, "y": 123456.0, "z": 0.5}])
        assert "e-" in text  # tiny value in scientific notation
        assert "e+" in text  # huge value in scientific notation
        assert "0.5" in text

    def test_explicit_columns(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestFormatSeries:
    def test_series_rows(self):
        text = format_series(
            "alpha",
            [0.0, 0.1],
            {"tcfi": [1, 2], "tcfa": [3, 4]},
            title="fig",
        )
        lines = text.splitlines()
        assert lines[0] == "fig"
        assert "alpha" in lines[1]
        assert "tcfi" in lines[1]
        assert len(lines) == 5

    def test_short_series_padded(self):
        text = format_series("x", [1, 2], {"s": [10]})
        assert text  # no exception; missing tail rendered blank
