"""The config-driven experiment fleet: config validation, the
missing-run planner, record round-trips, trajectory summarize, and the
CI trend gate."""

from __future__ import annotations

import json
import sys
import textwrap

import pytest

from repro.bench import fleet
from repro.errors import BenchConfigError

VALID_CONFIG = textwrap.dedent(
    """\
    defaults:
      reps: 3
    profiles:
      smoke: tiny CI workloads
      full: paper-sized workloads
    experiments:
      core/alpha:
        area: core
        driver: fleetpkg.alpha
        run_id: ''
        params:
          nodes: 100
          graph:
            m: 4
            p: 0.7
        profiles:
          smoke:
            reps: 1
            graph:
              m: 2
      serving/beta:
        area: serving
        driver: fleetpkg.beta
        run_id: abc123abc123
        params: {}
    """
)


@pytest.fixture
def config(tmp_path):
    path = tmp_path / "benchmarks" / "fleet.yaml"
    path.parent.mkdir()
    path.write_text(VALID_CONFIG, encoding="utf-8")
    return fleet.load_fleet_config(path)


ENV = {
    "git_sha": "feedfeedfeed",
    "git_dirty": False,
    "timestamp": "2026-08-07T00:00:00+00:00",
    "python": "3.11.7",
    "platform": "test",
    "cpu_count": 1,
}


def make_record(spec, medians, profile="smoke", env=ENV, **meta):
    result = {"medians": medians, "reps": 2}
    if meta:
        result["meta"] = meta
    return fleet.make_record(
        spec, profile, {"nodes": 1}, result, env, run_id=fleet.new_run_id()
    )


class TestLoadConfig:
    def test_valid_config_parses(self, config):
        assert set(config.experiments) == {"core/alpha", "serving/beta"}
        spec = config.experiments["core/alpha"]
        assert spec.area == "core"
        assert spec.driver == "fleetpkg.alpha"
        assert spec.run_id == ""
        assert config.experiments["serving/beta"].run_id == "abc123abc123"
        assert config.root == config.path.resolve().parent.parent

    def _load(self, tmp_path, text):
        path = tmp_path / "fleet.yaml"
        path.write_text(text, encoding="utf-8")
        return fleet.load_fleet_config(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(BenchConfigError, match="cannot read"):
            fleet.load_fleet_config(tmp_path / "nope.yaml")

    def test_no_experiments(self, tmp_path):
        with pytest.raises(BenchConfigError, match="no experiments"):
            self._load(tmp_path, "profiles:\n  smoke: s\n")

    def test_bad_area(self, tmp_path):
        text = VALID_CONFIG.replace("area: core", "area: nuclear", 1)
        with pytest.raises(BenchConfigError, match="area must be one of"):
            self._load(tmp_path, text)

    def test_driver_must_be_dotted(self, tmp_path):
        text = VALID_CONFIG.replace("driver: fleetpkg.alpha", "driver: alpha")
        with pytest.raises(BenchConfigError, match="dotted module path"):
            self._load(tmp_path, text)

    def test_unknown_experiment_keys_rejected(self, tmp_path):
        text = VALID_CONFIG.replace("    params: {}", "    params: {}\n    typo: 1")
        with pytest.raises(BenchConfigError, match="unknown keys.*typo"):
            self._load(tmp_path, text)

    def test_override_of_undeclared_profile(self, tmp_path):
        text = VALID_CONFIG.replace("      smoke:\n        reps: 1",
                                    "      turbo:\n        reps: 1")
        with pytest.raises(BenchConfigError, match="undeclared profile 'turbo'"):
            self._load(tmp_path, text)

    def test_duplicate_experiment_id_rejected(self, tmp_path):
        dup = VALID_CONFIG + (
            "  serving/beta:\n"
            "    area: serving\n"
            "    driver: fleetpkg.other\n"
            "    params: {}\n"
        )
        with pytest.raises(BenchConfigError, match="duplicate key 'serving/beta'"):
            self._load(tmp_path, dup)

    def test_non_string_run_id(self, tmp_path):
        text = VALID_CONFIG.replace("run_id: ''", "run_id: 17", 1)
        with pytest.raises(BenchConfigError, match="run_id must be a string"):
            self._load(tmp_path, text)


class TestResolveParams:
    def test_defaults_then_params_then_profile(self, config):
        spec = config.experiments["core/alpha"]
        full = fleet.resolve_params(config, spec, "full")
        assert full == {"reps": 3, "nodes": 100, "graph": {"m": 4, "p": 0.7}}
        smoke = fleet.resolve_params(config, spec, "smoke")
        # Profile override wins, nested mappings merge key-by-key.
        assert smoke == {"reps": 1, "nodes": 100, "graph": {"m": 2, "p": 0.7}}

    def test_unknown_profile(self, config):
        spec = config.experiments["core/alpha"]
        with pytest.raises(BenchConfigError, match="unknown profile 'turbo'"):
            fleet.resolve_params(config, spec, "turbo")


class TestDumpRoundTrip:
    def test_save_and_reload_preserves_everything(self, config):
        fleet.save_fleet_config(config)
        reloaded = fleet.load_fleet_config(config.path)
        assert reloaded.defaults == config.defaults
        assert reloaded.profiles == config.profiles
        assert reloaded.experiments == config.experiments
        # The machine-managed header survives a rewrite.
        assert "machine-managed" in config.path.read_text(encoding="utf-8")


class TestPlanRuns:
    def test_only_missing_run_ids(self, config):
        todo = fleet.plan_runs(config)
        assert [spec.exp_id for spec in todo] == ["core/alpha"]

    def test_force_selects_all(self, config):
        todo = fleet.plan_runs(config, force=True)
        assert [spec.exp_id for spec in todo] == ["core/alpha", "serving/beta"]

    def test_only_subset(self, config):
        assert fleet.plan_runs(config, only=["serving/beta"]) == []
        todo = fleet.plan_runs(config, only=["serving/beta"], force=True)
        assert [spec.exp_id for spec in todo] == ["serving/beta"]

    def test_unknown_only_id(self, config):
        with pytest.raises(BenchConfigError, match="unknown experiment ids"):
            fleet.plan_runs(config, only=["core/alpha", "nope/x"])

    def test_dry_run_lists_exactly_the_missing_set(self, config, capsys):
        lines: list[str] = []
        records = fleet.run_fleet(
            config, profile="smoke", dry_run=True, echo=lines.append
        )
        assert records == []
        assert lines == [
            "would run core/alpha [core] via fleetpkg.alpha"
        ]


class TestRecords:
    def test_round_trip(self, config, tmp_path):
        spec = config.experiments["core/alpha"]
        record = make_record(spec, {"build_s": 0.5, "nodes": 100}, speedup=2.0)
        path = fleet.write_record(record, tmp_path / "records")
        assert path.name == "core__alpha@smoke.json"
        loaded = fleet.load_records(tmp_path / "records")
        assert loaded == [record]
        assert loaded[0]["schema"] == fleet.RECORD_SCHEMA
        assert loaded[0]["meta"] == {"speedup": 2.0}

    def test_load_rejects_foreign_json(self, tmp_path):
        records = tmp_path / "records"
        records.mkdir()
        (records / "x.json").write_text('{"schema": "other/v9"}')
        with pytest.raises(BenchConfigError, match="not a repro-bench-record"):
            fleet.load_records(records)

    def test_make_record_rejects_empty_medians(self, config):
        spec = config.experiments["core/alpha"]
        with pytest.raises(BenchConfigError, match="no medians"):
            make_record(spec, {})

    def test_make_record_rejects_non_finite(self, config):
        spec = config.experiments["core/alpha"]
        with pytest.raises(BenchConfigError, match="must be finite"):
            make_record(spec, {"build_s": float("nan")})

    def test_make_record_rejects_bool_reps(self, config):
        spec = config.experiments["core/alpha"]
        with pytest.raises(BenchConfigError, match="positive int"):
            fleet.make_record(
                spec, "smoke", {}, {"medians": {"a_s": 1.0}, "reps": True},
                ENV, run_id="x",
            )


class TestRunFleet:
    @pytest.fixture
    def driver_config(self, tmp_path):
        """A runnable fleet rooted at tmp_path with a real toy driver."""
        pkg = tmp_path / "fleetpkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "alpha.py").write_text(
            textwrap.dedent(
                """\
                def run(config):
                    return {
                        "medians": {"alpha_s": 0.001 * config["nodes"]},
                        "reps": config["reps"],
                        "meta": {"nodes": config["nodes"]},
                    }
                """
            )
        )
        (pkg / "beta.py").write_text(
            "def run(config):\n"
            "    return {'medians': {'beta_s': 0.5}, 'reps': 1}\n"
        )
        path = tmp_path / "benchmarks" / "fleet.yaml"
        path.parent.mkdir()
        path.write_text(VALID_CONFIG, encoding="utf-8")
        yield fleet.load_fleet_config(path)
        if str(tmp_path) in sys.path:
            sys.path.remove(str(tmp_path))
        for name in ("fleetpkg", "fleetpkg.alpha", "fleetpkg.beta"):
            sys.modules.pop(name, None)

    def test_run_records_and_updates_config(self, driver_config, tmp_path):
        records_dir = tmp_path / "records"
        records = fleet.run_fleet(
            driver_config, profile="smoke", workers=1,
            records_dir=records_dir, echo=lambda _line: None,
        )
        assert [r["exp_id"] for r in records] == ["core/alpha"]
        record = records[0]
        assert record["medians"] == {"alpha_s": pytest.approx(0.1)}
        assert record["reps"] == 1  # smoke override
        assert record["params"]["graph"] == {"m": 2, "p": 0.7}
        assert len(record["run_id"]) == 12
        # The run_id was written back: a re-run has nothing to do.
        reloaded = fleet.load_fleet_config(driver_config.path)
        assert reloaded.experiments["core/alpha"].run_id == record["run_id"]
        assert fleet.plan_runs(reloaded) == []
        again = fleet.run_fleet(
            reloaded, profile="smoke", workers=1,
            records_dir=records_dir, echo=lambda _line: None,
        )
        assert again == []

    def test_force_reruns_and_no_update_config(self, driver_config, tmp_path):
        before = driver_config.path.read_text(encoding="utf-8")
        records = fleet.run_fleet(
            driver_config, profile="smoke", workers=1, force=True,
            records_dir=tmp_path / "records", update_config=False,
            echo=lambda _line: None,
        )
        assert sorted(r["exp_id"] for r in records) == [
            "core/alpha", "serving/beta"
        ]
        assert driver_config.path.read_text(encoding="utf-8") == before

    def test_driver_without_run_entry(self, driver_config, tmp_path):
        (tmp_path / "fleetpkg" / "beta.py").write_text("nothing = True\n")
        with pytest.raises(BenchConfigError, match="no run\\(config\\) entry"):
            fleet.run_fleet(
                driver_config, profile="smoke", workers=1, force=True,
                only=["serving/beta"], records_dir=tmp_path / "records",
                echo=lambda _line: None,
            )


class TestSummarize:
    def test_deterministic_and_merges_by_sha(self, config, tmp_path):
        spec = config.experiments["core/alpha"]
        record = make_record(spec, {"build_s": 0.5})
        out = tmp_path / "out"
        written = fleet.summarize_records([record], out)
        assert set(written) == {"core"}
        first = written["core"].read_text(encoding="utf-8")
        doc = json.loads(first)
        assert doc["schema"] == fleet.TRAJECTORY_SCHEMA
        assert len(doc["entries"]) == 1
        # Summarizing the same record again is byte-identical (upsert,
        # not append).
        fleet.summarize_records([record], out)
        assert written["core"].read_text(encoding="utf-8") == first
        # A different sha appends a second entry; same sha upserts.
        env2 = dict(ENV, git_sha="0123456789ab",
                    timestamp="2026-08-08T00:00:00+00:00")
        fleet.summarize_records([make_record(spec, {"build_s": 0.4}, env=env2)], out)
        entries = json.loads(written["core"].read_text())["entries"]
        assert [e["git_sha"] for e in entries] == ["feedfeedfeed", "0123456789ab"]

    def test_unknown_area_rejected(self, config, tmp_path):
        spec = config.experiments["core/alpha"]
        record = dict(make_record(spec, {"a_s": 1.0}), area="nuclear")
        with pytest.raises(BenchConfigError, match="unknown area"):
            fleet.summarize_records([record], tmp_path)


class TestTrendGate:
    def baseline(self, config, tmp_path, medians, sha="aaaaaaaaaaaa"):
        spec = config.experiments["core/alpha"]
        env = dict(ENV, git_sha=sha)
        fleet.summarize_records(
            [make_record(spec, medians, env=env)], tmp_path
        )

    def test_pass_within_threshold(self, config, tmp_path):
        self.baseline(config, tmp_path, {"build_s": 1.0})
        spec = config.experiments["core/alpha"]
        fresh = make_record(spec, {"build_s": 1.2})
        rows, failed = fleet.compare_to_baseline([fresh], tmp_path)
        assert not failed
        assert [(r.metric, r.status) for r in rows] == [("build_s", "ok")]
        assert rows[0].ratio == pytest.approx(1.2)

    def test_fail_beyond_threshold(self, config, tmp_path):
        self.baseline(config, tmp_path, {"build_s": 1.0})
        spec = config.experiments["core/alpha"]
        fresh = make_record(spec, {"build_s": 2.0})
        rows, failed = fleet.compare_to_baseline([fresh], tmp_path)
        assert failed
        assert rows[0].status == "REGRESSION"
        table = fleet.format_trend_markdown(rows, 1.25, 3)
        assert "❌ REGRESSION" in table and "| build_s |" in table

    def test_baseline_is_best_of_window(self, config, tmp_path):
        # Three entries: 1.0, then a noisy 3.0, then 2.0. Best of the
        # window is 1.0, so a fresh 1.5 (>1.25 * 1.0) still fails even
        # though it beats the two most recent entries.
        for i, value in enumerate((1.0, 3.0, 2.0)):
            spec = config.experiments["core/alpha"]
            env = dict(ENV, git_sha=f"{i:012d}",
                       timestamp=f"2026-08-0{i + 1}T00:00:00+00:00")
            fleet.summarize_records(
                [make_record(spec, {"build_s": value}, env=env)], tmp_path
            )
        fresh = make_record(
            config.experiments["core/alpha"], {"build_s": 1.5}
        )
        rows, failed = fleet.compare_to_baseline([fresh], tmp_path, window=3)
        assert failed and rows[0].baseline == 1.0
        # A window of 2 drops the 1.0 entry; baseline 2.0 passes.
        rows, failed = fleet.compare_to_baseline([fresh], tmp_path, window=2)
        assert not failed and rows[0].baseline == 2.0

    def test_new_metric_and_non_seconds_skipped(self, config, tmp_path):
        spec = config.experiments["core/alpha"]
        fresh = make_record(spec, {"build_s": 1.0, "speedup": 4.0})
        rows, failed = fleet.compare_to_baseline([fresh], tmp_path)
        assert not failed
        # No baseline file at all: the timing metric reports "new" and
        # the ratio metric is not gated.
        assert [(r.metric, r.status) for r in rows] == [("build_s", "new")]

    def test_profiles_do_not_cross_pollinate(self, config, tmp_path):
        self.baseline(config, tmp_path, {"build_s": 1.0})
        spec = config.experiments["core/alpha"]
        fresh = make_record(spec, {"build_s": 9.0}, profile="full")
        rows, failed = fleet.compare_to_baseline([fresh], tmp_path)
        assert not failed and rows[0].status == "new"


class TestStamp:
    def test_stamp_line_format(self):
        line = fleet.stamp_line(dict(ENV, git_dirty=True))
        assert line == (
            "# sha=feedfeedfeed+dirty time=2026-08-07T00:00:00+00:00 "
            "python=3.11.7"
        )

    def test_env_fingerprint_fields(self):
        env = fleet.env_fingerprint()
        assert set(env) == {
            "git_sha", "git_dirty", "timestamp", "python", "platform",
            "cpu_count",
        }
        assert env["cpu_count"] >= 1
