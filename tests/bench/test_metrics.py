"""Tests for measurement primitives."""

from __future__ import annotations

from repro.bench.metrics import MeasuredRun, measure_memory, measure_time


class TestMeasuredRun:
    def test_as_row(self):
        run = MeasuredRun(label="x", seconds=1.5, metrics={"NP": 3})
        row = run.as_row()
        assert row["run"] == "x"
        assert row["seconds"] == 1.5
        assert row["NP"] == 3
        assert "peak_MB" not in row

    def test_peak_megabytes(self):
        run = MeasuredRun(label="x", peak_bytes=2 * 1024 * 1024)
        assert run.peak_megabytes == 2.0
        assert run.as_row()["peak_MB"] == 2.0


class TestMeasureTime:
    def test_accumulates(self):
        run = MeasuredRun(label="t")
        with measure_time(run):
            sum(range(10_000))
        first = run.seconds
        assert first > 0
        with measure_time(run):
            sum(range(10_000))
        assert run.seconds > first

    def test_records_on_exception(self):
        run = MeasuredRun(label="t")
        try:
            with measure_time(run):
                raise ValueError("boom")
        except ValueError:
            pass
        assert run.seconds > 0


class TestMeasureMemory:
    def test_captures_allocation(self):
        run = MeasuredRun(label="m")
        with measure_memory(run):
            data = [0] * 200_000
            del data
        assert run.peak_bytes > 200_000 * 4

    def test_baseline_excluded(self):
        """Only allocations inside the block count."""
        keep = [0] * 500_000
        run = MeasuredRun(label="m")
        with measure_memory(run):
            small = [0] * 1_000
            del small
        assert run.peak_bytes < 500_000 * 4
        del keep
