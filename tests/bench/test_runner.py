"""Tests for measured runs."""

from __future__ import annotations

from repro.bench.runner import run_indexing, run_mining, run_query


class TestRunMining:
    def test_metrics_present(self, toy_network):
        run = run_mining(toy_network, "tcfi", alpha=0.1)
        assert run.seconds > 0
        assert run.metrics["NP"] == 2
        assert run.metrics["alpha"] == 0.1

    def test_tcs_label_includes_epsilon(self, toy_network):
        run = run_mining(toy_network, "tcs", alpha=0.1, epsilon=0.2)
        assert "0.2" in run.label


class TestRunIndexing:
    def test_returns_tree_and_metrics(self, toy_network):
        run, tree = run_indexing(toy_network)
        assert tree.num_nodes == 2
        assert run.metrics["nodes"] == 2
        assert run.metrics["depth"] == 1
        assert run.seconds > 0
        assert run.peak_bytes > 0


class TestRunQuery:
    def test_qba(self, toy_network):
        _, tree = run_indexing(toy_network)
        run = run_query(tree, alpha=0.0, repeats=3)
        assert run.label == "QBA"
        assert run.metrics["retrieved_nodes"] == 2

    def test_qbp(self, toy_network):
        _, tree = run_indexing(toy_network)
        run = run_query(tree, pattern=(0,), repeats=2)
        assert run.label == "QBP"
        assert run.metrics["pattern_length"] == 1
        assert run.metrics["retrieved_nodes"] == 1
