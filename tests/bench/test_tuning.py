"""Crossover fitting and cutover application for the engine constants."""

from __future__ import annotations

import math

import pytest

from repro.bench import tuning
from repro.errors import BenchConfigError


def power_law_times(x_values, scale_slow, exp_slow, scale_fast, exp_fast):
    slow = [scale_slow * x**exp_slow for x in x_values]
    fast = [scale_fast * x**exp_fast for x in x_values]
    return slow, fast


class TestFitCrossover:
    def test_recovers_known_crossover(self):
        # t_slow = 1e-3 (x/100)^1.3, t_fast = 2e-3 (x/100)^0.8: the
        # ratio crosses 1 at exactly x = 100 * 2^(1/0.5) = 400.
        x = [50, 100, 200, 400, 800, 1600]
        slow = [1e-3 * (v / 100) ** 1.3 for v in x]
        fast = [2e-3 * (v / 100) ** 0.8 for v in x]
        fit = tuning.fit_crossover(x, slow, fast)
        assert fit.crossover == pytest.approx(400.0, rel=1e-9)
        assert fit.in_range
        assert fit.slope == pytest.approx(0.5, rel=1e-9)
        rows = fit.as_rows()
        assert [r["x"] for r in rows] == x
        assert rows[3]["slow/fast"] == pytest.approx(1.0)

    def test_flat_ratio_has_no_crossing(self):
        x = [10, 100, 1000]
        slow = [1e-3 * v for v in x]
        fit = tuning.fit_crossover(x, slow, [t / 2 for t in slow])
        assert fit.crossover is None
        assert not fit.in_range
        assert all(r == pytest.approx(2.0) for r in fit.ratios)

    def test_out_of_range_crossover_flagged(self):
        slow, fast = power_law_times([100, 200, 400], 1e-5, 1.2, 1e-3, 1.0)
        fit = tuning.fit_crossover([100, 200, 400], slow, fast)
        assert fit.crossover is not None
        assert not fit.in_range  # crossing lies far above the sweep

    def test_validation(self):
        with pytest.raises(BenchConfigError, match="equal lengths"):
            tuning.fit_crossover([1, 2], [1.0], [1.0, 2.0])
        with pytest.raises(BenchConfigError, match="at least two"):
            tuning.fit_crossover([1], [1.0], [1.0])
        with pytest.raises(BenchConfigError, match="must be positive"):
            tuning.fit_crossover([1, 2], [1.0, -1.0], [1.0, 1.0])


class TestHelpers:
    def test_round_to_power_of_two(self):
        assert tuning.round_to_power_of_two(0.3) == 1
        # The boundary is the geometric midpoint 2**5.5 ~ 45.25.
        assert tuning.round_to_power_of_two(45) == 32
        assert tuning.round_to_power_of_two(46) == 64
        assert tuning.round_to_power_of_two(512) == 512

    def test_disagreement_symmetric(self):
        assert tuning.disagreement(100, 400) == pytest.approx(4.0)
        assert tuning.disagreement(400, 100) == pytest.approx(4.0)
        assert tuning.disagreement(7, 7) == 1.0
        with pytest.raises(BenchConfigError):
            tuning.disagreement(0, 1)

    def test_geometric_sizes(self):
        sizes = tuning._geometric_sizes(64, 4096, 5)
        assert sizes[0] == 64 and sizes[-1] == 4096
        assert sizes == sorted(set(sizes))
        ratios = [b / a for a, b in zip(sizes, sizes[1:])]
        assert all(2 < r < 6 for r in ratios)


def report_with(crossover_at, current, x=(100, 200, 400, 800, 1600)):
    """A CutoverReport whose fit crosses 1 at ``crossover_at``."""
    x = list(x)
    slow = [1e-3 * (v / crossover_at) ** 1.3 for v in x]
    fast = [1e-3 * (v / crossover_at) ** 0.8 for v in x]
    return tuning.CutoverReport(
        name="CSR_MIN_EDGES",
        current=float(current),
        fit=tuning.fit_crossover(x, slow, fast),
    )


class TestCutoverReport:
    def test_ok_within_limit(self):
        report = report_with(crossover_at=400, current=512)
        assert report.verdict == "ok"
        assert report.disagreement < tuning.DISAGREEMENT_LIMIT

    def test_update_beyond_limit(self):
        report = report_with(crossover_at=400, current=100)
        assert report.fitted == pytest.approx(400.0, rel=1e-9)
        assert report.verdict == "update"

    def test_extrapolated_never_updates(self):
        # The fitted crossing lies outside the sweep: the measured
        # points are one-sided, so the verdict must not be "update"
        # even with a huge disagreement.
        report = report_with(crossover_at=100_000, current=64,
                             x=(16, 64, 256, 1024))
        assert not report.fit.in_range
        assert report.verdict == "extrapolated"

    def test_no_crossing(self):
        x = [10, 100, 1000]
        fit = tuning.fit_crossover(x, [2e-3] * 3, [1e-3] * 3)
        report = tuning.CutoverReport(name="X", current=64.0, fit=fit)
        assert report.verdict == "no-crossing"
        assert report.as_row()["fitted"] == "—"


class TestApplyConstant:
    def test_rewrites_assignment(self, tmp_path):
        source = tmp_path / "support.py"
        source.write_text(
            "PAD = 3\nCSR_MIN_EDGES = 512  # measured\nX = CSR_MIN_EDGES\n"
        )
        assert tuning.apply_constant(source, "CSR_MIN_EDGES", 256)
        text = source.read_text()
        assert "CSR_MIN_EDGES = 256  # measured" in text
        assert "PAD = 3" in text and "X = CSR_MIN_EDGES" in text

    def test_noop_when_value_unchanged(self, tmp_path):
        source = tmp_path / "support.py"
        source.write_text("CSR_MIN_EDGES = 512\n")
        assert not tuning.apply_constant(source, "CSR_MIN_EDGES", 512)

    def test_missing_assignment(self, tmp_path):
        source = tmp_path / "support.py"
        source.write_text("OTHER = 1\n")
        with pytest.raises(BenchConfigError, match="no `CSR_MIN_EDGES"):
            tuning.apply_constant(source, "CSR_MIN_EDGES", 256)

    def test_apply_fitted_cutovers(self, tmp_path):
        (tmp_path / "src" / "repro" / "graphs").mkdir(parents=True)
        target = tmp_path / tuning.APPLICABLE["CSR_MIN_EDGES"]
        target.write_text("CSR_MIN_EDGES = 512\n")
        update = report_with(crossover_at=100, current=512,
                             x=(25, 50, 100, 200, 400))
        assert update.verdict == "update"
        changed = tuning.apply_fitted_cutovers([update], tmp_path)
        assert changed == ["CSR_MIN_EDGES: 512 -> 128"]
        assert target.read_text() == "CSR_MIN_EDGES = 128\n"
        # "ok" and "extrapolated" reports leave the file alone.
        ok = report_with(crossover_at=400, current=512)
        skipped = report_with(crossover_at=100_000, current=128,
                              x=(16, 64, 256, 1024))
        target.write_text("CSR_MIN_EDGES = 128\n")
        assert tuning.apply_fitted_cutovers([ok, skipped], tmp_path) == []
        assert target.read_text() == "CSR_MIN_EDGES = 128\n"


class TestSweeps:
    """Tiny real sweeps: shape checks only, no timing assertions."""

    def test_sweep_csr_min_edges_shape(self):
        sweep = tuning.sweep_csr_min_edges(points=2, reps=1, low=64, high=256)
        assert set(sweep) == {"x", "slow", "fast"}
        assert len(sweep["x"]) == len(sweep["slow"]) == len(sweep["fast"])
        assert all(t > 0 for t in sweep["slow"] + sweep["fast"])

    def test_sweep_net_reuse_shape(self):
        sweep = tuning.sweep_net_reuse_fraction(
            points=2, reps=1, network_edges=256
        )
        assert all(0 < x < 1 for x in sweep["x"])
        assert all(t > 0 for t in sweep["slow"] + sweep["fast"])

    def test_sweep_edge_csr_shape(self):
        sweep = tuning.sweep_edge_csr_min_edges(
            points=2, reps=1, low=16, high=64
        )
        assert len(sweep["x"]) >= 2
        assert all(t > 0 for t in sweep["slow"] + sweep["fast"])

    def test_sweep_prob_csr_shape(self):
        sweep = tuning.sweep_prob_csr_min_edges(
            points=2, reps=1, low=64, high=256
        )
        assert set(sweep) == {"x", "slow", "fast"}
        assert len(sweep["x"]) == len(sweep["slow"]) == len(sweep["fast"])
        assert all(t > 0 for t in sweep["slow"] + sweep["fast"])

    def test_unknown_profile(self):
        with pytest.raises(BenchConfigError, match="unknown tuning profile"):
            tuning.tune_cutovers(profile="warp")


class TestRegistryDriven:
    """The tuner enumerates cutovers from the engine registry."""

    def test_applicable_cutovers_from_registry(self):
        applicable = tuning.applicable_cutovers()
        assert applicable == {
            "CSR_MIN_EDGES": "src/repro/graphs/support.py",
            "EDGE_CSR_MIN_EDGES": "src/repro/edgenet/decomposition.py",
            "PROB_CSR_MIN_EDGES": "src/repro/graphs/probtruss.py",
        }
        # The report-only ratio is declared but not rewritable.
        assert "NET_REUSE_FRACTION" not in applicable
        # Back-compat alias used by apply_fitted_cutovers callers.
        assert tuning.APPLICABLE == applicable

    def test_tune_cutovers_only_filter(self):
        reports = tuning.tune_cutovers(
            points=2, reps=1, only=["PROB_CSR_MIN_EDGES"]
        )
        assert [r.name for r in reports] == ["PROB_CSR_MIN_EDGES"]
        from repro.engine.registry import get_model

        report = reports[0]
        assert report.current == float(
            get_model("probtruss").cutovers[0].current()
        )
        assert report.verdict in (
            "ok", "update", "extrapolated", "no-crossing"
        )

    def test_registered_model_cutover_joins_the_tuner(self):
        from repro.engine.registry import (
            CutoverSpec,
            ModelSpec,
            register_model,
            unregister_model,
        )

        spec = ModelSpec(
            name="toy",
            display="Toy",
            cutovers=(
                CutoverSpec(
                    name="TOY_CUTOVER",
                    source="src/toy.py",
                    sweep="math:pi",  # never resolved in this test
                ),
            ),
        )
        register_model("toy", lambda: spec)
        try:
            applicable = tuning.applicable_cutovers()
            assert applicable["TOY_CUTOVER"] == "src/toy.py"
        finally:
            unregister_model("toy")
        assert "TOY_CUTOVER" not in tuning.applicable_cutovers()


def test_crossover_math_sanity():
    # exp(-intercept/slope) really is where the fitted line crosses 0.
    x = [10, 20, 40, 80]
    slow, fast = power_law_times(x, 1e-4, 1.5, 1e-3, 1.0)
    fit = tuning.fit_crossover(x, slow, fast)
    assert fit.slope * math.log(fit.crossover) + fit.intercept == pytest.approx(
        0.0, abs=1e-12
    )
