"""Smoke tests: every example script must run cleanly end to end.

Examples are documentation that executes; these tests keep them honest.
Each example is run in-process (importable module style) with stdout
captured, and a few key output lines are asserted.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.parametrize(
    "script, expected",
    [
        ("quickstart.py", "TCFA agrees: True"),
        ("checkin_communities.py", "theme communities at alpha"),
        ("coauthor_case_study.py", "Thm 5.1"),
        ("index_and_query.py", "query by pattern"),
        ("edge_network_themes.py", "edge TC-Tree"),
        ("live_updates.py", "identical: True"),
        ("load_real_formats.py", "AMINER citation format"),
    ],
)
def test_example_runs(script, expected, capsys):
    # Examples live outside the package; make sure a stale module from a
    # previous parametrization cannot shadow anything.
    sys.modules.pop("__main__", None)
    out = _run(script, capsys)
    assert expected in out
