"""Tests for the Eclat miner (third independent implementation)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MiningError
from repro.mining.apriori import apriori_frequent_itemsets
from repro.mining.eclat import eclat_frequent_itemsets
from repro.mining.fpgrowth import fpgrowth_frequent_itemsets
from repro.txdb.database import TransactionDatabase
from tests.conftest import transaction_databases


class TestEclat:
    def test_textbook_example(self):
        db = TransactionDatabase(
            [{1, 3, 4}, {2, 3, 5}, {1, 2, 3, 5}, {2, 5}]
        )
        result = eclat_frequent_itemsets(db, 0.5)
        assert result[(2, 3, 5)] == 2
        assert (1, 2) not in result

    def test_empty_database(self):
        assert eclat_frequent_itemsets(TransactionDatabase(), 0.5) == {}

    def test_invalid_support(self):
        with pytest.raises(MiningError):
            eclat_frequent_itemsets(TransactionDatabase([{1}]), 0.0)

    def test_max_length(self):
        db = TransactionDatabase([{1, 2, 3}] * 2)
        result = eclat_frequent_itemsets(db, 0.5, max_length=2)
        assert (1, 2, 3) not in result
        assert (1, 2) in result

    @given(
        transaction_databases(max_items=5, max_transactions=8),
        st.sampled_from([0.2, 0.4, 0.6, 1.0]),
    )
    def test_three_miners_agree(self, db, min_support):
        """Apriori, FP-growth, and Eclat are three independent search
        strategies over the same space; their results must be identical."""
        apriori = apriori_frequent_itemsets(db, min_support)
        fpgrowth = fpgrowth_frequent_itemsets(db, min_support)
        eclat = eclat_frequent_itemsets(db, min_support)
        assert apriori == fpgrowth == eclat
