"""Tests for FP-growth — must agree exactly with Apriori."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MiningError
from repro.mining.apriori import apriori_frequent_itemsets
from repro.mining.fpgrowth import fpgrowth_frequent_itemsets
from repro.mining.fptree import FPTree
from repro.txdb.database import TransactionDatabase
from tests.conftest import transaction_databases


class TestFPTree:
    def test_shared_prefix_collapses(self):
        order = {1: 0, 2: 1, 3: 2}
        tree = FPTree(order)
        tree.insert([1, 2])
        tree.insert([1, 3])
        # Item 1 should appear in a single node with count 2.
        assert len(tree.header[1]) == 1
        assert tree.header[1][0].count == 2

    def test_single_path_detection(self):
        order = {1: 0, 2: 1}
        tree = FPTree(order)
        tree.insert([1, 2])
        tree.insert([1])
        assert tree.is_single_path()
        tree.insert([2])
        assert not tree.is_single_path()

    def test_conditional_pattern_base(self):
        order = {1: 0, 2: 1, 3: 2}
        tree = FPTree(order)
        tree.insert([1, 2, 3])
        tree.insert([1, 3])
        base = tree.conditional_pattern_base(3)
        paths = sorted(sorted(p) for p, _ in base)
        assert paths == [[1], [1, 2]]

    def test_infrequent_items_skipped(self):
        tree = FPTree({1: 0})
        tree.insert([1, 99])
        assert 99 not in tree.header


class TestFPGrowth:
    def test_textbook_example(self):
        db = TransactionDatabase(
            [{1, 3, 4}, {2, 3, 5}, {1, 2, 3, 5}, {2, 5}]
        )
        result = fpgrowth_frequent_itemsets(db, 0.5)
        assert result[(2, 3, 5)] == 2
        assert (1, 2) not in result

    def test_empty_database(self):
        assert fpgrowth_frequent_itemsets(TransactionDatabase(), 0.5) == {}

    def test_invalid_support(self):
        with pytest.raises(MiningError):
            fpgrowth_frequent_itemsets(TransactionDatabase([{1}]), 0.0)

    def test_max_length(self):
        db = TransactionDatabase([{1, 2, 3}] * 2)
        result = fpgrowth_frequent_itemsets(db, 0.5, max_length=2)
        assert (1, 2, 3) not in result
        assert (1, 2) in result

    @given(
        transaction_databases(max_items=5, max_transactions=8),
        st.sampled_from([0.2, 0.4, 0.6, 1.0]),
    )
    def test_agrees_with_apriori(self, db, min_support):
        """The two classic miners are independent implementations; they
        must produce identical pattern → support maps."""
        apriori = apriori_frequent_itemsets(db, min_support)
        fpgrowth = fpgrowth_frequent_itemsets(db, min_support)
        assert apriori == fpgrowth

    @given(
        transaction_databases(max_items=5, max_transactions=8),
        st.sampled_from([0.3, 0.5]),
    )
    def test_agrees_with_apriori_capped(self, db, min_support):
        apriori = apriori_frequent_itemsets(db, min_support, max_length=2)
        fpgrowth = fpgrowth_frequent_itemsets(db, min_support, max_length=2)
        assert apriori == fpgrowth
