"""Tests for the Apriori miner."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MiningError
from repro.mining.apriori import apriori_frequent_itemsets, generate_candidates
from repro.txdb.database import TransactionDatabase
from tests.conftest import transaction_databases


class TestGenerateCandidates:
    def test_join_two_singletons(self):
        assert [c for c in generate_candidates([(1,), (2,)])] == [(1, 2)]

    def test_prune_missing_subpattern(self):
        # (1,2) and (1,3) join to (1,2,3) but (2,3) is not frequent.
        assert generate_candidates([(1, 2), (1, 3)]) == []

    def test_full_level(self):
        level = [(1, 2), (1, 3), (2, 3)]
        assert generate_candidates(level) == [(1, 2, 3)]

    def test_empty_level(self):
        assert generate_candidates([]) == []


class TestAprioriMiner:
    def test_textbook_example(self):
        db = TransactionDatabase(
            [{1, 3, 4}, {2, 3, 5}, {1, 2, 3, 5}, {2, 5}]
        )
        result = apriori_frequent_itemsets(db, 0.5)
        assert result[(1,)] == 2
        assert result[(2, 3, 5)] == 2
        assert (1, 2) not in result

    def test_min_support_one(self):
        db = TransactionDatabase([{1, 2}, {1, 2}])
        result = apriori_frequent_itemsets(db, 1.0)
        assert set(result) == {(1,), (2,), (1, 2)}

    def test_max_length(self):
        db = TransactionDatabase([{1, 2, 3}] * 3)
        result = apriori_frequent_itemsets(db, 0.5, max_length=2)
        assert (1, 2, 3) not in result
        assert (1, 2) in result

    def test_empty_database(self):
        assert apriori_frequent_itemsets(TransactionDatabase(), 0.5) == {}

    def test_invalid_support(self):
        db = TransactionDatabase([{1}])
        with pytest.raises(MiningError):
            apriori_frequent_itemsets(db, 0.0)
        with pytest.raises(MiningError):
            apriori_frequent_itemsets(db, 1.5)

    @given(transaction_databases(), st.sampled_from([0.2, 0.5, 0.8]))
    def test_support_counts_correct(self, db, min_support):
        result = apriori_frequent_itemsets(db, min_support)
        for pattern, count in result.items():
            assert count == db.support_count(pattern)
            assert count >= min_support * len(db)

    @given(transaction_databases(), st.sampled_from([0.2, 0.5]))
    def test_downward_closure(self, db, min_support):
        """Every sub-pattern of a frequent pattern is in the result."""
        result = apriori_frequent_itemsets(db, min_support)
        for pattern in result:
            for i in range(len(pattern)):
                sub = pattern[:i] + pattern[i + 1:]
                if sub:
                    assert sub in result
