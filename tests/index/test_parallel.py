"""Tests for process-parallel TC-Tree construction.

The serial build is the parity oracle: both parallel backends (threaded
layer 1, process pool over layer-1 items and whole subtrees) must
reproduce its tree exactly — patterns, levels, thresholds, frequencies.
The pickle protocol tests pin the compact exchange format: flat arrays
for ``CSRGraph``, carrier-flattened ``TrussDecomposition``.
"""

from __future__ import annotations

import pickle
import uuid

import pytest
from hypothesis import given, settings

from repro.datasets.synthetic import generate_synthetic_network
from repro.graphs.csr import CSRGraph
from repro.graphs.support import triangle_index
from repro.index import parallel
from repro.index.decomposition import (
    TrussDecomposition,
    decompose_network_pattern,
)
from repro.index.parallel import (
    adaptive_chunks,
    build_subtree_chunk,
    build_tc_tree_process,
)
from repro.index.shm import SharedCarrierStore, unlink_handle
from repro.index.tctree import build_tc_tree
from repro.index.updates import update_vertex_database
from tests.conftest import database_networks


def assert_trees_identical(expected, actual):
    """Full structural equality: patterns, levels, thresholds, frequencies."""
    assert expected.patterns() == actual.patterns()
    assert expected.num_items == actual.num_items
    for pattern in expected.patterns():
        a = expected.find_node(pattern).decomposition
        b = actual.find_node(pattern).decomposition
        assert a.thresholds() == b.thresholds()
        assert a.frequencies == b.frequencies
        for alpha in a.thresholds():
            assert sorted(a.edges_at(alpha)) == sorted(b.edges_at(alpha))
        assert sorted(a.edges_at(0.0)) == sorted(b.edges_at(0.0))


@pytest.fixture(scope="module")
def syn_network():
    """A synthetic network big enough to have a multi-layer tree."""
    return generate_synthetic_network(
        num_items=6,
        num_seeds=2,
        mutation_rate=0.4,
        max_transactions=12,
        max_transaction_length=4,
        seed=3,
    )


class TestAdaptiveChunks:
    def test_partition(self):
        items = list(range(17))
        costs = {i: float(i + 1) for i in items}
        chunks = adaptive_chunks(items, costs, workers=3)
        flat = sorted(i for chunk in chunks for i in chunk)
        assert flat == items
        assert all(chunk == sorted(chunk) for chunk in chunks)

    def test_hub_item_isolated(self):
        """One hub item must not drag a chunk-mate behind it."""
        costs = {0: 1000.0}
        costs.update({i: 1.0 for i in range(1, 10)})
        chunks = adaptive_chunks(list(range(10)), costs, workers=2)
        hub_chunk = next(chunk for chunk in chunks if 0 in chunk)
        assert hub_chunk == [0]

    def test_deterministic(self):
        items = list(range(23))
        costs = {i: float((i * 7) % 5 + 1) for i in items}
        first = adaptive_chunks(items, costs, workers=4)
        second = adaptive_chunks(items, costs, workers=4)
        assert first == second

    def test_fewer_items_than_chunks(self):
        chunks = adaptive_chunks([3, 1], {1: 1.0, 3: 2.0}, workers=8)
        assert sorted(i for c in chunks for i in c) == [1, 3]
        assert all(chunk for chunk in chunks)

    def test_empty(self):
        assert adaptive_chunks([], {}, workers=4) == []


class TestPickleProtocol:
    def test_csr_round_trip_drops_caches(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        triangle_index(graph)  # populate the cache that must NOT ship
        clone = pickle.loads(pickle.dumps(graph))
        assert clone == graph
        assert clone._tri is None
        assert clone._index == graph._index
        assert list(clone.edge_ids) == list(graph.edge_ids)
        assert clone.edge_id(0, 2) == graph.edge_id(0, 2)
        assert clone.neighbors(2) == graph.neighbors(2)

    def test_csr_payload_smaller_than_default(self):
        graph = CSRGraph.from_edges(
            [(u, v) for u in range(30) for v in range(u + 1, 30)]
        )
        triangle_index(graph)
        payload = len(pickle.dumps(graph))
        cache_payload = len(pickle.dumps(graph._tri))
        # The triangle index of a dense graph dwarfs the graph itself;
        # shipping it would blow up every task result.
        assert payload < cache_payload

    def test_decomposition_round_trip_flattens_carrier(self, syn_network):
        item = syn_network.item_universe()[0]
        decomposition = decompose_network_pattern(
            syn_network, (item,), capture_carrier=True
        )
        original_carrier = decomposition.carrier0
        clone = pickle.loads(pickle.dumps(decomposition))
        # The original still owns its captured carrier (pickling must not
        # consume it), the clone carries a flat canonical edge list.
        assert decomposition.carrier0 is original_carrier
        assert clone.carrier0 is None or isinstance(clone.carrier0, list)
        assert clone.pattern == decomposition.pattern
        assert clone.thresholds() == decomposition.thresholds()
        assert clone.frequencies == decomposition.frequencies
        # take_carrier materializes an equivalent C*_p(0) on the receiver.
        ours = decomposition.take_carrier()
        theirs = clone.take_carrier()
        if ours is not None:
            assert sorted(ours.iter_edges()) == sorted(theirs.iter_edges())

    def test_decomposition_without_carrier_round_trips(self, syn_network):
        item = syn_network.item_universe()[0]
        decomposition = decompose_network_pattern(syn_network, (item,))
        clone = pickle.loads(pickle.dumps(decomposition))
        assert clone.carrier0 is None
        assert clone.thresholds() == decomposition.thresholds()

    def test_tree_nodes_round_trip(self, syn_network):
        tree = build_tc_tree(syn_network)
        clone_root = pickle.loads(pickle.dumps(tree.root))
        clone_patterns = sorted(
            node.pattern
            for child in clone_root.children
            for node in child.iter_subtree()
        )
        assert clone_patterns == tree.patterns()


class TestProcessParity:
    def test_toy(self, toy_network):
        serial = build_tc_tree(toy_network)
        process = build_tc_tree(toy_network, workers=3)
        assert_trees_identical(serial, process)

    def test_synthetic_all_backends(self, syn_network):
        serial = build_tc_tree(syn_network)
        threaded = build_tc_tree(syn_network, workers=4, backend="thread")
        process = build_tc_tree(syn_network, workers=2)
        assert_trees_identical(serial, threaded)
        assert_trees_identical(serial, process)

    def test_synthetic_max_length(self, syn_network):
        serial = build_tc_tree(syn_network, max_length=2)
        process = build_tc_tree(syn_network, max_length=2, workers=4)
        assert_trees_identical(serial, process)

    def test_direct_entry_point_serial_fallback(self, syn_network):
        serial = build_tc_tree(syn_network)
        fallback = build_tc_tree_process(syn_network, workers=1)
        assert_trees_identical(serial, fallback)

    @settings(deadline=None, max_examples=5)
    @given(database_networks())
    def test_randomized_parity(self, network):
        serial = build_tc_tree(network)
        threaded = build_tc_tree(network, workers=4, backend="thread")
        process = build_tc_tree(network, workers=2)
        assert_trees_identical(serial, threaded)
        assert_trees_identical(serial, process)

    def test_update_through_process_pool(self, syn_network):
        import copy

        network = copy.deepcopy(syn_network)
        tree = build_tc_tree(network)
        vertex = next(iter(network.databases))
        new_transactions = [[0], [0, 1]]

        updated = update_vertex_database(
            network, tree, vertex, new_transactions, workers=2
        )
        scratch = build_tc_tree(network)
        assert_trees_identical(scratch, updated)


class TestSharedCarrierStore:
    def _graphs(self):
        dense = CSRGraph.from_edges(
            [(u, v) for u in range(12) for v in range(u + 1, 12)]
        )
        sparse = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2), (5, 9)])
        return {3: dense, 7: sparse}

    def test_round_trip_through_pickled_handle(self):
        graphs = self._graphs()
        store = SharedCarrierStore.create(graphs)
        try:
            handle = pickle.loads(pickle.dumps(store.handle()))
            attached = SharedCarrierStore.attach(handle)
            try:
                assert sorted(attached.keys()) == sorted(graphs)
                for key, graph in graphs.items():
                    clone = attached.graph(key)
                    assert clone.labels == graph.labels
                    assert clone.edges() == graph.edges()
                    assert list(clone.indptr) == list(graph.indptr)
                    assert list(clone.edge_ids) == list(graph.edge_ids)
                    # Engine smoke over the zero-copy views.
                    assert (
                        triangle_index(clone).num_triangles
                        == triangle_index(graph).num_triangles
                    )
            finally:
                attached.close()
        finally:
            store.close()
            store.unlink()

    def test_attached_graph_pickles_to_plain_arrays(self):
        graphs = self._graphs()
        store = SharedCarrierStore.create(graphs)
        try:
            attached = SharedCarrierStore.attach(store.handle())
            clone = pickle.loads(pickle.dumps(attached.graph(3)))
            # The pickle payload must not reference the segment: plain
            # array copies, fully usable after the segment is gone.
            from array import array

            assert isinstance(clone.indptr, array)
            assert clone == graphs[3]
        finally:
            store.close()
            store.unlink()
        assert clone.edges() == graphs[3].edges()

    def test_unlink_handle_is_idempotent(self):
        store = SharedCarrierStore.create(self._graphs())
        handle = store.handle()
        store.close()
        unlink_handle(handle)
        unlink_handle(handle)  # second call: segment already gone


class TestSharedCarrierBuild:
    def test_parity_with_and_without_sharing(self, syn_network):
        serial = build_tc_tree(syn_network)
        shared = build_tc_tree_process(
            syn_network, workers=2, share_carriers=True
        )
        pickled = build_tc_tree_process(
            syn_network, workers=2, share_carriers=False
        )
        assert_trees_identical(serial, shared)
        assert_trees_identical(serial, pickled)

    def test_phase_a_results_ship_without_carriers(self, syn_network):
        """The point of the exchange: decompositions come back over the
        pipe carrier-less (the carriers travel through shared memory)."""
        chunk = sorted(syn_network.item_universe())
        segment_name = f"rptest{uuid.uuid4().hex[:10]}"
        parallel._WORKER_STATE = {"network": syn_network}
        handle = None
        try:
            decompositions, handle, _delta = parallel._layer1_chunk(
                (chunk, segment_name)
            )
            assert handle is not None
            assert handle["name"] == segment_name
            assert all(d.carrier0 is None for d in decompositions)
            attached = SharedCarrierStore.attach(handle)
            try:
                serial = {
                    item: decompose_network_pattern(
                        syn_network, (item,), capture_carrier=True
                    )
                    for item in chunk
                }
                for key in attached.keys():
                    expected = serial[key].take_carrier()
                    assert (
                        attached.graph(key).edges() == expected.edges()
                    )
            finally:
                attached.close()
        finally:
            if handle is not None:
                unlink_handle(handle)
            parallel._WORKER_STATE = {}


class TestWorkerCacheRelease:
    """Satellite: the per-chunk teardown must drop triangle/projection
    state pinned by the worker carrier memo, keeping worker memory flat
    across repeated chunks (the PR 2 code let it accumulate)."""

    def _worker_state(self, network):
        layer1 = {
            item: pickle.loads(
                pickle.dumps(
                    decompose_network_pattern(
                        network, (item,), capture_carrier=True
                    )
                )
            )
            for item in network.item_universe()
        }
        layer1 = {
            item: dec for item, dec in layer1.items() if not dec.is_empty()
        }
        return {"network": network, "layer1": layer1, "reuse": {}}

    def test_chunk_teardown_clears_carrier_caches(self, syn_network):
        parallel._WORKER_STATE = self._worker_state(syn_network)
        parallel._WORKER_CARRIERS.clear()
        try:
            roots = sorted(parallel._WORKER_STATE["layer1"])
            parallel._subtree_chunk((roots, None))
            assert parallel._WORKER_CARRIERS  # memo was populated
            for carrier in parallel._WORKER_CARRIERS.values():
                if isinstance(carrier, CSRGraph):
                    assert carrier._tri is None
                    assert carrier._proj_parent is None
                    assert carrier._proj_eids is None
        finally:
            parallel._WORKER_STATE = {}
            parallel._WORKER_CARRIERS.clear()

    def test_repeated_chunks_do_not_grow_memory(self, syn_network):
        import tracemalloc

        parallel._WORKER_STATE = self._worker_state(syn_network)
        parallel._WORKER_CARRIERS.clear()
        try:
            roots = sorted(parallel._WORKER_STATE["layer1"])
            task = (roots, None)
            parallel._subtree_chunk(task)  # warm every lazy cache once
            tracemalloc.start()
            parallel._subtree_chunk(task)
            baseline, _ = tracemalloc.get_traced_memory()
            for _ in range(4):
                parallel._subtree_chunk(task)
            current, _ = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            # Four extra chunks may not retain more than a small, flat
            # overhead — a leaked triangle index per chunk would be
            # hundreds of kilobytes on this network.
            assert current - baseline < 64 * 1024
        finally:
            parallel._WORKER_STATE = {}
            parallel._WORKER_CARRIERS.clear()


class TestSubtreeChunk:
    def _layer1(self, network):
        return {
            item: decompose_network_pattern(
                network, (item,), capture_carrier=True
            )
            for item in network.item_universe()
        }

    def test_matches_serial_subtrees(self, syn_network):
        serial = build_tc_tree(syn_network)
        layer1 = {
            item: dec
            for item, dec in self._layer1(syn_network).items()
            if not dec.is_empty()
        }
        roots = sorted(layer1)
        built = build_subtree_chunk(syn_network, layer1, roots)
        built_patterns = sorted(
            node.pattern
            for subtree in built
            for node in subtree.iter_subtree()
        )
        assert built_patterns == serial.patterns()

    def test_sibling_carrier_rebuilt_at_most_once(
        self, syn_network, monkeypatch
    ):
        """Regression: the frontier loop used to rebuild a carrier-less
        sibling's ``C*_p(0)`` on *every* pairing and drop it on the floor;
        it must be memoized so each layer-1 decomposition materializes its
        carrier at most once per chunk (max_length-capped build)."""
        layer1 = {
            item: dec
            for item, dec in self._layer1(syn_network).items()
            if not dec.is_empty()
        }
        assert len(layer1) >= 3  # need two earlier roots pairing one sibling
        # Ship-shape the decompositions as the workers would receive them:
        # carriers flattened, then rebuilt lazily inside the chunk.
        layer1 = {
            item: pickle.loads(pickle.dumps(dec))
            for item, dec in layer1.items()
        }

        calls: dict[int, int] = {}
        original = TrussDecomposition.frontier_carrier

        def counting(self):
            calls[id(self)] = calls.get(id(self), 0) + 1
            return original(self)

        monkeypatch.setattr(
            TrussDecomposition, "frontier_carrier", counting
        )
        build_subtree_chunk(
            syn_network, layer1, sorted(layer1), max_length=2
        )
        layer1_ids = {id(dec) for dec in layer1.values()}
        layer1_calls = {
            i: n for i, n in calls.items() if i in layer1_ids
        }
        assert layer1_calls, "no layer-1 carrier was ever materialized"
        assert max(layer1_calls.values()) == 1

    def test_root_carrier_persisted_across_chunks(
        self, syn_network, monkeypatch
    ):
        """Regression: a chunk root's carrier is consumed by its own
        expansion — it must still land in the worker's carrier cache so a
        later chunk pairing an earlier root against it skips the rebuild
        (chunks reach a worker in arbitrary order)."""
        layer1 = {
            item: pickle.loads(pickle.dumps(dec))
            for item, dec in self._layer1(syn_network).items()
            if not dec.is_empty()
        }
        items = sorted(layer1)
        assert len(items) >= 2
        cache: dict = {}
        build_subtree_chunk(
            syn_network, layer1, [items[-1]], carrier_cache=cache
        )
        assert items[-1] in cache

        calls: list = []
        original = TrussDecomposition.frontier_carrier
        last = layer1[items[-1]]

        def counting(self):
            if self is last:
                calls.append(self)
            return original(self)

        monkeypatch.setattr(
            TrussDecomposition, "frontier_carrier", counting
        )
        # The earlier root pairs against items[-1]; its carrier must come
        # from the cache, not another frontier_carrier materialization.
        build_subtree_chunk(
            syn_network, layer1, [items[0]], carrier_cache=cache
        )
        assert calls == []
