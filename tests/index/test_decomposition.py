"""Tests for maximal-pattern-truss decomposition (Theorem 6.1 / Eq. 1).

The central invariant: for every α, reconstructing ``C*_p(α)`` from the
decomposition ``L_p`` must equal running MPTD directly at α.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mptd import maximal_pattern_truss
from repro.index.decomposition import (
    decompose_network_pattern,
    decompose_truss,
)
from repro.network.theme import induce_theme_network
from tests.conftest import database_networks


class TestToyDecomposition:
    def test_p_theme_single_level(self, toy_network):
        decomposition = decompose_network_pattern(toy_network, (0,))
        assert decomposition.thresholds() == [pytest.approx(0.3)]
        assert decomposition.num_edges == 13
        assert decomposition.max_alpha == pytest.approx(0.3)

    def test_q_theme_two_levels(self, toy_network):
        decomposition = decompose_network_pattern(toy_network, (1,))
        assert decomposition.thresholds() == [
            pytest.approx(0.4),
            pytest.approx(0.6),
        ]
        assert decomposition.num_edges == 8
        # Level sizes: 3 edges go at 0.4, the remaining 5 at 0.6.
        assert [len(l.removed_edges) for l in decomposition.levels] == [3, 5]

    def test_empty_pattern_theme(self, toy_network):
        """A pattern occurring nowhere decomposes to the empty list."""
        missing_item = 999
        decomposition = decompose_network_pattern(toy_network, (missing_item,))
        assert decomposition.is_empty()
        assert decomposition.max_alpha == 0.0

    def test_truss_at_various_alphas(self, toy_network):
        decomposition = decompose_network_pattern(toy_network, (1,))
        assert decomposition.truss_at(0.0).num_edges == 8
        assert decomposition.truss_at(0.45).num_edges == 5
        assert decomposition.truss_at(0.6).is_empty()

    def test_frequencies_restricted_to_truss(self, toy_network):
        decomposition = decompose_network_pattern(toy_network, (1,))
        truss = decomposition.truss_at(0.0)
        assert set(decomposition.frequencies) == truss.vertices()


class TestDecompositionProperties:
    @settings(deadline=None, max_examples=30)
    @given(
        database_networks(),
        st.sampled_from([0.0, 0.1, 0.25, 0.5, 1.0]),
    )
    def test_reconstruction_matches_direct_mptd(self, network, alpha):
        """Equation 1 round-trip: L_p reconstructs C*_p(α) exactly."""
        for item in network.item_universe():
            decomposition = decompose_network_pattern(network, (item,))
            reconstructed = decomposition.truss_at(alpha)

            graph, frequencies = induce_theme_network(network, (item,))
            direct, _ = maximal_pattern_truss(graph, frequencies, alpha)
            assert set(reconstructed.graph.iter_edges()) == set(
                direct.iter_edges()
            )

    @settings(deadline=None, max_examples=30)
    @given(database_networks())
    def test_levels_strictly_ascending_and_disjoint(self, network):
        for item in network.item_universe():
            decomposition = decompose_network_pattern(network, (item,))
            thresholds = decomposition.thresholds()
            assert thresholds == sorted(thresholds)
            assert len(set(thresholds)) == len(thresholds)
            seen = set()
            for level in decomposition.levels:
                assert level.removed_edges  # never an empty level
                for edge in level.removed_edges:
                    assert edge not in seen
                    seen.add(edge)

    @settings(deadline=None, max_examples=30)
    @given(database_networks())
    def test_stores_exactly_c0_edges(self, network):
        """L_p stores the same number of edges as E*_p(0) (Section 6.1:
        'it does not incur much extra memory cost')."""
        for item in network.item_universe():
            graph, frequencies = induce_theme_network(network, (item,))
            truss, _ = maximal_pattern_truss(graph, frequencies, 0.0)
            decomposition = decompose_network_pattern(network, (item,))
            assert decomposition.num_edges == truss.num_edges

    @settings(deadline=None, max_examples=20)
    @given(database_networks())
    def test_max_alpha_is_emptiness_boundary(self, network):
        """C*_p(α) = ∅ exactly for α >= α*_p."""
        for item in network.item_universe():
            decomposition = decompose_network_pattern(network, (item,))
            if decomposition.is_empty():
                continue
            alpha_star = decomposition.max_alpha
            assert not decomposition.truss_at(alpha_star - 1e-6).is_empty()
            assert decomposition.truss_at(alpha_star).is_empty()


class TestClassicTrussCorrespondence:
    @settings(deadline=None, max_examples=30)
    @given(st.data())
    def test_unit_frequency_levels_are_truss_numbers(self, data):
        """With unit frequencies, the decomposition threshold at which an
        edge is removed equals its classic truss number minus 2.

        C*_p(α) with f ≡ 1 is the (α+3)-truss (Section 3.2); an edge with
        truss number t survives exactly while α < t - 2, so it must be
        recorded in the level with threshold t - 2.
        """
        from repro.core.mptd import maximal_pattern_truss
        from repro.graphs.ktruss import truss_numbers
        from tests.conftest import small_graphs

        graph = data.draw(small_graphs())
        ones = {v: 1.0 for v in graph}
        truss, cohesion = maximal_pattern_truss(graph, ones, 0.0)
        decomposition = decompose_truss((0,), truss, ones, cohesion)

        numbers = truss_numbers(graph)
        removal_level: dict = {}
        for level in decomposition.levels:
            for edge in level.removed_edges:
                removal_level[edge] = level.alpha
        for edge, alpha in removal_level.items():
            assert alpha == pytest.approx(numbers[edge] - 2)


class TestDecomposeTruss:
    def test_consumes_inputs(self, toy_network):
        graph, frequencies = induce_theme_network(toy_network, (0,))
        truss, cohesion = maximal_pattern_truss(graph, frequencies, 0.0)
        decompose_truss((0,), truss, frequencies, cohesion)
        assert truss.num_edges == 0  # documented: inputs are consumed
        assert cohesion == {}
