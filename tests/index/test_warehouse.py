"""Tests for the theme-community warehouse (persistence + facade)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings

from repro.errors import TCIndexError
from repro.index.query import query_by_alpha
from repro.index.warehouse import ThemeCommunityWarehouse
from tests.conftest import database_networks


class TestBuildAndQuery:
    def test_build(self, toy_network):
        warehouse = ThemeCommunityWarehouse.build(toy_network)
        assert warehouse.num_indexed_trusses == 2

    def test_alpha_range(self, toy_network):
        warehouse = ThemeCommunityWarehouse.build(toy_network)
        low, high = warehouse.alpha_range()
        assert low == 0.0
        assert high == pytest.approx(0.6)

    def test_query_facade(self, toy_network):
        warehouse = ThemeCommunityWarehouse.build(toy_network)
        assert warehouse.query(alpha=0.35).patterns() == [(1,)]
        assert warehouse.query(pattern=(0,)).patterns() == [(0,)]

    def test_communities_min_size(self, toy_network):
        warehouse = ThemeCommunityWarehouse.build(toy_network)
        assert all(
            c.size >= 5 for c in warehouse.communities(alpha=0.1, min_size=5)
        )


class TestPersistence:
    def test_round_trip_file(self, toy_network, tmp_path):
        warehouse = ThemeCommunityWarehouse.build(toy_network)
        path = tmp_path / "toy.tctree.json"
        warehouse.save(path)
        loaded = ThemeCommunityWarehouse.load(path)
        assert loaded.num_indexed_trusses == warehouse.num_indexed_trusses
        assert loaded.tree.patterns() == warehouse.tree.patterns()
        for alpha in (0.0, 0.35, 0.45):
            original = query_by_alpha(warehouse.tree, alpha)
            restored = query_by_alpha(loaded.tree, alpha)
            assert original.patterns() == restored.patterns()
            for a, b in zip(original.trusses, restored.trusses):
                assert set(a.graph.iter_edges()) == set(b.graph.iter_edges())

    @settings(deadline=None, max_examples=15)
    @given(database_networks())
    def test_round_trip_dict(self, network):
        warehouse = ThemeCommunityWarehouse.build(network)
        document = json.loads(json.dumps(warehouse.to_dict()))
        restored = ThemeCommunityWarehouse.from_dict(document)
        assert restored.tree.patterns() == warehouse.tree.patterns()
        for pattern in warehouse.tree.patterns():
            a = warehouse.tree.find_node(pattern).decomposition
            b = restored.tree.find_node(pattern).decomposition
            assert a.thresholds() == b.thresholds()
            assert a.frequencies == b.frequencies

    def test_bad_format_rejected(self):
        with pytest.raises(TCIndexError):
            ThemeCommunityWarehouse.from_dict({"format": "nope"})

    def test_bad_version_rejected(self):
        with pytest.raises(TCIndexError):
            ThemeCommunityWarehouse.from_dict(
                {"format": "repro-tctree", "version": 42}
            )

    def test_duplicate_pattern_rejected(self):
        """A duplicate node entry used to call add_child twice and build
        a malformed tree with two siblings for one item — it must raise."""
        node = {
            "pattern": [0],
            "frequencies": {"1": 0.5},
            "levels": [[0.5, [[1, 2]]]],
        }
        document = {
            "format": "repro-tctree",
            "version": 1,
            "num_items": 3,
            "nodes": [node, dict(node)],
        }
        with pytest.raises(TCIndexError, match="duplicate"):
            ThemeCommunityWarehouse.from_dict(document)

    def test_empty_pattern_rejected(self):
        document = {
            "format": "repro-tctree",
            "version": 1,
            "num_items": 3,
            "nodes": [
                {"pattern": [], "frequencies": {}, "levels": []}
            ],
        }
        with pytest.raises(TCIndexError, match="empty pattern"):
            ThemeCommunityWarehouse.from_dict(document)

    def test_snapshot_round_trip_via_warehouse(self, toy_network, tmp_path):
        """save_snapshot + format-sniffing load round-trips losslessly."""
        warehouse = ThemeCommunityWarehouse.build(toy_network)
        path = tmp_path / "toy.tcsnap"
        written = warehouse.save_snapshot(path)
        assert path.stat().st_size == written
        loaded = ThemeCommunityWarehouse.load(path)
        assert loaded.tree.patterns() == warehouse.tree.patterns()
        for alpha in (0.0, 0.35, 0.45):
            original = query_by_alpha(warehouse.tree, alpha)
            restored = query_by_alpha(loaded.tree, alpha)
            assert original.patterns() == restored.patterns()
            for a, b in zip(original.trusses, restored.trusses):
                assert set(a.graph.iter_edges()) == set(b.graph.iter_edges())

    def test_orphan_node_rejected(self):
        document = {
            "format": "repro-tctree",
            "version": 1,
            "num_items": 3,
            "nodes": [
                {
                    "pattern": [0, 1],
                    "frequencies": {},
                    "levels": [[0.5, [[0, 1]]]],
                }
            ],
        }
        with pytest.raises(TCIndexError):
            ThemeCommunityWarehouse.from_dict(document)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{")
        with pytest.raises(TCIndexError):
            ThemeCommunityWarehouse.load(path)
