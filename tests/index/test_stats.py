"""Tests for TC-Tree statistics."""

from __future__ import annotations

import pytest

from repro.index.stats import tc_tree_statistics
from repro.index.tctree import build_tc_tree


class TestTCTreeStatistics:
    def test_toy_profile(self, toy_network):
        tree = build_tc_tree(toy_network)
        stats = tc_tree_statistics(tree)
        assert stats.num_nodes == 2
        assert stats.depth == 1
        assert stats.nodes_per_depth == {1: 2}
        # p stores 13 edges, q stores 8 — L_p stores E*_p(0) exactly.
        assert stats.total_edges_stored == 13 + 8
        # p decomposes in 1 level, q in 2.
        assert stats.total_decomposition_levels == 3
        assert stats.max_alpha == pytest.approx(0.6)

    def test_averages(self, toy_network):
        stats = tc_tree_statistics(build_tc_tree(toy_network))
        assert stats.average_levels_per_node == pytest.approx(1.5)
        assert stats.average_edges_per_node == pytest.approx(10.5)

    def test_empty_tree(self):
        from repro.network.dbnetwork import DatabaseNetwork

        tree = build_tc_tree(DatabaseNetwork())
        stats = tc_tree_statistics(tree)
        assert stats.num_nodes == 0
        assert stats.average_levels_per_node == 0.0
        assert stats.average_edges_per_node == 0.0

    def test_as_row(self, toy_network):
        row = tc_tree_statistics(build_tc_tree(toy_network)).as_row()
        assert row["nodes"] == 2
        assert row["alpha*"] == pytest.approx(0.6)
        assert row["est_json_KiB"] > 0
        assert row["est_snap_KiB"] > 0

    def test_estimated_snapshot_bytes_exact(self, toy_network, tmp_path):
        """The binary format is fully determined by the counts, so the
        snapshot estimate must equal the real file size."""
        from repro.index.warehouse import ThemeCommunityWarehouse

        warehouse = ThemeCommunityWarehouse.build(toy_network)
        stats = tc_tree_statistics(warehouse.tree)
        written = warehouse.save_snapshot(tmp_path / "toy.tcsnap")
        assert stats.estimated_snapshot_bytes == written
        assert stats.estimated_bytes()["snapshot"] == written

    def test_estimated_json_bytes_close(self, toy_network, tmp_path):
        """JSON length depends on float printing; the estimate only has
        to land within a small factor of the real document."""
        import json

        from repro.index.warehouse import ThemeCommunityWarehouse

        warehouse = ThemeCommunityWarehouse.build(toy_network)
        stats = tc_tree_statistics(warehouse.tree)
        actual = len(json.dumps(warehouse.to_dict()))
        estimate = stats.estimated_bytes()["json"]
        assert actual / 3 <= estimate <= actual * 3

    def test_edges_stored_matches_mining(self, toy_network):
        """Total stored edges = Σ |E*_p(0)| over indexed patterns."""
        from repro.core.tcfi import tcfi

        tree = build_tc_tree(toy_network)
        mined = tcfi(toy_network, 0.0)
        assert tc_tree_statistics(tree).total_edges_stored == sum(
            t.num_edges for t in mined.values()
        )
