"""Tests for TC-Tree query answering (Algorithm 5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._ordering import is_subpattern
from repro.core.tcfi import tcfi
from repro.errors import TCIndexError
from repro.index.query import query_by_alpha, query_by_pattern, query_tc_tree
from repro.index.tctree import build_tc_tree
from tests.conftest import database_networks


class TestToyQueries:
    def test_qba_at_zero_returns_everything(self, toy_network):
        tree = build_tc_tree(toy_network)
        answer = query_by_alpha(tree, 0.0)
        assert answer.retrieved_nodes == 2
        assert answer.patterns() == [(0,), (1,)]

    def test_qba_sweep(self, toy_network):
        tree = build_tc_tree(toy_network)
        assert query_by_alpha(tree, 0.35).patterns() == [(1,)]
        assert query_by_alpha(tree, 0.6).patterns() == []

    def test_qbp_restricts_to_subpatterns(self, toy_network):
        tree = build_tc_tree(toy_network)
        answer = query_by_pattern(tree, (0,))
        assert answer.patterns() == [(0,)]

    def test_query_communities(self, toy_network):
        tree = build_tc_tree(toy_network)
        communities = query_by_alpha(tree, 0.1).communities()
        assert len(communities) == 3

    def test_negative_alpha_rejected(self, toy_network):
        tree = build_tc_tree(toy_network)
        with pytest.raises(TCIndexError):
            query_tc_tree(tree, alpha=-0.1)

    def test_answer_metadata(self, toy_network):
        tree = build_tc_tree(toy_network)
        answer = query_tc_tree(tree, pattern=(0, 1), alpha=0.0)
        assert answer.query_pattern == (0, 1)
        assert answer.num_trusses == answer.retrieved_nodes
        assert answer.visited_nodes >= answer.retrieved_nodes

    def test_visited_counts_item_pruned_children(self, toy_network):
        """Regression: a child discarded by the item prune is still a
        touched node — the Figure 5 VN metric counts it. The old code
        ``continue``-d before the increment."""
        tree = build_tc_tree(toy_network)
        # The toy tree has layer-1 nodes for items 0 and 1. Querying
        # q = {0} touches both root children but retrieves only one.
        answer = query_tc_tree(tree, pattern=(0,), alpha=0.0)
        assert answer.retrieved_nodes == 1
        assert answer.visited_nodes == len(tree.root.children)

    @settings(deadline=None, max_examples=15)
    @given(database_networks())
    def test_visited_nodes_with_full_item_set_counts_all(self, network):
        """With q = S spelled out explicitly, no child is item-pruned, so
        VN must match the q = None traversal exactly."""
        tree = build_tc_tree(network)
        items = sorted({i for p in tree.patterns() for i in p})
        if not items:
            return
        unrestricted = query_tc_tree(tree, pattern=None, alpha=0.0)
        explicit = query_tc_tree(tree, pattern=items, alpha=0.0)
        assert explicit.visited_nodes == unrestricted.visited_nodes
        assert explicit.patterns() == unrestricted.patterns()


class TestQueryCorrectness:
    @settings(deadline=None, max_examples=20)
    @given(
        database_networks(),
        st.sampled_from([0.0, 0.2, 0.5, 1.0]),
    )
    def test_qba_equals_mining_at_alpha(self, network, alpha):
        """Querying the index at α returns exactly what mining at α finds —
        the build-once/query-many contract of Section 6."""
        tree = build_tc_tree(network)
        answer = query_by_alpha(tree, alpha)
        mined = tcfi(network, alpha)
        assert set(answer.patterns()) == set(mined.patterns())
        for truss in answer.trusses:
            assert set(truss.graph.iter_edges()) == mined[truss.pattern].edges()

    @settings(deadline=None, max_examples=20)
    @given(database_networks())
    def test_qbp_returns_all_subpatterns(self, network):
        """QBP(q) = every indexed pattern p ⊆ q."""
        tree = build_tc_tree(network)
        all_patterns = tree.patterns()
        if not all_patterns:
            return
        query = max(all_patterns, key=len)
        answer = query_by_pattern(tree, query)
        expected = {p for p in all_patterns if is_subpattern(p, query)}
        assert set(answer.patterns()) == expected

    @settings(deadline=None, max_examples=15)
    @given(database_networks())
    def test_retrieved_monotone_in_alpha(self, network):
        tree = build_tc_tree(network)
        counts = [
            query_by_alpha(tree, alpha).retrieved_nodes
            for alpha in (0.0, 0.2, 0.5, 1.0)
        ]
        assert counts == sorted(counts, reverse=True)
