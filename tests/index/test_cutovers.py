"""Boundary tests for the engine cutover constants.

``CSR_MIN_EDGES`` and ``CSR_NET_REUSE_MIN_EDGES`` pick between the
legacy adjacency-set path, the CSR engine over a projected carrier, and
decomposition over the shared network CSR. These tests build graphs
sitting exactly at, one below, and one above each threshold and assert
the *recorded route* (``TrussDecomposition.route``) — the introspection
added for exactly this purpose — so a future retuning that accidentally
inverts a comparison fails loudly instead of silently changing the
performance profile.
"""

from __future__ import annotations

import pytest

from repro.graphs.csr import CSRGraph
from repro.graphs.graph import Graph
from repro.graphs.support import (
    CSR_MIN_EDGES,
    projection,
    triangle_index,
)
from repro.index.decomposition import (
    CSR_NET_REUSE_MIN_EDGES,
    decompose_network_pattern,
    decompose_theme,
)
from repro.network.dbnetwork import DatabaseNetwork
from repro.txdb.database import TransactionDatabase


def path_network(num_edges: int, positive: int | None = None):
    """A path network of ``num_edges`` edges; the first ``positive``
    vertices (default: all) carry item 0, the rest item 1 only."""
    n = num_edges + 1
    positive = n if positive is None else positive
    graph = Graph()
    databases = {}
    for v in range(n):
        graph.add_vertex(v)
        databases[v] = TransactionDatabase(
            [[0]] if v < positive else [[1]]
        )
    for v in range(num_edges):
        graph.add_edge(v, v + 1)
    return DatabaseNetwork(graph, databases)


def path_graph(num_edges: int) -> Graph:
    graph = Graph()
    for v in range(num_edges):
        graph.add_edge(v, v + 1)
    return graph


class TestCsrMinEdgesEngineCutover:
    """decompose_theme(engine="auto"): legacy below, CSR at/above."""

    @pytest.mark.parametrize(
        "num_edges,expected",
        [
            (CSR_MIN_EDGES - 1, "legacy"),
            (CSR_MIN_EDGES, "csr"),
            (CSR_MIN_EDGES + 1, "csr"),
        ],
    )
    def test_boundary(self, num_edges, expected):
        graph = path_graph(num_edges)
        frequencies = {v: 1.0 for v in graph}
        decomposition = decompose_theme((0,), graph, frequencies)
        assert decomposition.route == expected

    def test_forced_engines_ignore_the_cutover(self):
        graph = path_graph(CSR_MIN_EDGES - 1)
        frequencies = {v: 1.0 for v in graph}
        forced_csr = decompose_theme(
            (0,), graph, frequencies, engine="csr"
        )
        assert forced_csr.route == "csr"
        forced_legacy = decompose_theme(
            (0,), path_graph(CSR_MIN_EDGES + 1),
            {v: 1.0 for v in range(CSR_MIN_EDGES + 2)}, engine="legacy",
        )
        assert forced_legacy.route == "legacy"


class TestCsrMinEdgesRestrictCutover:
    """Carrier restriction: projected CSR at/above, legacy graph below.

    The frequency filter keeps the first ``positive`` vertices of a long
    path, inducing exactly ``positive - 1`` edges — sized to the
    boundary. Coverage stays far under 90%, so the pass-through branch
    cannot mask the cutover.
    """

    @pytest.mark.parametrize(
        "induced,expected",
        [
            (CSR_MIN_EDGES - 1, "carrier-small+legacy"),
            (CSR_MIN_EDGES, "carrier-projected+csr"),
            (CSR_MIN_EDGES + 1, "carrier-projected+csr"),
        ],
    )
    def test_boundary(self, induced, expected):
        network = path_network(4 * CSR_MIN_EDGES, positive=induced + 1)
        csr_net = network.csr_graph()
        # A sub-network carrier below CSR_NET_REUSE_MIN_EDGES, so the
        # net-reuse branch cannot preempt the restriction under test.
        carrier_edges = CSR_NET_REUSE_MIN_EDGES - 4
        assert carrier_edges > induced
        mask = bytearray(csr_net.num_edges)
        for e in range(carrier_edges):
            mask[e] = 1
        decomposition = decompose_network_pattern(
            network, (0,), carrier=csr_net.project(mask)
        )
        assert decomposition.route == expected


class TestNetReuseMinEdgesCutover:
    """A carrier spanning the whole network reuses the network CSR only
    at/above ``CSR_NET_REUSE_MIN_EDGES``."""

    @pytest.mark.parametrize(
        "num_edges,expected",
        [
            (CSR_NET_REUSE_MIN_EDGES - 1, "carrier-full+csr"),
            (CSR_NET_REUSE_MIN_EDGES, "net-reuse+csr"),
            (CSR_NET_REUSE_MIN_EDGES + 1, "net-reuse+csr"),
        ],
    )
    def test_boundary(self, num_edges, expected):
        network = path_network(num_edges)
        carrier = network.csr_graph()
        decomposition = decompose_network_pattern(
            network, (0,), carrier=carrier
        )
        assert decomposition.route == expected


class TestNetReuseRatioCutover:
    """The share-of-network term of the net-reuse rule, both regimes."""

    def _carrier(self, network, carrier_edges: int) -> CSRGraph:
        csr_net = network.csr_graph()
        triangle_index(csr_net)  # make projections of the net derivable
        mask = bytearray(csr_net.num_edges)
        for e in range(carrier_edges):
            mask[e] = 1
        return csr_net.project(mask)

    def test_derivable_carrier_needs_nine_tenths(self):
        network = path_network(2000)
        at = decompose_network_pattern(
            network, (0,), carrier=self._carrier(network, 1800)
        )
        assert at.route.startswith("net-reuse")  # 10·1800 ≥ 9·2000
        below = decompose_network_pattern(
            network, (0,), carrier=self._carrier(network, 1799)
        )
        assert below.route.startswith("carrier-")

    def test_rule_ignores_the_projection_switch(self):
        """Routes must not depend on the oracle toggle — that is what
        keeps projection on/off trees bit-identical by construction."""
        network = path_network(2000)
        with projection(False):
            below = decompose_network_pattern(
                network, (0,), carrier=self._carrier(network, 1799)
            )
        assert below.route.startswith("carrier-")

    def test_underivable_carrier_needs_one_third(self):
        """Without a warm ancestor index the projected path would have to
        re-enumerate anyway, so the PR 2 edge-ratio rule stays."""
        network = path_network(3300)
        csr_net = network.csr_graph()

        def plain_carrier(carrier_edges):
            # No provenance, no cached index: rebuilt from raw edges.
            return CSRGraph._from_canonical_edges(
                [csr_net.edge_label(e) for e in range(carrier_edges)]
            )

        at = decompose_network_pattern(
            network, (0,), carrier=plain_carrier(1100)
        )
        below = decompose_network_pattern(
            network, (0,), carrier=plain_carrier(1099)
        )
        assert at.route.startswith("net-reuse")  # 3·1100 ≥ 3300
        assert below.route.startswith("carrier-")
