"""Delta-equivalence harness: incremental maintenance == scratch rebuild.

The live-index tier's correctness rests on one claim: for ANY base
network and ANY applicable delta stream, the incrementally maintained
TC-Tree is bit-for-bit the tree a from-scratch rebuild of the mutated
network would produce. These properties drive random (network, stream)
pairs — inserts, deletes, modifies, empty streams, duplicate deltas —
through both routes for both tree models and compare the serialized
snapshot bytes, the strictest equality the system can express.
"""

from __future__ import annotations

import copy
import itertools
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edgenet.index import build_edge_tc_tree
from repro.edgenet.network import EdgeDatabaseNetwork
from repro.index.tctree import build_tc_tree
from repro.index.updates import (
    DELETE,
    INSERT,
    MODIFY,
    Delta,
    apply_deltas,
)
from repro.serve.snapshot import write_snapshot
from tests.conftest import database_networks


def snapshot_bytes(tree) -> bytes:
    """The tree's full serialized form — the bit-identity oracle."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "tree.tcsnap"
        write_snapshot(tree, path)
        return path.read_bytes()


@st.composite
def delta_streams(draw, network, max_deltas: int = 4, max_item: int = 4):
    """An applicable random delta stream against ``network``.

    Live transaction ids are simulated while drawing, so a delete may
    name a tid inserted earlier in the same stream — exactly the
    contract ``validate_deltas`` checks.
    """
    targets = sorted(network.databases)
    live = {t: set(network.databases[t].tids()) for t in targets}
    nxt = {t: network.databases[t].next_tid for t in targets}
    deltas = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_deltas))):
        target = draw(st.sampled_from(targets))
        ops = [INSERT]
        if live[target]:
            ops += [DELETE, MODIFY]
        op = draw(st.sampled_from(ops))
        if op == INSERT:
            items = draw(
                st.sets(
                    st.integers(min_value=0, max_value=max_item),
                    min_size=1,
                    max_size=3,
                )
            )
            deltas.append(Delta.insert(target, sorted(items)))
            live[target].add(nxt[target])
            nxt[target] += 1
        elif op == DELETE:
            tid = draw(st.sampled_from(sorted(live[target])))
            deltas.append(Delta.delete(target, tid))
            live[target].discard(tid)
        else:
            tid = draw(st.sampled_from(sorted(live[target])))
            items = draw(
                st.sets(
                    st.integers(min_value=0, max_value=max_item),
                    min_size=1,
                    max_size=3,
                )
            )
            deltas.append(Delta.modify(target, tid, sorted(items)))
    return deltas


@st.composite
def vertex_maintenance_cases(draw):
    network = draw(database_networks())
    deltas = draw(delta_streams(network))
    return network, deltas


@st.composite
def edge_maintenance_cases(draw):
    n = draw(st.integers(min_value=3, max_value=5))
    possible = list(itertools.combinations(range(n), 2))
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=6,
                 unique=True)
    )
    network = EdgeDatabaseNetwork()
    for u, v in edges:
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            items = draw(
                st.sets(st.integers(min_value=0, max_value=2),
                        min_size=1, max_size=3)
            )
            network.add_transaction(u, v, items)
    deltas = draw(delta_streams(network, max_item=2))
    return network, deltas


class TestVertexDeltaEquivalence:
    @settings(deadline=None, max_examples=25)
    @given(vertex_maintenance_cases())
    def test_incremental_bit_identical_to_scratch(self, case):
        network, deltas = case
        base = build_tc_tree(network)
        mutated = copy.deepcopy(network)
        result = apply_deltas(mutated, base, deltas, mode="incremental")
        scratch = build_tc_tree(mutated)
        assert snapshot_bytes(result.tree) == snapshot_bytes(scratch)

    @settings(deadline=None, max_examples=10)
    @given(vertex_maintenance_cases())
    def test_auto_route_bit_identical_to_scratch(self, case):
        network, deltas = case
        base = build_tc_tree(network)
        mutated = copy.deepcopy(network)
        result = apply_deltas(mutated, base, deltas, mode="auto")
        scratch = build_tc_tree(mutated)
        expected = ("noop",) if not deltas else ("incremental", "full")
        assert result.route in expected
        assert snapshot_bytes(result.tree) == snapshot_bytes(scratch)

    @settings(deadline=None, max_examples=10)
    @given(vertex_maintenance_cases())
    def test_thread_backend_bit_identical(self, case):
        network, deltas = case
        base = build_tc_tree(network)
        mutated = copy.deepcopy(network)
        result = apply_deltas(
            mutated, base, deltas, mode="incremental",
            workers=2, backend="thread",
        )
        scratch = build_tc_tree(mutated)
        assert snapshot_bytes(result.tree) == snapshot_bytes(scratch)

    @settings(deadline=None, max_examples=15)
    @given(database_networks())
    def test_empty_stream_is_a_fresh_identical_clone(self, network):
        base = build_tc_tree(network)
        result = apply_deltas(network, base, [])
        assert result.route == "noop"
        assert result.tree is not base
        assert result.tree.root is not base.root
        assert snapshot_bytes(result.tree) == snapshot_bytes(base)

    @settings(deadline=None, max_examples=15)
    @given(database_networks(),
           st.sets(st.integers(min_value=0, max_value=4),
                   min_size=1, max_size=3))
    def test_duplicate_insert_deltas(self, network, items):
        """The same insert twice is legal (distinct tids) and must land
        exactly like two scratch-visible transactions."""
        target = sorted(network.databases)[0]
        base = build_tc_tree(network)
        mutated = copy.deepcopy(network)
        delta = Delta.insert(target, sorted(items))
        result = apply_deltas(
            mutated, base, [delta, Delta.insert(target, sorted(items))],
            mode="incremental",
        )
        scratch = build_tc_tree(mutated)
        assert snapshot_bytes(result.tree) == snapshot_bytes(scratch)

    def test_process_backend_bit_identical(self, toy_network):
        """One non-hypothesis case through the process pool (expensive)."""
        network = copy.deepcopy(toy_network)
        base = build_tc_tree(network)
        vertex = sorted(network.databases)[0]
        result = apply_deltas(
            network, base,
            [Delta.insert(vertex, [0, 1]), Delta.delete(vertex, 0)],
            mode="incremental", workers=2, backend="process",
        )
        scratch = build_tc_tree(network)
        assert snapshot_bytes(result.tree) == snapshot_bytes(scratch)


class TestEdgeDeltaEquivalence:
    @settings(deadline=None, max_examples=15)
    @given(edge_maintenance_cases())
    def test_incremental_bit_identical_to_scratch(self, case):
        network, deltas = case
        base = build_edge_tc_tree(network, backend="serial")
        mutated = copy.deepcopy(network)
        result = apply_deltas(mutated, base, deltas, mode="incremental")
        scratch = build_edge_tc_tree(mutated, backend="serial")
        assert snapshot_bytes(result.tree) == snapshot_bytes(scratch)

    @settings(deadline=None, max_examples=8)
    @given(edge_maintenance_cases())
    def test_thread_backend_bit_identical(self, case):
        network, deltas = case
        base = build_edge_tc_tree(network, backend="serial")
        mutated = copy.deepcopy(network)
        result = apply_deltas(
            mutated, base, deltas, mode="incremental",
            workers=2, backend="thread",
        )
        scratch = build_edge_tc_tree(mutated, backend="serial")
        assert snapshot_bytes(result.tree) == snapshot_bytes(scratch)

    @settings(deadline=None, max_examples=8)
    @given(edge_maintenance_cases())
    def test_empty_and_full_route(self, case):
        network, deltas = case
        base = build_edge_tc_tree(network, backend="serial")
        mutated = copy.deepcopy(network)
        result = apply_deltas(mutated, base, deltas, mode="full")
        scratch = build_edge_tc_tree(mutated, backend="serial")
        assert snapshot_bytes(result.tree) == snapshot_bytes(scratch)


class TestDeltaStreamRejection:
    """Satellite: invalid deltas raise TCIndexError before any mutation."""

    def test_unknown_vertex_rejected_atomically(self, toy_network):
        from repro.errors import TCIndexError

        network = copy.deepcopy(toy_network)
        base = build_tc_tree(network)
        before = {
            v: db.num_transactions
            for v, db in network.databases.items()
        }
        good = Delta.insert(sorted(network.databases)[0], [0])
        bad = Delta.insert(9_999, [0])
        with pytest.raises(TCIndexError):
            apply_deltas(network, base, [good, bad])
        after = {
            v: db.num_transactions
            for v, db in network.databases.items()
        }
        assert after == before  # the good delta was not applied either

    def test_unknown_tid_rejected(self, toy_network):
        from repro.errors import TCIndexError

        network = copy.deepcopy(toy_network)
        base = build_tc_tree(network)
        vertex = sorted(network.databases)[0]
        with pytest.raises(TCIndexError, match="unknown transaction id"):
            apply_deltas(network, base, [Delta.delete(vertex, 10_000)])

    def test_unknown_edge_rejected(self):
        from repro.errors import TCIndexError

        network = EdgeDatabaseNetwork()
        network.add_transaction(0, 1, [0, 1])
        network.add_transaction(1, 2, [1])
        base = build_edge_tc_tree(network, backend="serial")
        with pytest.raises(TCIndexError, match="not in network"):
            apply_deltas(network, base, [Delta.insert((0, 5), [0])])

    def test_delete_may_name_tid_inserted_in_stream(self, toy_network):
        network = copy.deepcopy(toy_network)
        base = build_tc_tree(network)
        vertex = sorted(network.databases)[0]
        tid = network.databases[vertex].next_tid
        result = apply_deltas(
            network, base,
            [Delta.insert(vertex, [0, 1]), Delta.delete(vertex, tid)],
            mode="incremental",
        )
        scratch = build_tc_tree(network)
        assert snapshot_bytes(result.tree) == snapshot_bytes(scratch)
