"""Tests for TC-Tree construction (Algorithm 4).

Completeness contract: the TC-Tree indexes exactly the patterns with
non-empty ``C*_p(0)`` — i.e. the same pattern set TCFI finds at α = 0 —
and each node's decomposition reconstructs the same trusses.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.tcfi import tcfi
from repro.index.tctree import build_tc_tree
from tests.conftest import database_networks


class TestToyTree:
    def test_nodes_and_depth(self, toy_network):
        tree = build_tc_tree(toy_network)
        assert tree.num_nodes == 2  # themes p and q only
        assert tree.depth == 1
        assert tree.patterns() == [(0,), (1,)]

    def test_find_node(self, toy_network):
        tree = build_tc_tree(toy_network)
        node = tree.find_node((1,))
        assert node is not None
        assert node.pattern == (1,)
        assert tree.find_node((0, 1)) is None
        assert tree.find_node(()) is None

    def test_max_alpha(self, toy_network):
        tree = build_tc_tree(toy_network)
        assert abs(tree.max_alpha() - 0.6) < 1e-9

    def test_children_sorted_by_item(self, toy_network):
        tree = build_tc_tree(toy_network)
        items = [child.item for child in tree.root.children]
        assert items == sorted(items)


class TestTreeCompleteness:
    @settings(deadline=None, max_examples=25)
    @given(database_networks())
    def test_indexes_exactly_tcfi_patterns(self, network):
        tree = build_tc_tree(network)
        mined = tcfi(network, 0.0)
        assert set(tree.patterns()) == set(mined.patterns())

    @settings(deadline=None, max_examples=25)
    @given(database_networks())
    def test_node_trusses_match_mining(self, network):
        tree = build_tc_tree(network)
        mined = tcfi(network, 0.0)
        for node in tree.iter_nodes():
            expected = mined[node.pattern]
            reconstructed = node.decomposition.truss_at(0.0)
            assert set(reconstructed.graph.iter_edges()) == expected.edges()

    @settings(deadline=None, max_examples=15)
    @given(database_networks())
    def test_max_length_caps_depth(self, network):
        tree = build_tc_tree(network, max_length=1)
        assert tree.depth <= 1
        full = build_tc_tree(network)
        assert set(tree.patterns()) == {
            p for p in full.patterns() if len(p) <= 1
        }

    @settings(deadline=None, max_examples=10)
    @given(database_networks())
    def test_parallel_build_identical(self, network):
        sequential = build_tc_tree(network, workers=1)
        parallel = build_tc_tree(network, workers=4)
        assert sequential.patterns() == parallel.patterns()
        for pattern in sequential.patterns():
            a = sequential.find_node(pattern).decomposition
            b = parallel.find_node(pattern).decomposition
            assert a.thresholds() == b.thresholds()

    @settings(deadline=None, max_examples=20)
    @given(database_networks())
    def test_tree_structure_consistent(self, network):
        """Each node's pattern = parent pattern + its item; items ascend
        along every root-to-node path (set-enumeration property)."""
        tree = build_tc_tree(network)

        def check(node, prefix):
            for child in node.children:
                assert child.pattern == prefix + (child.item,)
                if prefix:
                    assert child.item > prefix[-1]
                check(child, child.pattern)

        check(tree.root, ())
