"""Tests for incremental TC-Tree maintenance."""

from __future__ import annotations

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TCIndexError
from repro.index.tctree import build_tc_tree
from repro.index.updates import (
    affected_items,
    reusable_decompositions,
    update_vertex_database,
)
from tests.conftest import database_networks


class TestAffectedItems:
    def test_union_of_old_and_new(self, toy_network):
        vertex = next(iter(toy_network.databases))
        old_items = toy_network.databases[vertex].items()
        affected = affected_items(toy_network, vertex, [[0], [777]])
        assert affected == old_items | {0, 777}

    def test_vertex_without_database(self):
        from repro.graphs.graph import Graph
        from repro.network.dbnetwork import DatabaseNetwork

        network = DatabaseNetwork(Graph([(0, 1)]))
        assert affected_items(network, 0, [[5]]) == {5}


class TestReusableDecompositions:
    def test_avoids_affected_patterns(self, toy_network):
        tree = build_tc_tree(toy_network)
        reusable = reusable_decompositions(tree, {0})
        assert (0,) not in reusable
        assert (1,) in reusable

    def test_nothing_affected_reuses_all(self, toy_network):
        tree = build_tc_tree(toy_network)
        reusable = reusable_decompositions(tree, {12345})
        assert set(reusable) == set(tree.patterns())


class TestUpdateVertexDatabase:
    def test_no_transactions_returns_fresh_tree(self, toy_network):
        """Regression: the docstring promises a *new* tree even for an
        empty update — the old code aliased and returned ``tree``."""
        tree = build_tc_tree(toy_network)
        updated = update_vertex_database(toy_network, tree, 0, [])
        assert updated is not tree
        assert updated.root is not tree.root
        assert updated.patterns() == tree.patterns()
        for pattern in tree.patterns():
            old_node = tree.find_node(pattern)
            new_node = updated.find_node(pattern)
            assert new_node is not old_node
            # Decompositions are shared (reuse semantics), nodes are not.
            assert new_node.decomposition is old_node.decomposition

    def test_generator_input_not_silently_dropped(self, toy_network):
        """Regression: a single-pass generator of generators used to be
        exhausted by affected_items, so the append loop saw nothing and
        the transactions were silently lost."""
        network = copy.deepcopy(toy_network)
        vertex = next(iter(network.databases))
        before = network.databases[vertex].num_transactions

        transactions = [[0], [0, 1]]
        generator = (iter(t) for t in transactions)
        tree = build_tc_tree(network)
        updated = update_vertex_database(network, tree, vertex, generator)

        assert network.databases[vertex].num_transactions == before + 2
        scratch = build_tc_tree(network)
        assert updated.patterns() == scratch.patterns()

    def test_affected_items_accepts_generators(self, toy_network):
        vertex = next(iter(toy_network.databases))
        old_items = toy_network.databases[vertex].items()
        generator = (iter(t) for t in [[0], [777]])
        assert affected_items(toy_network, vertex, generator) == (
            old_items | {0, 777}
        )

    def test_unknown_vertex_rejected(self, toy_network):
        tree = build_tc_tree(toy_network)
        with pytest.raises(TCIndexError):
            update_vertex_database(toy_network, tree, 9_999, [[0]])

    def test_matches_full_rebuild(self, toy_network):
        """The incremental tree must equal a from-scratch rebuild."""
        network = copy.deepcopy(toy_network)
        tree = build_tc_tree(network)
        vertex = next(iter(network.databases))
        new_transactions = [[0], [0, 1]]

        updated = update_vertex_database(
            network, tree, vertex, new_transactions
        )
        scratch = build_tc_tree(network)

        assert updated.patterns() == scratch.patterns()
        for pattern in scratch.patterns():
            a = updated.find_node(pattern).decomposition
            b = scratch.find_node(pattern).decomposition
            assert a.thresholds() == pytest.approx(b.thresholds())
            assert sorted(a.edges_at(0.0)) == sorted(b.edges_at(0.0))

    def test_unaffected_decompositions_reused_by_identity(self, toy_network):
        """Decompositions avoiding the updated items are not recomputed —
        the same objects appear in the new tree."""
        network = copy.deepcopy(toy_network)
        tree = build_tc_tree(network)
        vertex = next(iter(network.databases))
        # Update with a fresh item not related to theme q... but the
        # vertex's own items are all affected; q (item 1) is only safe if
        # this vertex database does not contain item 1.
        safe_vertex = next(
            v for v, db in network.databases.items() if 1 not in db.items()
        )
        old_q = tree.find_node((1,)).decomposition
        updated = update_vertex_database(
            network, tree, safe_vertex, [[0]]
        )
        assert updated.find_node((1,)).decomposition is old_q

    @settings(deadline=None, max_examples=15)
    @given(
        database_networks(),
        st.lists(
            st.sets(st.integers(min_value=0, max_value=4), min_size=1,
                    max_size=3),
            min_size=1,
            max_size=3,
        ),
    )
    def test_incremental_equals_scratch_property(self, network, transactions):
        tree = build_tc_tree(network)
        vertex = sorted(network.graph.vertices())[0]
        updated = update_vertex_database(
            network, tree, vertex, [sorted(t) for t in transactions]
        )
        scratch = build_tc_tree(network)
        assert updated.patterns() == scratch.patterns()
        for pattern in scratch.patterns():
            a = updated.find_node(pattern).decomposition
            b = scratch.find_node(pattern).decomposition
            assert sorted(a.edges_at(0.0)) == sorted(b.edges_at(0.0))
            assert a.thresholds() == pytest.approx(b.thresholds())
