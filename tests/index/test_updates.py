"""Tests for incremental TC-Tree maintenance."""

from __future__ import annotations

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TCIndexError
from repro.index.tctree import build_tc_tree
from repro.index.updates import (
    affected_items,
    reusable_decompositions,
    update_vertex_database,
)
from tests.conftest import database_networks


class TestAffectedItems:
    def test_union_of_old_and_new(self, toy_network):
        vertex = next(iter(toy_network.databases))
        old_items = toy_network.databases[vertex].items()
        affected = affected_items(toy_network, vertex, [[0], [777]])
        assert affected == old_items | {0, 777}

    def test_vertex_without_database(self):
        from repro.graphs.graph import Graph
        from repro.network.dbnetwork import DatabaseNetwork

        network = DatabaseNetwork(Graph([(0, 1)]))
        assert affected_items(network, 0, [[5]]) == {5}


class TestReusableDecompositions:
    def test_avoids_affected_patterns(self, toy_network):
        tree = build_tc_tree(toy_network)
        reusable = reusable_decompositions(tree, {0})
        assert (0,) not in reusable
        assert (1,) in reusable

    def test_nothing_affected_reuses_all(self, toy_network):
        tree = build_tc_tree(toy_network)
        reusable = reusable_decompositions(tree, {12345})
        assert set(reusable) == set(tree.patterns())


class TestUpdateVertexDatabase:
    def test_no_transactions_returns_fresh_tree(self, toy_network):
        """Regression: the docstring promises a *new* tree even for an
        empty update — the old code aliased and returned ``tree``."""
        tree = build_tc_tree(toy_network)
        updated = update_vertex_database(toy_network, tree, 0, [])
        assert updated is not tree
        assert updated.root is not tree.root
        assert updated.patterns() == tree.patterns()
        for pattern in tree.patterns():
            old_node = tree.find_node(pattern)
            new_node = updated.find_node(pattern)
            assert new_node is not old_node
            # Decompositions are shared (reuse semantics), nodes are not.
            assert new_node.decomposition is old_node.decomposition

    def test_generator_input_not_silently_dropped(self, toy_network):
        """Regression: a single-pass generator of generators used to be
        exhausted by affected_items, so the append loop saw nothing and
        the transactions were silently lost."""
        network = copy.deepcopy(toy_network)
        vertex = next(iter(network.databases))
        before = network.databases[vertex].num_transactions

        transactions = [[0], [0, 1]]
        generator = (iter(t) for t in transactions)
        tree = build_tc_tree(network)
        updated = update_vertex_database(network, tree, vertex, generator)

        assert network.databases[vertex].num_transactions == before + 2
        scratch = build_tc_tree(network)
        assert updated.patterns() == scratch.patterns()

    def test_affected_items_accepts_generators(self, toy_network):
        vertex = next(iter(toy_network.databases))
        old_items = toy_network.databases[vertex].items()
        generator = (iter(t) for t in [[0], [777]])
        assert affected_items(toy_network, vertex, generator) == (
            old_items | {0, 777}
        )

    def test_unknown_vertex_rejected(self, toy_network):
        tree = build_tc_tree(toy_network)
        with pytest.raises(TCIndexError):
            update_vertex_database(toy_network, tree, 9_999, [[0]])

    def test_matches_full_rebuild(self, toy_network):
        """The incremental tree must equal a from-scratch rebuild."""
        network = copy.deepcopy(toy_network)
        tree = build_tc_tree(network)
        vertex = next(iter(network.databases))
        new_transactions = [[0], [0, 1]]

        updated = update_vertex_database(
            network, tree, vertex, new_transactions
        )
        scratch = build_tc_tree(network)

        assert updated.patterns() == scratch.patterns()
        for pattern in scratch.patterns():
            a = updated.find_node(pattern).decomposition
            b = scratch.find_node(pattern).decomposition
            assert a.thresholds() == pytest.approx(b.thresholds())
            assert sorted(a.edges_at(0.0)) == sorted(b.edges_at(0.0))

    def test_unaffected_decompositions_reused_by_identity(self, toy_network):
        """Decompositions avoiding the updated items are not recomputed —
        the same objects appear in the new tree."""
        network = copy.deepcopy(toy_network)
        tree = build_tc_tree(network)
        vertex = next(iter(network.databases))
        # Update with a fresh item not related to theme q... but the
        # vertex's own items are all affected; q (item 1) is only safe if
        # this vertex database does not contain item 1.
        safe_vertex = next(
            v for v, db in network.databases.items() if 1 not in db.items()
        )
        old_q = tree.find_node((1,)).decomposition
        updated = update_vertex_database(
            network, tree, safe_vertex, [[0]]
        )
        assert updated.find_node((1,)).decomposition is old_q

    @settings(deadline=None, max_examples=15)
    @given(
        database_networks(),
        st.lists(
            st.sets(st.integers(min_value=0, max_value=4), min_size=1,
                    max_size=3),
            min_size=1,
            max_size=3,
        ),
    )
    def test_incremental_equals_scratch_property(self, network, transactions):
        tree = build_tc_tree(network)
        vertex = sorted(network.graph.vertices())[0]
        updated = update_vertex_database(
            network, tree, vertex, [sorted(t) for t in transactions]
        )
        scratch = build_tc_tree(network)
        assert updated.patterns() == scratch.patterns()
        for pattern in scratch.patterns():
            a = updated.find_node(pattern).decomposition
            b = scratch.find_node(pattern).decomposition
            assert sorted(a.edges_at(0.0)) == sorted(b.edges_at(0.0))
            assert a.thresholds() == pytest.approx(b.thresholds())


class TestDeltaContracts:
    def test_unknown_op_rejected(self):
        from repro.index.updates import Delta

        with pytest.raises(TCIndexError, match="unknown delta op"):
            Delta("upsert", 0, items=(1,))

    def test_insert_requires_items(self):
        from repro.index.updates import Delta

        with pytest.raises(TCIndexError, match="non-empty"):
            Delta("insert", 0)

    def test_insert_forbids_tid(self):
        from repro.index.updates import Delta

        with pytest.raises(TCIndexError, match="fresh tid"):
            Delta("insert", 0, items=(1,), tid=3)

    def test_delete_forbids_items(self):
        from repro.index.updates import Delta

        with pytest.raises(TCIndexError, match="no transaction items"):
            Delta("delete", 0, items=(1,), tid=0)

    def test_modify_requires_tid(self):
        from repro.index.updates import Delta

        with pytest.raises(TCIndexError, match="requires a tid"):
            Delta("modify", 0, items=(1,))

    def test_items_are_deduped_and_sorted(self):
        from repro.index.updates import Delta

        assert Delta.insert(0, [3, 1, 3, 2]).items == (1, 2, 3)

    def test_edge_target_is_canonicalized(self):
        from repro.index.updates import Delta

        assert Delta.insert((5, 2), [0]).target == (2, 5)
        with pytest.raises(TCIndexError, match="pair"):
            Delta.insert((1, 2, 3), [0])

    def test_dict_round_trip(self):
        from repro.index.updates import Delta

        for delta in (
            Delta.insert(3, [1, 2]),
            Delta.delete((4, 1), 7),
            Delta.modify(0, 2, [5]),
        ):
            assert Delta.from_dict(delta.to_dict()) == delta

    def test_edge_target_serializes_as_list(self):
        from repro.index.updates import Delta

        doc = Delta.delete((4, 1), 7).to_dict()
        assert doc["target"] == [1, 4]

    def test_from_dict_rejects_malformed(self):
        from repro.index.updates import Delta

        with pytest.raises(TCIndexError, match="malformed"):
            Delta.from_dict({"op": "insert"})


class TestApplyDeltasRouting:
    def test_unknown_mode_rejected(self, toy_network):
        from repro.index.updates import apply_deltas

        tree = build_tc_tree(toy_network)
        with pytest.raises(TCIndexError, match="maintenance mode"):
            apply_deltas(toy_network, tree, [], mode="yolo")

    def test_non_delta_in_stream_rejected(self, toy_network):
        from repro.index.updates import apply_deltas

        tree = build_tc_tree(toy_network)
        with pytest.raises(TCIndexError, match="not Delta"):
            apply_deltas(toy_network, tree, [{"op": "insert"}])

    def test_auto_routes_full_when_everything_affected(self, toy_network):
        from repro.index.updates import Delta, apply_deltas

        network = copy.deepcopy(toy_network)
        tree = build_tc_tree(network)
        universe = sorted(network.item_universe())
        vertex = sorted(network.databases)[0]
        result = apply_deltas(
            network, tree, [Delta.insert(vertex, universe)], mode="auto"
        )
        assert result.route == "full"
        assert result.affected_fraction == 1.0
        assert result.reuse_candidates == 0

    def test_auto_routes_incremental_for_small_updates(self, toy_network):
        from repro.index.updates import Delta, apply_deltas

        network = copy.deepcopy(toy_network)
        tree = build_tc_tree(network)
        # A vertex whose items cover only part of the universe keeps the
        # affected fraction under the cutover.
        universe = set(network.item_universe())
        vertex, database = min(
            network.databases.items(), key=lambda kv: len(kv[1].items())
        )
        item = sorted(database.items())[0]
        result = apply_deltas(
            network, tree, [Delta.insert(vertex, [item])], mode="auto"
        )
        if len(database.items() | {item}) / len(universe) < 0.95:
            assert result.route == "incremental"
            assert 0.0 < result.affected_fraction < 1.0
            assert result.reused > 0

    def test_maintenance_route_is_counted(self, toy_network):
        from repro.engine.registry import ROUTE_COUNTER
        from repro.index.updates import Delta, apply_deltas
        from repro.obs.metrics import default_registry

        network = copy.deepcopy(toy_network)
        tree = build_tc_tree(network)
        vertex = sorted(network.databases)[0]
        counter = default_registry().counter(
            ROUTE_COUNTER, model="vertex", route="maintain-incremental"
        )
        before = counter.value
        apply_deltas(
            network, tree, [Delta.insert(vertex, [0])],
            mode="incremental",
        )
        assert counter.value == before + 1
