"""Tests for the canonical pattern representation (repro._ordering)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro._ordering import (
    EMPTY_PATTERN,
    is_canonical,
    is_subpattern,
    join_patterns,
    joinable_prefix,
    make_pattern,
    pattern_union,
    subpatterns_one_shorter,
)

item_sets = st.sets(st.integers(min_value=0, max_value=20), max_size=6)


class TestMakePattern:
    def test_sorts_and_deduplicates(self):
        assert make_pattern([3, 1, 3, 2]) == (1, 2, 3)

    def test_empty(self):
        assert make_pattern([]) == EMPTY_PATTERN

    def test_accepts_any_iterable(self):
        assert make_pattern({5, 1}) == (1, 5)
        assert make_pattern(iter([2, 0])) == (0, 2)

    @given(item_sets)
    def test_always_canonical(self, items):
        assert is_canonical(make_pattern(items))


class TestIsCanonical:
    def test_strictly_increasing_is_canonical(self):
        assert is_canonical((1, 2, 9))

    def test_duplicates_are_not(self):
        assert not is_canonical((1, 1, 2))

    def test_descending_is_not(self):
        assert not is_canonical((3, 2))

    def test_empty_and_singleton(self):
        assert is_canonical(())
        assert is_canonical((7,))


class TestPatternUnion:
    def test_basic(self):
        assert pattern_union((1, 3), (2, 3)) == (1, 2, 3)

    def test_identity_with_empty(self):
        assert pattern_union((), (1, 2)) == (1, 2)
        assert pattern_union((1, 2), ()) == (1, 2)

    @given(item_sets, item_sets)
    def test_matches_set_union(self, a, b):
        result = pattern_union(make_pattern(a), make_pattern(b))
        assert result == make_pattern(a | b)


class TestIsSubpattern:
    def test_subset(self):
        assert is_subpattern((1, 3), (1, 2, 3))

    def test_not_subset(self):
        assert not is_subpattern((1, 4), (1, 2, 3))

    def test_empty_is_subpattern_of_all(self):
        assert is_subpattern((), (1,))
        assert is_subpattern((), ())

    @given(item_sets, item_sets)
    def test_matches_set_semantics(self, a, b):
        assert is_subpattern(make_pattern(a), make_pattern(b)) == (a <= b)


class TestSubpatternsOneShorter:
    def test_drops_each_item_once(self):
        assert subpatterns_one_shorter((1, 2, 3)) == [
            (2, 3),
            (1, 3),
            (1, 2),
        ]

    def test_singleton_gives_empty(self):
        assert subpatterns_one_shorter((5,)) == [()]

    @given(item_sets.filter(bool))
    def test_all_results_canonical_and_shorter(self, items):
        pattern = make_pattern(items)
        subs = subpatterns_one_shorter(pattern)
        assert len(subs) == len(pattern)
        for sub in subs:
            assert is_canonical(sub)
            assert len(sub) == len(pattern) - 1
            assert is_subpattern(sub, pattern)


class TestJoin:
    def test_joinable_prefix_true(self):
        assert joinable_prefix((1, 2), (1, 3))

    def test_joinable_prefix_false_on_prefix_mismatch(self):
        assert not joinable_prefix((1, 2), (2, 3))

    def test_joinable_prefix_false_on_equal(self):
        assert not joinable_prefix((1, 2), (1, 2))

    def test_joinable_prefix_false_on_empty(self):
        assert not joinable_prefix((), ())

    def test_join_orders_last_items(self):
        assert join_patterns((1, 2), (1, 3)) == (1, 2, 3)
        assert join_patterns((1, 3), (1, 2)) == (1, 2, 3)

    @given(item_sets.filter(lambda s: len(s) >= 2))
    def test_join_reconstructs_parent(self, items):
        pattern = make_pattern(items)
        left = pattern[:-1]
        right = pattern[:-2] + (pattern[-1],)
        assert joinable_prefix(left, right)
        assert join_patterns(left, right) == pattern
