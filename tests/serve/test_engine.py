"""Tests for the lazy-loading query engine (snapshot parity oracle)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TCIndexError
from repro.index.query import query_tc_tree
from repro.index.warehouse import ThemeCommunityWarehouse
from repro.search.topk import top_k_communities
from repro.serve.engine import CarrierCache, IndexedWarehouse
from repro.serve.snapshot import write_snapshot
from tests.conftest import database_networks
from tests.serve.conftest import assert_answers_identical


def _engine_for(network, tmp_dir, cache_size=1024):
    warehouse = ThemeCommunityWarehouse.build(network)
    path = tmp_dir / "net.tcsnap"
    write_snapshot(warehouse.tree, path)
    return warehouse, IndexedWarehouse.open(path, cache_size=cache_size)


class TestSnapshotParity:
    @settings(deadline=None, max_examples=15)
    @given(
        database_networks(),
        st.sampled_from([0.0, 0.1, 0.3, 0.5, 1.0, 2.0]),
    )
    def test_qba_parity(self, tmp_path_factory, network, alpha):
        """QBA answers are bit-identical to the in-memory traversal."""
        warehouse, engine = _engine_for(
            network, tmp_path_factory.mktemp("qba")
        )
        with engine:
            assert_answers_identical(
                query_tc_tree(warehouse.tree, alpha=alpha),
                engine.query(alpha=alpha),
            )

    @settings(deadline=None, max_examples=15)
    @given(database_networks())
    def test_qbp_parity(self, tmp_path_factory, network):
        """QBP answers (every indexed pattern as q) are bit-identical."""
        warehouse, engine = _engine_for(
            network, tmp_path_factory.mktemp("qbp")
        )
        with engine:
            queries = warehouse.tree.patterns() or [(0,)]
            for query in queries:
                assert_answers_identical(
                    query_tc_tree(warehouse.tree, pattern=query),
                    engine.query(pattern=query),
                )

    def test_json_fallback_parity(self, toy_warehouse, tmp_path):
        """A JSON document opens through the same engine API."""
        path = tmp_path / "toy.tctree.json"
        toy_warehouse.save(path)
        with IndexedWarehouse.open(path) as engine:
            assert engine.backend == "memory"
            for alpha in (0.0, 0.35, 0.6):
                assert_answers_identical(
                    query_tc_tree(toy_warehouse.tree, alpha=alpha),
                    engine.query(alpha=alpha),
                )

    def test_negative_alpha_rejected(self, toy_snapshot_path):
        with IndexedWarehouse.open(toy_snapshot_path) as engine:
            with pytest.raises(TCIndexError):
                engine.query(alpha=-0.5)

    def test_facade_metadata(self, toy_warehouse, toy_snapshot_path):
        with IndexedWarehouse.open(toy_snapshot_path) as engine:
            assert engine.backend == "snapshot"
            assert (
                engine.num_indexed_trusses
                == toy_warehouse.num_indexed_trusses
            )
            assert engine.num_items == toy_warehouse.tree.num_items
            assert engine.patterns() == toy_warehouse.tree.patterns()
            low, high = engine.alpha_range()
            assert (low, high) == toy_warehouse.alpha_range()


class TestCarrierCache:
    def test_lru_eviction(self):
        cache = CarrierCache(capacity=2)
        cache.put(1, "a")
        cache.put(2, "b")
        assert cache.get(1) == "a"  # 1 is now most recent
        cache.put(3, "c")  # evicts 2
        assert cache.get(2) is None
        assert cache.get(1) == "a"
        assert cache.get(3) == "c"
        assert len(cache) == 2

    def test_hit_miss_counters(self):
        cache = CarrierCache(capacity=4)
        assert cache.get(7) is None
        cache.put(7, "x")
        assert cache.get(7) == "x"
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_invalid_capacity(self):
        with pytest.raises(TCIndexError):
            CarrierCache(capacity=0)

    def test_engine_warm_queries_hit_cache(self, toy_snapshot_path):
        with IndexedWarehouse.open(toy_snapshot_path) as engine:
            engine.query(alpha=0.0)
            cold = engine.stats()["cache"]
            engine.query(alpha=0.0)
            warm = engine.stats()["cache"]
            assert cold["misses"] == warm["misses"]  # no new decodes
            assert warm["hits"] > cold["hits"]

    def test_tiny_cache_still_correct(self, toy_warehouse, tmp_path):
        """Eviction churn never changes answers, only decode counts."""
        path = tmp_path / "toy.tcsnap"
        write_snapshot(toy_warehouse.tree, path)
        with IndexedWarehouse.open(path, cache_size=1) as engine:
            for alpha in (0.0, 0.1, 0.35):
                assert_answers_identical(
                    query_tc_tree(toy_warehouse.tree, alpha=alpha),
                    engine.query(alpha=alpha),
                )


class TestBatchAndTopK:
    def test_batch_matches_individual(self, toy_warehouse, tmp_path):
        path = tmp_path / "toy.tcsnap"
        write_snapshot(toy_warehouse.tree, path)
        specs = [
            (None, 0.0),
            ((0,), 0.0),
            (None, 0.35),
            ((0, 1), 0.1),
        ]
        with IndexedWarehouse.open(path) as engine:
            batch = engine.query_batch(specs)
            assert len(batch) == len(specs)
            for (pattern, alpha), answer in zip(specs, batch):
                assert_answers_identical(
                    query_tc_tree(
                        toy_warehouse.tree, pattern=pattern, alpha=alpha
                    ),
                    answer,
                )

    def test_top_k_matches_tree_ranking(
        self, toy_warehouse, toy_snapshot_path
    ):
        with IndexedWarehouse.open(toy_snapshot_path) as engine:
            for k in (1, 2, 5):
                assert engine.top_k(k, alpha=0.1) == top_k_communities(
                    toy_warehouse.tree, k, alpha=0.1
                )

    def test_top_k_from_query_answer_source(self, toy_warehouse):
        """top_k_communities accepts a QueryAnswer directly."""
        answer = query_tc_tree(toy_warehouse.tree, alpha=0.1)
        assert top_k_communities(answer, 3) == top_k_communities(
            toy_warehouse.tree, 3, alpha=0.1
        )

    def test_queries_served_counter(self, toy_snapshot_path):
        with IndexedWarehouse.open(toy_snapshot_path) as engine:
            engine.query_batch([(None, 0.0), (None, 0.1)])
            engine.query(alpha=0.2)
            assert engine.stats()["queries_served"] == 3


class TestConstruction:
    def test_requires_exactly_one_backend(self):
        with pytest.raises(TCIndexError):
            IndexedWarehouse()

    def test_stats_payload_shape(self, toy_snapshot_path):
        with IndexedWarehouse.open(toy_snapshot_path) as engine:
            stats = engine.stats()
            assert stats["backend"] == "snapshot"
            assert stats["snapshot_bytes"] > 0
            assert set(stats["cache"]) == {
                "capacity", "entries", "hits", "misses",
            }
