"""Tests for the binary TC-Tree snapshot format."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.errors import TCIndexError
from repro.index.warehouse import ThemeCommunityWarehouse
from repro.serve.snapshot import (
    MAGIC,
    TCTreeSnapshot,
    estimate_snapshot_bytes,
    is_snapshot_file,
    migrate_json_to_snapshot,
    prune_alpha_of,
    write_snapshot,
)
from tests.conftest import database_networks


def _assert_lossless(original, restored) -> None:
    assert restored.tree.patterns() == original.tree.patterns()
    for pattern in original.tree.patterns():
        ours = original.tree.find_node(pattern).decomposition
        theirs = restored.tree.find_node(pattern).decomposition
        assert theirs.thresholds() == ours.thresholds()
        assert theirs.frequencies == ours.frequencies
        assert [level.removed_edges for level in theirs.levels] == [
            level.removed_edges for level in ours.levels
        ]


class TestRoundTrip:
    def test_toy_round_trip(self, toy_warehouse, toy_snapshot_path):
        with TCTreeSnapshot.open(toy_snapshot_path) as snapshot:
            assert snapshot.num_nodes == toy_warehouse.num_indexed_trusses
            assert snapshot.patterns() == toy_warehouse.tree.patterns()
            _assert_lossless(toy_warehouse, snapshot.materialize())

    @settings(deadline=None, max_examples=15)
    @given(database_networks())
    def test_random_round_trip(self, tmp_path_factory, network):
        warehouse = ThemeCommunityWarehouse.build(network)
        path = tmp_path_factory.mktemp("snap") / "net.tcsnap"
        write_snapshot(warehouse.tree, path)
        with TCTreeSnapshot.open(path) as snapshot:
            assert snapshot.num_items == warehouse.tree.num_items
            _assert_lossless(warehouse, snapshot.materialize())

    def test_empty_tree(self, tmp_path):
        from repro.network.dbnetwork import DatabaseNetwork

        warehouse = ThemeCommunityWarehouse.build(DatabaseNetwork())
        path = tmp_path / "empty.tcsnap"
        write_snapshot(warehouse.tree, path)
        with TCTreeSnapshot.open(path) as snapshot:
            assert snapshot.num_nodes == 0
            assert snapshot.patterns() == []
            assert snapshot.materialize().num_indexed_trusses == 0

    def test_reported_size_matches_file(
        self, toy_warehouse, tmp_path
    ):
        path = tmp_path / "toy.tcsnap"
        written = write_snapshot(toy_warehouse.tree, path)
        assert path.stat().st_size == written

    def test_rewrite_is_atomic_for_open_readers(
        self, toy_warehouse, tmp_path
    ):
        """Re-indexing over a served snapshot must swap the inode, not
        truncate it in place under a live reader's mmap."""
        path = tmp_path / "toy.tcsnap"
        write_snapshot(toy_warehouse.tree, path)
        with TCTreeSnapshot.open(path) as snapshot:
            write_snapshot(toy_warehouse.tree, path)  # overwrite
            # The open reader still sees a complete, decodable file.
            for i in range(snapshot.num_nodes):
                snapshot.decode(i)
        assert not list(tmp_path.glob("*.tmp"))


class TestLazyDecoding:
    def test_decode_single_node(self, toy_warehouse, toy_snapshot_path):
        with TCTreeSnapshot.open(toy_snapshot_path) as snapshot:
            for i in range(snapshot.num_nodes):
                pattern = snapshot.pattern(i)
                expected = toy_warehouse.tree.find_node(
                    pattern
                ).decomposition
                decoded = snapshot.decode(i)
                assert decoded.pattern == pattern
                assert decoded.thresholds() == expected.thresholds()
                assert decoded.frequencies == expected.frequencies

    def test_prune_alpha_matches_emptiness(
        self, toy_warehouse, toy_snapshot_path
    ):
        """The TOC threshold reproduces edges_at emptiness exactly."""
        from repro.core.mptd import COHESION_TOLERANCE

        with TCTreeSnapshot.open(toy_snapshot_path) as snapshot:
            for i in range(snapshot.num_nodes):
                decomposition = snapshot.decode(i)
                assert snapshot.prune_alpha(i) == prune_alpha_of(
                    decomposition
                )
                for alpha in (0.0, 0.3, 0.45, 0.6, 1.0):
                    bound = alpha + COHESION_TOLERANCE
                    assert (
                        snapshot.prune_alpha(i) > bound
                    ) == bool(decomposition.edges_at(alpha))

    def test_children_adjacency(self, toy_warehouse, toy_snapshot_path):
        with TCTreeSnapshot.open(toy_snapshot_path) as snapshot:
            from repro.serve.snapshot import ROOT

            root_patterns = sorted(
                snapshot.pattern(i) for i in snapshot.children(ROOT)
            )
            assert root_patterns == [
                c.pattern for c in toy_warehouse.tree.root.children
            ]


class TestMigration:
    def test_json_to_binary_lossless(self, toy_warehouse, tmp_path):
        json_path = tmp_path / "toy.tctree.json"
        snap_path = tmp_path / "toy.tcsnap"
        toy_warehouse.save(json_path)
        json_bytes, snapshot_bytes = migrate_json_to_snapshot(
            json_path, snap_path
        )
        assert json_bytes == json_path.stat().st_size
        assert snapshot_bytes == snap_path.stat().st_size
        with TCTreeSnapshot.open(snap_path) as snapshot:
            _assert_lossless(toy_warehouse, snapshot.materialize())

    @settings(deadline=None, max_examples=10)
    @given(database_networks())
    def test_migrated_round_trip_random(self, tmp_path_factory, network):
        """JSON → binary → memory preserves every float and edge."""
        warehouse = ThemeCommunityWarehouse.build(network)
        base = tmp_path_factory.mktemp("migrate")
        warehouse.save(base / "net.json")
        migrate_json_to_snapshot(base / "net.json", base / "net.tcsnap")
        _assert_lossless(
            warehouse, ThemeCommunityWarehouse.load(base / "net.tcsnap")
        )

    def test_warehouse_load_sniffs_snapshot(
        self, toy_warehouse, toy_snapshot_path
    ):
        loaded = ThemeCommunityWarehouse.load(toy_snapshot_path)
        _assert_lossless(toy_warehouse, loaded)

    def test_is_snapshot_file(self, toy_snapshot_path, tmp_path):
        assert is_snapshot_file(toy_snapshot_path)
        json_path = tmp_path / "x.json"
        json_path.write_text("{}")
        assert not is_snapshot_file(json_path)
        assert not is_snapshot_file(tmp_path / "missing")


class TestValidation:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.tcsnap"
        path.write_bytes(b"NOTASNAP" + b"\x00" * 64)
        with pytest.raises(TCIndexError):
            TCTreeSnapshot.open(path)

    def test_bad_version(self, toy_snapshot_path):
        data = bytearray(toy_snapshot_path.read_bytes())
        data[8] = 99  # version field follows the 8-byte magic
        toy_snapshot_path.write_bytes(bytes(data))
        with pytest.raises(TCIndexError):
            TCTreeSnapshot.open(toy_snapshot_path)

    def test_truncated_file(self, toy_snapshot_path):
        data = toy_snapshot_path.read_bytes()
        toy_snapshot_path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TCIndexError):
            TCTreeSnapshot.open(toy_snapshot_path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty"
        path.write_bytes(b"")
        with pytest.raises(TCIndexError):
            TCTreeSnapshot.open(path)

    def test_magic_prefix_only(self, tmp_path):
        path = tmp_path / "short"
        path.write_bytes(MAGIC)
        with pytest.raises(TCIndexError):
            TCTreeSnapshot.open(path)

    def test_duplicate_sibling_rejected(self, tmp_path):
        """Same invariant from_dict enforces on JSON: two siblings with
        one item are a malformed tree and must not load."""
        from repro.index.decomposition import (
            DecompositionLevel,
            TrussDecomposition,
        )
        from repro.index.tcnode import TCNode
        from repro.index.tctree import TCTree

        root = TCNode(None, (), None)
        for _ in range(2):  # two nodes for pattern (0,)
            decomposition = TrussDecomposition(
                pattern=(0,),
                levels=[DecompositionLevel(0.5, [(1, 2)])],
                frequencies={1: 0.5, 2: 0.5},
            )
            root.children.append(TCNode(0, (0,), decomposition))
        path = tmp_path / "dup.tcsnap"
        write_snapshot(TCTree(root, num_items=1), path)
        with pytest.raises(TCIndexError, match="duplicate"):
            TCTreeSnapshot.open(path)


class TestSizeEstimate:
    def test_estimate_is_exact(self, toy_warehouse, toy_snapshot_path):
        from repro.index.stats import tc_tree_statistics

        stats = tc_tree_statistics(toy_warehouse.tree)
        assert (
            estimate_snapshot_bytes(
                stats.num_nodes,
                stats.total_decomposition_levels,
                stats.total_edges_stored,
                stats.total_frequency_entries,
            )
            == toy_snapshot_path.stat().st_size
        )
