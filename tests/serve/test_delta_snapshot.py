"""Golden-fixture regression for the REPROTCD v1 overlay delta format.

``fixtures/golden_delta_v1.tcsnap`` was written from the same
deterministic network as ``golden_v1.tcsnap`` (the full-snapshot golden)
plus a pinned two-delta maintenance stream. The same two contracts are
pinned as for the full format: a v1 overlay written by an older build
must keep opening and applying on every future build, and rewriting the
identical diff must reproduce identical bytes. Any change to either MUST
bump :data:`repro.serve.snapshot.DELTA_VERSION`, regenerate the fixture,
and keep this file as the back-compat witness.
"""

from __future__ import annotations

import copy
import struct
from pathlib import Path

import pytest

from repro.errors import TCIndexError
from repro.graphs.graph import Graph
from repro.index.tctree import build_tc_tree
from repro.index.updates import Delta, apply_deltas
from repro.network.dbnetwork import DatabaseNetwork
from repro.serve.snapshot import (
    DELTA_MAGIC,
    DELTA_VERSION,
    DeltaSnapshot,
    TCTreeSnapshot,
    apply_delta_to_tree,
    diff_trees,
    is_delta_snapshot_file,
    is_snapshot_file,
    write_delta_snapshot,
    write_snapshot,
)
from repro.txdb.database import TransactionDatabase
from tests.serve.test_golden_snapshot import FIXTURE as FULL_FIXTURE
from tests.serve.test_golden_snapshot import golden_network

DELTA_FIXTURE = (
    Path(__file__).parent / "fixtures" / "golden_delta_v1.tcsnap"
)


def golden_maintenance():
    """(base_tree, updated_tree): the pinned delta stream applied to the
    golden network — an insert plus a delete against vertex 0."""
    network = golden_network()
    base = build_tc_tree(network)
    mutated = copy.deepcopy(network)
    deltas = [Delta.insert(0, [0, 2]), Delta.delete(0, 0)]
    result = apply_deltas(mutated, base, deltas, mode="incremental")
    return base, result.tree


class TestGoldenDeltaFixture:
    def test_version_is_pinned(self):
        assert DELTA_VERSION == 1

    def test_opens_with_pinned_metadata(self):
        delta = DeltaSnapshot.open(DELTA_FIXTURE)
        assert delta.generation == 2
        assert delta.base_generation == 1
        assert delta.num_items == 5
        assert delta.kind == "vertex"
        assert delta.removed_patterns == []
        assert delta.changed_patterns == [(0,), (2,), (3,)]
        for index in range(delta.num_changed):
            decomposition = delta.decode(index)
            assert decomposition.pattern == delta.changed_patterns[index]
            assert not decomposition.is_empty()

    def test_write_is_byte_stable(self, tmp_path):
        base, updated = golden_maintenance()
        out = tmp_path / "rebuilt.tcdelta"
        write_delta_snapshot(
            base, updated, out, generation=2, base_generation=1
        )
        assert out.read_bytes() == DELTA_FIXTURE.read_bytes()

    def test_base_plus_overlay_reconstructs_updated(self, tmp_path):
        """The serving contract: full base snapshot + overlay chain ==
        the updated index, bit for bit."""
        base_tree = TCTreeSnapshot.open(FULL_FIXTURE).materialize().tree
        delta = DeltaSnapshot.open(DELTA_FIXTURE)
        reconstructed = apply_delta_to_tree(base_tree, delta)
        _, updated = golden_maintenance()
        a = tmp_path / "reconstructed.tcsnap"
        b = tmp_path / "updated.tcsnap"
        write_snapshot(reconstructed, a)
        write_snapshot(updated, b)
        assert a.read_bytes() == b.read_bytes()

    def test_future_version_is_rejected(self, tmp_path):
        blob = bytearray(DELTA_FIXTURE.read_bytes())
        struct.pack_into("<I", blob, len(DELTA_MAGIC), DELTA_VERSION + 1)
        bumped = tmp_path / "bumped.tcdelta"
        bumped.write_bytes(blob)
        with pytest.raises(TCIndexError, match="version"):
            DeltaSnapshot.open(bumped)

    def test_bad_magic_is_rejected(self, tmp_path):
        blob = bytearray(DELTA_FIXTURE.read_bytes())
        blob[:8] = b"NOTADELT"
        bad = tmp_path / "bad.tcdelta"
        bad.write_bytes(blob)
        with pytest.raises(TCIndexError):
            DeltaSnapshot.open(bad)

    def test_format_sniffing(self):
        assert is_delta_snapshot_file(DELTA_FIXTURE)
        assert not is_delta_snapshot_file(FULL_FIXTURE)
        assert not is_snapshot_file(DELTA_FIXTURE)


class TestDiffAndApply:
    def _removal_network(self):
        # Item 1 lives in exactly one transaction of vertex 0 — deleting
        # it zeroes the item-1 frequency there, which empties the (1,)
        # and (0, 1) trusses (a 3-truss needs all three triangle
        # vertices), so those patterns vanish from the tree.
        graph = Graph([(0, 1), (1, 2), (0, 2)])
        databases = {
            0: TransactionDatabase([[0, 1], [0]]),
            1: TransactionDatabase([[0, 1]]),
            2: TransactionDatabase([[0, 1]]),
        }
        return DatabaseNetwork(graph, databases)

    def test_delta_carries_removed_patterns(self, tmp_path):
        network = self._removal_network()
        base = build_tc_tree(network)
        assert (1,) in base.patterns()
        result = apply_deltas(
            network, base, [Delta.delete(0, 0)], mode="incremental"
        )
        assert (1,) not in result.tree.patterns()
        removed, changed = diff_trees(base, result.tree)
        assert (1,) in removed
        out = tmp_path / "removal.tcdelta"
        write_delta_snapshot(
            base, result.tree, out, generation=2, base_generation=1
        )
        delta = DeltaSnapshot.open(out)
        assert (1,) in delta.removed_patterns
        reconstructed = apply_delta_to_tree(base, delta)
        a = tmp_path / "a.tcsnap"
        b = tmp_path / "b.tcsnap"
        write_snapshot(reconstructed, a)
        write_snapshot(result.tree, b)
        assert a.read_bytes() == b.read_bytes()

    def test_unchanged_trees_diff_empty(self, tmp_path):
        base = build_tc_tree(self._removal_network())
        result = apply_deltas(self._removal_network(), base, [])
        removed, changed = diff_trees(base, result.tree)
        assert removed == []
        assert changed == []

    def test_generation_must_advance_base(self, tmp_path):
        base, updated = golden_maintenance()
        with pytest.raises(TCIndexError):
            write_delta_snapshot(
                base, updated, tmp_path / "x.tcdelta",
                generation=1, base_generation=1,
            )

    def test_apply_rejects_kind_mismatch(self):
        from repro.edgenet.index import build_edge_tc_tree
        from repro.edgenet.network import EdgeDatabaseNetwork

        edge_network = EdgeDatabaseNetwork()
        edge_network.add_transaction(0, 1, [0, 1])
        edge_tree = build_edge_tc_tree(edge_network, backend="serial")
        delta = DeltaSnapshot.open(DELTA_FIXTURE)
        with pytest.raises(TCIndexError):
            apply_delta_to_tree(edge_tree, delta)
