"""LiveIndex writer tier: overlay ingestion, compaction, watching."""

from __future__ import annotations

import time

import pytest

from repro.datasets.synthetic import generate_synthetic_network
from repro.errors import ServeError, TCIndexError
from repro.index.tctree import build_tc_tree
from repro.index.updates import Delta, apply_deltas
from repro.serve.engine import IndexedWarehouse
from repro.serve.live import LiveIndex
from repro.serve.snapshot import write_delta_snapshot, write_snapshot


@pytest.fixture()
def chain(tmp_path):
    """(engine, overlay paths): a base engine plus three applicable
    overlay files gen-2..4 written to ``tmp_path``."""
    network = generate_synthetic_network(
        num_items=5, num_seeds=2, mutation_rate=0.4,
        max_transactions=10, max_transaction_length=4, seed=23,
    )
    tree = build_tc_tree(network)
    snap = tmp_path / "base.tcsnap"
    write_snapshot(tree, snap)
    engine = IndexedWarehouse.open(snap)
    vertices = sorted(network.databases)
    overlays = []
    for generation in (2, 3, 4):
        result = apply_deltas(
            network, tree,
            [Delta.insert(vertices[generation], [generation % 5])],
            mode="incremental",
        )
        path = tmp_path / f"gen-{generation:08d}.tcdelta"
        write_delta_snapshot(
            tree, result.tree, path,
            generation=generation, base_generation=generation - 1,
        )
        tree = result.tree
        overlays.append(path)
    yield engine, overlays
    engine.close()


class TestApplyDelta:
    def test_accepts_paths_and_advances_generations(self, chain):
        engine, overlays = chain
        live = LiveIndex(engine)
        for expected, overlay in enumerate(overlays, start=2):
            summary = live.apply_delta(overlay)
            assert summary["generation"] == expected
            assert engine.generation == expected
        assert live.deltas_applied == 3

    def test_stale_overlay_rejected(self, chain):
        engine, overlays = chain
        live = LiveIndex(engine)
        live.apply_delta(overlays[0])
        with pytest.raises(TCIndexError, match="base generation"):
            live.apply_delta(overlays[0])  # base 1, served 2

    def test_out_of_order_overlay_rejected(self, chain):
        engine, overlays = chain
        live = LiveIndex(engine)
        with pytest.raises(TCIndexError, match="base generation"):
            live.apply_delta(overlays[1])  # base 2, served 1

    def test_compaction_swaps_to_snapshot(self, chain, tmp_path):
        engine, overlays = chain
        compact_dir = tmp_path / "compact"
        compact_dir.mkdir()
        live = LiveIndex(engine, directory=compact_dir,
                         compact_threshold=2)
        first = live.apply_delta(overlays[0])
        assert not first["compacted"]
        assert engine.backend == "memory"  # overlay served from memory
        second = live.apply_delta(overlays[1])
        assert second["compacted"]
        assert engine.backend == "snapshot"
        assert (compact_dir / "gen-00000003.tcsnap").exists()
        assert live.overlays_since_compaction == 0
        # The chain keeps going on top of the compacted snapshot.
        third = live.apply_delta(overlays[2])
        assert engine.generation == 4
        assert not third["compacted"]

    def test_compact_threshold_must_be_positive(self, chain):
        engine, _ = chain
        with pytest.raises(ServeError):
            LiveIndex(engine, compact_threshold=0)


class TestPublishTree:
    def test_publishes_and_tracks(self, chain):
        engine, _ = chain
        live = LiveIndex(engine)
        tree = engine.materialize_tree()
        assert live.publish_tree(tree) == 2
        assert engine.generation == 2
        assert live.deltas_applied == 1


class TestWatcher:
    def test_poll_once_applies_in_generation_order(self, chain):
        engine, overlays = chain
        live = LiveIndex(engine, directory=overlays[0].parent)
        assert live.poll_once() == 3
        assert engine.generation == 4
        assert live.watch_errors == []
        # A second pass finds nothing new.
        assert live.poll_once() == 0

    def test_poll_defers_future_base_until_chain_catches_up(
        self, chain, tmp_path
    ):
        engine, overlays = chain
        watch_dir = tmp_path / "watch"
        watch_dir.mkdir()
        # Only gen-3 present: its base (2) is not served yet.
        (watch_dir / overlays[1].name).write_bytes(
            overlays[1].read_bytes()
        )
        live = LiveIndex(engine, directory=watch_dir)
        assert live.poll_once() == 0
        assert engine.generation == 1
        assert live.watch_errors == []  # deferred, not an error
        # Its predecessor arrives: both apply on the next pass.
        (watch_dir / overlays[0].name).write_bytes(
            overlays[0].read_bytes()
        )
        assert live.poll_once() == 2
        assert engine.generation == 3

    def test_poll_skips_superseded_overlays(self, chain, tmp_path):
        engine, overlays = chain
        live = LiveIndex(engine)
        live.apply_delta(overlays[0])
        live.apply_delta(overlays[1])
        watch_dir = tmp_path / "late"
        watch_dir.mkdir()
        (watch_dir / overlays[0].name).write_bytes(
            overlays[0].read_bytes()
        )
        assert live.poll_once(watch_dir) == 0
        assert engine.generation == 3  # untouched
        assert live.watch_errors == []

    def test_poll_collects_errors_from_bad_files(self, chain, tmp_path):
        engine, _ = chain
        watch_dir = tmp_path / "bad"
        watch_dir.mkdir()
        (watch_dir / "junk.tcdelta").write_bytes(b"not a delta at all")
        live = LiveIndex(engine, directory=watch_dir)
        assert live.poll_once() == 0
        assert len(live.watch_errors) == 1
        assert "junk.tcdelta" in live.watch_errors[0]
        # The bad file is remembered; it does not error on every pass.
        assert live.poll_once() == 0
        assert len(live.watch_errors) == 1

    def test_poll_requires_a_directory(self, chain):
        engine, _ = chain
        live = LiveIndex(engine)
        with pytest.raises(ServeError, match="no watch directory"):
            live.poll_once()
        with pytest.raises(ServeError, match="no watch directory"):
            live.watch()

    def test_watch_thread_applies_dropped_overlays(self, chain, tmp_path):
        engine, overlays = chain
        watch_dir = tmp_path / "drop"
        watch_dir.mkdir()
        live = LiveIndex(engine, directory=watch_dir)
        thread = live.watch(poll_interval=0.05)
        assert live.watch(poll_interval=0.05) is thread  # idempotent
        try:
            for overlay in overlays:
                (watch_dir / overlay.name).write_bytes(
                    overlay.read_bytes()
                )
            deadline = time.monotonic() + 10.0
            while (
                engine.generation < 4 and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert engine.generation == 4
            assert live.watch_errors == []
        finally:
            live.stop()
        assert not thread.is_alive()
        live.stop()  # no-op when already stopped

    def test_repr(self, chain):
        engine, _ = chain
        live = LiveIndex(engine)
        assert "generation=1" in repr(live)
