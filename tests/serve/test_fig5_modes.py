"""Figure 5 query-mode sweeps, on the tree and on the snapshot engine.

The paper's serving evaluation runs two sweeps: QBA fixes ``q = S`` and
raises ``α_q`` (retrieved/visited node counts can only fall — Theorem
6.1 shrinks every truss), and QBP fixes ``α_q = 0`` and grows the query
pattern (counts can only rise — a larger item set prunes fewer
subtrees). Both backends must show the same monotone curves, and the
same *numbers*: the engine is held to bit-identical parity everywhere.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.index.query import query_tc_tree
from repro.index.warehouse import ThemeCommunityWarehouse
from repro.serve.engine import IndexedWarehouse
from repro.serve.snapshot import write_snapshot
from tests.conftest import database_networks


def _qba_alphas(tree) -> list[float]:
    high = tree.max_alpha()
    return [fraction * high for fraction in (0.0, 0.25, 0.5, 0.75, 1.0)]


def _qbp_patterns(tree) -> list[tuple[int, ...]]:
    items = sorted({item for p in tree.patterns() for item in p})
    return [tuple(items[:length]) for length in range(1, len(items) + 1)]


def _sweep(query, arguments, mode):
    answers = [query(argument) for argument in arguments]
    retrieved = [a.retrieved_nodes for a in answers]
    visited = [a.visited_nodes for a in answers]
    if mode == "qba":  # rising α_q → counts fall
        assert retrieved == sorted(retrieved, reverse=True)
        assert visited == sorted(visited, reverse=True)
    else:  # growing q → counts rise
        assert retrieved == sorted(retrieved)
        assert visited == sorted(visited)
    return retrieved, visited


class TestInMemorySweeps:
    def test_qba_monotone_toy(self, toy_warehouse):
        tree = toy_warehouse.tree
        _sweep(
            lambda alpha: query_tc_tree(tree, alpha=alpha),
            _qba_alphas(tree),
            "qba",
        )

    def test_qbp_monotone_toy(self, toy_warehouse):
        tree = toy_warehouse.tree
        patterns = _qbp_patterns(tree)
        assert patterns, "toy tree indexes at least one item"
        _sweep(
            lambda pattern: query_tc_tree(tree, pattern=pattern),
            patterns,
            "qbp",
        )

    @settings(deadline=None, max_examples=15)
    @given(database_networks())
    def test_qba_monotone_random(self, network):
        tree = ThemeCommunityWarehouse.build(network).tree
        _sweep(
            lambda alpha: query_tc_tree(tree, alpha=alpha),
            _qba_alphas(tree),
            "qba",
        )

    @settings(deadline=None, max_examples=15)
    @given(database_networks())
    def test_qbp_monotone_random(self, network):
        tree = ThemeCommunityWarehouse.build(network).tree
        patterns = _qbp_patterns(tree)
        if not patterns:
            return
        _sweep(
            lambda pattern: query_tc_tree(tree, pattern=pattern),
            patterns,
            "qbp",
        )


class TestSnapshotEngineSweeps:
    def test_qba_monotone_and_identical(
        self, toy_warehouse, toy_snapshot_path
    ):
        tree = toy_warehouse.tree
        with IndexedWarehouse.open(toy_snapshot_path) as engine:
            engine_curve = _sweep(
                lambda alpha: engine.query(alpha=alpha),
                _qba_alphas(tree),
                "qba",
            )
            tree_curve = _sweep(
                lambda alpha: query_tc_tree(tree, alpha=alpha),
                _qba_alphas(tree),
                "qba",
            )
            assert engine_curve == tree_curve

    def test_qbp_monotone_and_identical(
        self, toy_warehouse, toy_snapshot_path
    ):
        tree = toy_warehouse.tree
        patterns = _qbp_patterns(tree)
        with IndexedWarehouse.open(toy_snapshot_path) as engine:
            engine_curve = _sweep(
                lambda pattern: engine.query(pattern=pattern),
                patterns,
                "qbp",
            )
            tree_curve = _sweep(
                lambda pattern: query_tc_tree(tree, pattern=pattern),
                patterns,
                "qbp",
            )
            assert engine_curve == tree_curve

    @settings(deadline=None, max_examples=10)
    @given(database_networks())
    def test_random_sweeps_identical(self, tmp_path_factory, network):
        """Both Figure 5 sweeps, random networks, both backends."""
        warehouse = ThemeCommunityWarehouse.build(network)
        tree = warehouse.tree
        path = tmp_path_factory.mktemp("fig5") / "net.tcsnap"
        write_snapshot(tree, path)
        with IndexedWarehouse.open(path) as engine:
            for alpha in _qba_alphas(tree):
                ours = engine.query(alpha=alpha)
                theirs = query_tc_tree(tree, alpha=alpha)
                assert ours.retrieved_nodes == theirs.retrieved_nodes
                assert ours.visited_nodes == theirs.visited_nodes
            for pattern in _qbp_patterns(tree):
                ours = engine.query(pattern=pattern)
                theirs = query_tc_tree(tree, pattern=pattern)
                assert ours.retrieved_nodes == theirs.retrieved_nodes
                assert ours.visited_nodes == theirs.visited_nodes
