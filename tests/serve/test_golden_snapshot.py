"""Golden-fixture regression for the REPROTCS v1 snapshot format.

``fixtures/golden_v1.tcsnap`` was written by PR 4 from a deterministic
synthetic network. Two contracts are pinned:

1. **Cross-version open** — a v1 file written by an older build must keep
   opening and decoding on every future build. If this fails, a reader
   change broke the on-disk contract.
2. **Byte-stable writes** — rebuilding the identical tree must reproduce
   the identical bytes. Writer output covers the format *and* the
   numeric pipeline (threshold floats are raw binary64), so any change
   to either MUST bump :data:`repro.serve.snapshot.VERSION`, regenerate
   the fixture for the new version, and keep this v1 file (plus this
   open test) as the back-compat witness.
"""

from __future__ import annotations

import struct
from pathlib import Path

import pytest

from repro.datasets.synthetic import generate_synthetic_network
from repro.errors import TCIndexError
from repro.index.tctree import build_tc_tree
from repro.serve.snapshot import (
    MAGIC,
    VERSION,
    TCTreeSnapshot,
    write_snapshot,
)

FIXTURE = Path(__file__).parent / "fixtures" / "golden_v1.tcsnap"

GOLDEN_PATTERNS = [
    (0,), (0, 3), (0, 4), (1,), (1, 2), (1, 3), (1, 4),
    (2,), (2, 3), (2, 4), (3,), (3, 4), (4,),
]


def golden_network():
    return generate_synthetic_network(
        num_items=5,
        num_seeds=2,
        mutation_rate=0.4,
        max_transactions=10,
        max_transaction_length=4,
        seed=11,
    )


class TestGoldenFixture:
    def test_version_is_pinned(self):
        # Bumping the format version requires a new golden fixture for
        # that version; this file stays as the v1 back-compat witness.
        assert VERSION == 1

    def test_opens_and_decodes(self):
        with TCTreeSnapshot.open(FIXTURE) as snapshot:
            assert snapshot.num_nodes == len(GOLDEN_PATTERNS)
            assert snapshot.num_items == 5
            assert snapshot.patterns() == GOLDEN_PATTERNS
            for index in range(snapshot.num_nodes):
                decomposition = snapshot.decode(index)
                assert decomposition.pattern == snapshot.pattern(index)
                assert not decomposition.is_empty()
                assert decomposition.max_alpha == pytest.approx(
                    snapshot.prune_alpha(index)
                )

    def test_materializes_round_trip(self):
        with TCTreeSnapshot.open(FIXTURE) as snapshot:
            warehouse = snapshot.materialize()
        assert warehouse.tree.patterns() == GOLDEN_PATTERNS

    def test_write_is_byte_stable(self, tmp_path):
        """Rebuilding the same tree must reproduce the fixture exactly.

        A failure here means the build's numeric pipeline or the writer
        changed output for existing data — bump VERSION and regenerate
        (see module docstring) rather than silently shifting bytes.
        """
        tree = build_tc_tree(golden_network())
        out = tmp_path / "rebuilt.tcsnap"
        write_snapshot(tree, out)
        assert out.read_bytes() == FIXTURE.read_bytes()

    def test_future_version_is_rejected(self, tmp_path):
        blob = bytearray(FIXTURE.read_bytes())
        struct.pack_into("<I", blob, len(MAGIC), VERSION + 1)
        bumped = tmp_path / "bumped.tcsnap"
        bumped.write_bytes(blob)
        with pytest.raises(TCIndexError, match="version"):
            TCTreeSnapshot.open(bumped)
