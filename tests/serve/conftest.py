"""Shared fixtures for the serving-layer tests.

The parity discipline mirrors PR 2: the in-memory tree queried by
:func:`query_tc_tree` is the oracle, and every serving backend must
reproduce its answers bit-identically (trusses, retrieved_nodes,
visited_nodes).
"""

from __future__ import annotations

import pytest

from repro.index.query import QueryAnswer
from repro.index.warehouse import ThemeCommunityWarehouse
from repro.serve.snapshot import write_snapshot


def assert_answers_identical(
    expected: QueryAnswer, actual: QueryAnswer
) -> None:
    """Bit-identical answer check: counts, patterns, edges, frequencies."""
    assert actual.query_pattern == expected.query_pattern
    assert actual.alpha == expected.alpha
    assert actual.retrieved_nodes == expected.retrieved_nodes
    assert actual.visited_nodes == expected.visited_nodes
    assert [t.pattern for t in actual.trusses] == [
        t.pattern for t in expected.trusses
    ]
    for ours, theirs in zip(actual.trusses, expected.trusses):
        assert set(ours.graph.iter_edges()) == set(
            theirs.graph.iter_edges()
        )
        assert ours.frequencies == theirs.frequencies
        assert ours.alpha == theirs.alpha


@pytest.fixture(scope="session")
def toy_warehouse(toy_network) -> ThemeCommunityWarehouse:
    return ThemeCommunityWarehouse.build(toy_network)


@pytest.fixture()
def toy_snapshot_path(toy_warehouse, tmp_path):
    path = tmp_path / "toy.tcsnap"
    write_snapshot(toy_warehouse.tree, path)
    return path
