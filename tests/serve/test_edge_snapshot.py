"""Edge TC-Tree serving: REPROTCS v2 payload kind, engine dispatch, HTTP.

The in-memory :meth:`EdgeTCTree.query` is the oracle; the snapshot-backed
engine must reproduce its answers bit-identically, exactly as the vertex
serving suite demands of ``query_tc_tree``.
"""

from __future__ import annotations

import json
import struct
import urllib.request

import pytest

from repro.edgenet.index import build_edge_tc_tree
from repro.edgenet.network import EdgeDatabaseNetwork
from repro.errors import TCIndexError
from repro.serve.engine import IndexedWarehouse
from repro.serve.snapshot import (
    EDGE_VERSION,
    FLAG_EDGE,
    MAGIC,
    TCTreeSnapshot,
    is_snapshot_file,
    write_snapshot,
)
from repro.serve.server import start_server_thread
from tests.serve.conftest import assert_answers_identical


def _edge_network() -> EdgeDatabaseNetwork:
    import random

    rng = random.Random(23)
    network = EdgeDatabaseNetwork()
    for u in range(9):
        for v in range(u + 1, 9):
            if rng.random() < 0.6:
                for _ in range(rng.randint(1, 3)):
                    items = [i for i in range(4) if rng.random() < 0.6]
                    if items:
                        network.add_transaction(u, v, items)
    return network


@pytest.fixture(scope="module")
def edge_tree():
    return build_edge_tc_tree(_edge_network())


@pytest.fixture()
def edge_snapshot_path(edge_tree, tmp_path):
    path = tmp_path / "edge.tcsnap"
    write_snapshot(edge_tree, path)
    return path


class TestEdgeSnapshotFormat:
    def test_header_carries_v2_and_edge_flag(self, edge_snapshot_path):
        blob = edge_snapshot_path.read_bytes()
        magic, version, flags = struct.unpack_from("<8sII", blob, 0)
        assert magic == MAGIC
        assert version == EDGE_VERSION
        assert flags & FLAG_EDGE
        assert is_snapshot_file(edge_snapshot_path)

    def test_open_round_trips(self, edge_tree, edge_snapshot_path):
        with TCTreeSnapshot.open(edge_snapshot_path) as snapshot:
            assert snapshot.kind == "edge"
            assert snapshot.num_nodes == edge_tree.num_nodes
            assert snapshot.num_items == edge_tree.num_items
            assert snapshot.patterns() == edge_tree.patterns()
            for index in range(snapshot.num_nodes):
                decoded = snapshot.decode(index)
                original = edge_tree.find_node(
                    snapshot.pattern(index)
                ).decomposition
                assert decoded.pattern == original.pattern
                assert decoded.thresholds() == original.thresholds()
                assert decoded.frequencies == original.frequencies
                assert [
                    level.removed_edges for level in decoded.levels
                ] == [level.removed_edges for level in original.levels]

    def test_materialize_dispatch(self, edge_tree, edge_snapshot_path):
        with TCTreeSnapshot.open(edge_snapshot_path) as snapshot:
            with pytest.raises(TCIndexError, match="edge"):
                snapshot.materialize()
            rebuilt = snapshot.materialize_edge_tree()
        assert rebuilt.kind == "edge"
        assert rebuilt.patterns() == edge_tree.patterns()
        for alpha in (0.0, 0.3):
            assert_answers_identical(
                edge_tree.query(alpha=alpha), rebuilt.query(alpha=alpha)
            )

    def test_vertex_snapshot_refuses_edge_materialize(
        self, toy_snapshot_path
    ):
        with TCTreeSnapshot.open(toy_snapshot_path) as snapshot:
            assert snapshot.kind == "vertex"
            with pytest.raises(TCIndexError, match="vertex"):
                snapshot.materialize_edge_tree()

    def test_stats_snapshot_estimate_is_exact(
        self, edge_tree, edge_snapshot_path
    ):
        """The capacity-planning estimate must equal the written size —
        edge payloads charge 24 bytes per frequency entry (endpoint
        pair + value), not the vertex layout's 16."""
        from repro.index.stats import tc_tree_statistics

        stats = tc_tree_statistics(edge_tree)
        assert stats.kind == "edge"
        assert (
            stats.estimated_snapshot_bytes
            == edge_snapshot_path.stat().st_size
        )

    def test_v2_without_edge_flag_is_rejected(self, edge_snapshot_path):
        blob = bytearray(edge_snapshot_path.read_bytes())
        struct.pack_into("<I", blob, len(MAGIC) + 4, 0)  # clear flags
        bad = edge_snapshot_path.with_name("noflag.tcsnap")
        bad.write_bytes(blob)
        with pytest.raises(TCIndexError, match="version"):
            TCTreeSnapshot.open(bad)


class TestEdgeEngine:
    def test_engine_answers_match_tree(self, edge_tree, edge_snapshot_path):
        with IndexedWarehouse.open(edge_snapshot_path) as engine:
            assert engine.backend == "snapshot"
            assert engine.kind == "edge"
            for pattern in (None, (0,), (1, 2), (99,)):
                for alpha in (0.0, 0.2, 0.5):
                    assert_answers_identical(
                        edge_tree.query(pattern=pattern, alpha=alpha),
                        engine.query(pattern=pattern, alpha=alpha),
                    )

    def test_alpha_range_from_toc(self, edge_tree, edge_snapshot_path):
        with IndexedWarehouse.open(edge_snapshot_path) as engine:
            low, high = engine.alpha_range()
        assert low == 0.0
        assert high == pytest.approx(edge_tree.max_alpha())

    def test_stats_kind(self, edge_snapshot_path):
        with IndexedWarehouse.open(edge_snapshot_path) as engine:
            stats = engine.stats()
        assert stats["kind"] == "edge"
        assert stats["backend"] == "snapshot"


class TestEdgeServing:
    def test_served_end_to_end(self, edge_tree, edge_snapshot_path):
        engine = IndexedWarehouse.open(edge_snapshot_path)
        server, _thread = start_server_thread(engine)
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            with urllib.request.urlopen(
                base + "/query?alpha=0.2", timeout=10
            ) as response:
                payload = json.load(response)
            expected = edge_tree.query(alpha=0.2)
            expected.generation = engine.generation
            assert payload == expected.to_payload()
            with urllib.request.urlopen(
                base + "/stats", timeout=10
            ) as response:
                stats = json.load(response)
            assert stats["kind"] == "edge"
        finally:
            server.shutdown()
            server.server_close()
            engine.close()
