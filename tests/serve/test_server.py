"""Tests for the threaded HTTP query server (incl. concurrency parity)."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.index.query import query_tc_tree
from repro.serve.engine import IndexedWarehouse
from repro.serve.server import start_server_thread


@pytest.fixture()
def running_server(toy_snapshot_path):
    engine = IndexedWarehouse.open(toy_snapshot_path)
    server, _thread = start_server_thread(engine)
    yield f"http://127.0.0.1:{server.server_address[1]}", engine
    server.shutdown()
    server.server_close()
    engine.close()


def _get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return json.load(response)


def _post(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.load(response)


class TestEndpoints:
    def test_healthz(self, running_server):
        base, engine = running_server
        payload = _get(base, "/healthz")
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0.0
        assert payload["backend"] == "snapshot"
        assert payload["kind"] == engine.kind
        assert payload["generation"] == engine.generation
        assert payload["snapshot_path"].endswith(".tcsnap")

    def test_stats(self, running_server):
        base, engine = running_server
        stats = _get(base, "/stats")
        assert stats["backend"] == "snapshot"
        assert stats["indexed_trusses"] == engine.num_indexed_trusses

    def test_query_matches_engine(self, running_server, toy_warehouse):
        base, _engine = running_server
        payload = _get(base, "/query?alpha=0.35")
        expected = query_tc_tree(toy_warehouse.tree, alpha=0.35)
        expected.generation = _engine.generation
        assert payload == expected.to_payload()

    def test_query_with_pattern(self, running_server, toy_warehouse):
        base, _engine = running_server
        payload = _get(base, "/query?pattern=0&alpha=0.0")
        expected = query_tc_tree(
            toy_warehouse.tree, pattern=(0,), alpha=0.0
        )
        expected.generation = _engine.generation
        assert payload == expected.to_payload()

    def test_top_k(self, running_server, toy_warehouse):
        base, _engine = running_server
        payload = _get(base, "/top-k?k=2&alpha=0.1")
        assert payload["k"] <= 2
        for community in payload["communities"]:
            assert community["size"] >= 3
            assert community["members"] == sorted(community["members"])

    def test_batch_post(self, running_server, toy_warehouse):
        base, _engine = running_server
        payload = _post(
            base,
            "/query",
            {
                "queries": [
                    {"pattern": None, "alpha": 0.0},
                    {"pattern": [0], "alpha": 0.2},
                ]
            },
        )
        expected = [
            query_tc_tree(toy_warehouse.tree, alpha=0.0),
            query_tc_tree(toy_warehouse.tree, pattern=(0,), alpha=0.2),
        ]
        for answer in expected:
            answer.generation = _engine.generation
        assert payload["answers"] == [a.to_payload() for a in expected]

    def test_batch_coerces_string_item_ids(
        self, running_server, toy_warehouse
    ):
        """JSON-stringified ids behave like GET's pattern=0 parsing."""
        base, _engine = running_server
        payload = _post(
            base,
            "/query",
            {"queries": [{"pattern": ["0"], "alpha": 0.0}]},
        )
        expected = query_tc_tree(
            toy_warehouse.tree, pattern=(0,), alpha=0.0
        )
        expected.generation = _engine.generation
        assert payload["answers"] == [expected.to_payload()]

    def test_batch_rejects_string_pattern(self, running_server):
        """A bare "3,7" pattern must 400, not iterate into characters."""
        base, _engine = running_server
        request = urllib.request.Request(
            base + "/query",
            data=json.dumps(
                {"queries": [{"pattern": "0,1", "alpha": 0.0}]}
            ).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestSearchEndpoint:
    def _query_pair(self, toy_warehouse) -> list[int]:
        answer = query_tc_tree(toy_warehouse.tree, alpha=0.0)
        largest = max(
            (c for t in answer.trusses for c in t.communities()), key=len
        )
        return sorted(largest)[:2]

    def test_search_matches_library(self, running_server, toy_warehouse):
        from repro.search.attributed import attributed_community_search

        base, _engine = running_server
        members = self._query_pair(toy_warehouse)
        payload = _get(
            base,
            "/search?vertices="
            + ",".join(str(v) for v in members)
            + "&attributes=0,1",
        )
        expected = attributed_community_search(
            toy_warehouse.tree, members, (0, 1)
        )
        assert len(payload["matches"]) == len(expected)
        for got, want in zip(payload["matches"], expected):
            assert got["pattern"] == list(want.pattern)
            assert got["coverage"] == want.coverage
            assert got["strength"] == want.strength
            assert got["community"]["members"] == sorted(
                want.community.members
            )
            assert got["community"]["size"] == want.community.size

    def test_search_limit_caps_matches(self, running_server, toy_warehouse):
        base, _engine = running_server
        members = self._query_pair(toy_warehouse)
        vertex_param = ",".join(str(v) for v in members)
        full = _get(
            base, f"/search?vertices={vertex_param}&attributes=0,1"
        )
        capped = _get(
            base,
            f"/search?vertices={vertex_param}&attributes=0,1&limit=1",
        )
        assert len(capped["matches"]) == 1
        assert capped["matches"][0] == full["matches"][0]

    def test_search_missing_vertices_400(self, running_server):
        base, _engine = running_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                base + "/search?attributes=0,1", timeout=10
            )
        assert excinfo.value.code == 400
        assert "vertices" in json.load(excinfo.value)["error"]

    def test_search_missing_attributes_400(self, running_server):
        base, _engine = running_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                base + "/search?vertices=0,1", timeout=10
            )
        assert excinfo.value.code == 400
        assert "attributes" in json.load(excinfo.value)["error"]

    def test_search_bad_alpha_400(self, running_server):
        base, _engine = running_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                base + "/search?vertices=0&attributes=0&alpha=nan",
                timeout=10,
            )
        assert excinfo.value.code == 400


class TestMetricsEndpoint:
    def _metrics_text(self, base: str) -> tuple[str, str]:
        with urllib.request.urlopen(base + "/metrics", timeout=10) as resp:
            return (
                resp.read().decode("utf-8"),
                resp.headers.get("Content-Type", ""),
            )

    def test_exposition_format(self, running_server):
        from repro.obs.metrics import EXPOSITION_CONTENT_TYPE

        base, _engine = running_server
        # A served query's own latency observation lands after its
        # response is written, so issue one first and scrape second.
        _get(base, "/query?alpha=0.2")
        text, content_type = self._metrics_text(base)
        assert content_type == EXPOSITION_CONTENT_TYPE
        assert "# TYPE repro_http_request_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert "# TYPE repro_http_requests_total counter" in text
        assert 'endpoint="/query"' in text

    def test_engine_collector_samples(self, running_server):
        base, engine = running_server
        _get(base, "/query?alpha=0.2")
        text, _content_type = self._metrics_text(base)
        served = engine.stats()["queries_served"]
        assert f"repro_engine_queries_served_total {served}" in text
        assert "repro_engine_generation 1" in text
        assert "repro_engine_indexed_trusses" in text
        assert 'repro_engine_cache_lookups_total{outcome="hit"}' in text
        assert 'repro_engine_query_nodes_total{outcome="visited"}' in text
        assert 'repro_engine_query_phase_seconds_total{phase="toc"}' in text

    def test_stats_reports_endpoint_latency(self, running_server):
        base, _engine = running_server
        _get(base, "/query?alpha=0.2")
        stats = _get(base, "/stats")
        assert stats["uptime_seconds"] >= 0.0
        endpoints = stats["endpoints"]
        entry = endpoints["GET /query"]
        assert entry["count"] >= 1
        assert entry["p50"] > 0.0
        assert entry["p50"] <= entry["p95"] <= entry["p99"]
        breakdown = stats["query_breakdown"]
        assert breakdown["queries"] >= 1
        assert breakdown["visited_nodes"] >= breakdown["retrieved_nodes"]
        assert breakdown["toc_seconds"] >= 0.0
        assert breakdown["decode_seconds"] >= 0.0


class TestErrorHandling:
    def _status_of(self, base: str, path: str) -> tuple[int, dict]:
        try:
            with urllib.request.urlopen(base + path, timeout=10) as resp:
                return resp.status, json.load(resp)
        except urllib.error.HTTPError as error:
            return error.code, json.load(error)

    def test_unknown_endpoint_404(self, running_server):
        base, _engine = running_server
        status, payload = self._status_of(base, "/nope")
        assert status == 404
        assert "error" in payload

    def test_404_body_is_structured(self, running_server):
        base, _engine = running_server
        status, payload = self._status_of(base, "/nope")
        assert status == 404
        assert payload["code"] == "not_found"
        assert payload["type"] == "UnknownEndpointError"
        assert "/nope" in payload["error"]

    def test_400_body_is_structured(self, running_server):
        base, _engine = running_server
        status, payload = self._status_of(base, "/query?alpha=abc")
        assert status == 400
        assert payload["code"] == "bad_request"
        assert payload["type"] == "BadRequestError"
        assert "alpha" in payload["error"]

    def test_500_body_is_structured(self, running_server):
        """An unexpected engine crash surfaces as a JSON 500 with the
        taxonomy fields, not a dropped connection."""
        base, engine = running_server
        original = engine.query
        engine.query = lambda *a, **k: (_ for _ in ()).throw(
            RuntimeError("boom")
        )
        try:
            status, payload = self._status_of(base, "/query?alpha=0.1")
        finally:
            engine.query = original
        assert status == 500
        assert payload["code"] == "internal_error"
        assert payload["type"] == "RuntimeError"
        assert "boom" in payload["error"]

    def test_errors_are_counted_with_status_label(self, running_server):
        base, _engine = running_server
        self._status_of(base, "/nope")
        with urllib.request.urlopen(base + "/metrics", timeout=10) as resp:
            text = resp.read().decode("utf-8")
        assert 'endpoint="other"' in text
        assert 'status="404"' in text

    def test_post_404_drains_body_on_keepalive(self, running_server):
        """A 404'd POST must consume its body: leftover bytes would be
        parsed as the next request on the persistent connection."""
        import http.client

        base, _engine = running_server
        host_port = base.removeprefix("http://")
        connection = http.client.HTTPConnection(host_port, timeout=10)
        try:
            connection.request(
                "POST", "/nope", body=json.dumps({"queries": []})
            )
            assert connection.getresponse().read() is not None
            # Reuse the same socket: this fails with a 400 parse error
            # if the body was left unread.
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()

    def test_bad_alpha_400(self, running_server):
        base, _engine = running_server
        status, payload = self._status_of(base, "/query?alpha=abc")
        assert status == 400
        assert "alpha" in payload["error"]

    def test_negative_alpha_400(self, running_server):
        base, _engine = running_server
        status, _payload = self._status_of(base, "/query?alpha=-1")
        assert status == 400

    def test_non_finite_alpha_400(self, running_server):
        """NaN/Infinity would serialize as invalid JSON literals."""
        base, _engine = running_server
        for raw in ("nan", "inf", "-inf"):
            status, payload = self._status_of(
                base, f"/query?alpha={raw}"
            )
            assert status == 400, raw
            assert "finite" in payload["error"]

    def test_bad_pattern_400(self, running_server):
        base, _engine = running_server
        status, payload = self._status_of(base, "/query?pattern=a,b")
        assert status == 400
        assert "pattern" in payload["error"]

    def test_non_object_batch_entry_400(self, running_server):
        """A scalar in the queries list must come back as a JSON 400,
        not an AttributeError-dropped connection."""
        base, _engine = running_server
        request = urllib.request.Request(
            base + "/query",
            data=json.dumps({"queries": [3]}).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert "error" in json.load(excinfo.value)

    def test_non_object_batch_document_400(self, running_server):
        """A JSON body that is a list/scalar (not an object) must be a
        400, not a dropped connection."""
        base, _engine = running_server
        for body in (b"[1, 2]", b'"hi"', b"123"):
            request = urllib.request.Request(
                base + "/query", data=body,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400

    def test_bad_batch_body_400(self, running_server):
        base, _engine = running_server
        request = urllib.request.Request(
            base + "/query", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestConcurrency:
    def test_concurrent_queries_share_one_engine(
        self, running_server, toy_warehouse
    ):
        """8 threads × mixed queries: every response equals the oracle.

        The engine instance is shared across request threads, so this
        exercises the carrier cache's locking and the snapshot buffer's
        concurrent reads.
        """
        base, engine = running_server
        specs = [
            ("/query?alpha=0.0", None, 0.0),
            ("/query?alpha=0.35", None, 0.35),
            ("/query?pattern=0&alpha=0.0", (0,), 0.0),
            ("/query?pattern=0,1&alpha=0.1", (0, 1), 0.1),
        ]
        def oracle(pattern, alpha):
            answer = query_tc_tree(
                toy_warehouse.tree, pattern=pattern, alpha=alpha
            )
            answer.generation = engine.generation
            return answer.to_payload()

        expected = {
            path: oracle(pattern, alpha) for path, pattern, alpha in specs
        }
        failures: list[str] = []
        barrier = threading.Barrier(8)

        def worker(worker_id: int) -> None:
            barrier.wait()
            for round_number in range(5):
                path = specs[(worker_id + round_number) % len(specs)][0]
                try:
                    if _get(base, path) != expected[path]:
                        failures.append(f"mismatch on {path}")
                except Exception as exc:  # pragma: no cover - diagnostic
                    failures.append(f"{path}: {exc!r}")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not failures
        assert engine.stats()["queries_served"] >= 40


class TestAdminApplyDelta:
    @pytest.fixture()
    def live_server(self, toy_network, toy_warehouse, tmp_path):
        import copy

        from repro.index.updates import Delta, apply_deltas
        from repro.serve.live import LiveIndex
        from repro.serve.snapshot import write_delta_snapshot

        network = copy.deepcopy(toy_network)
        base_tree = toy_warehouse.tree
        vertex = sorted(network.databases)[0]
        result = apply_deltas(
            network, base_tree, [Delta.insert(vertex, [0, 1])],
            mode="incremental",
        )
        overlay = tmp_path / "gen2.tcdelta"
        write_delta_snapshot(
            base_tree, result.tree, overlay,
            generation=2, base_generation=1,
        )
        engine = IndexedWarehouse(tree=base_tree)
        live = LiveIndex(engine)
        server, _thread = start_server_thread(engine, live=live)
        base = f"http://127.0.0.1:{server.server_address[1]}"
        yield base, engine, overlay
        server.shutdown()
        server.server_close()
        engine.close()

    def test_apply_delta_bumps_generation(self, live_server):
        base, engine, overlay = live_server
        assert _get(base, "/healthz")["generation"] == 1
        summary = _post(
            base, "/admin/apply-delta", {"path": str(overlay)}
        )
        assert summary["generation"] == 2
        assert _get(base, "/healthz")["generation"] == 2
        # Answers now carry the new generation stamp.
        assert _get(base, "/query?alpha=0.0")["generation"] == 2

    def test_stale_overlay_400(self, live_server):
        base, engine, overlay = live_server
        _post(base, "/admin/apply-delta", {"path": str(overlay)})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/admin/apply-delta", {"path": str(overlay)})
        assert excinfo.value.code == 400
        body = json.load(excinfo.value)
        assert body["code"] == "bad_request"
        assert "base generation" in body["error"]

    def test_body_without_path_400(self, live_server):
        base, _engine, _overlay = live_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/admin/apply-delta", {"nope": 1})
        assert excinfo.value.code == 400

    def test_disabled_without_live_400(self, running_server, tmp_path):
        base, _engine = running_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/admin/apply-delta", {"path": "x.tcdelta"})
        assert excinfo.value.code == 400
        body = json.load(excinfo.value)
        assert "disabled" in body["error"]

    def test_stats_surfaces_live_writer(self, live_server):
        base, _engine, overlay = live_server
        stats = _get(base, "/stats")
        assert stats["live"]["deltas_applied"] == 0
        assert stats["live"]["watching"] is None
        _post(base, "/admin/apply-delta", {"path": str(overlay)})
        stats = _get(base, "/stats")
        assert stats["live"]["deltas_applied"] == 1
        assert stats["live"]["watch_errors"] == []

    def test_stats_omits_live_block_when_disabled(self, running_server):
        base, _engine = running_server
        assert "live" not in _get(base, "/stats")
