"""Hot-swap stress: readers never see a torn index across publishes.

The engine's swap contract: publication is a single reference
assignment, a query captures its generation exactly once, and every
answer is attributable to exactly one published generation — its payload
must equal that generation's oracle bit-for-bit, never a mix of two.
These tests hammer one engine with 8 reader threads while a writer
publishes five-plus generations with distinguishable answers, in-process
and over HTTP, and check the per-generation cache bookkeeping.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.datasets.synthetic import generate_synthetic_network
from repro.errors import TCIndexError
from repro.index.query import query_tc_tree
from repro.index.tctree import build_tc_tree
from repro.index.updates import Delta, apply_deltas
from repro.serve.engine import IndexedWarehouse, ServingGeneration
from repro.serve.live import LiveIndex
from repro.serve.server import start_server_thread

READERS = 8
GENERATIONS = 6  # 1 base + 5 publishes


def _generation_chain():
    """(trees, oracles): GENERATIONS maintained trees whose alpha-0
    answers all differ, plus the expected payload of each generation."""
    network = generate_synthetic_network(
        num_items=6, num_seeds=2, mutation_rate=0.4,
        max_transactions=10, max_transaction_length=4, seed=7,
    )
    vertices = sorted(network.databases)
    trees = [build_tc_tree(network)]
    for step in range(1, GENERATIONS):
        # A fresh item per step guarantees a new pattern in the answer,
        # so every generation's payload is distinguishable.
        fresh = 100 + step
        deltas = [
            Delta.insert(vertices[step % len(vertices)], [step % 6, fresh])
        ]
        result = apply_deltas(
            network, trees[-1], deltas, mode="incremental"
        )
        trees.append(result.tree)
    oracles = {}
    for number, tree in enumerate(trees, start=1):
        answer = query_tc_tree(tree, pattern=None, alpha=0.0)
        answer.generation = number
        oracles[number] = answer.to_payload()
    payloads = [json.dumps(o, sort_keys=True) for o in oracles.values()]
    assert len(set(payloads)) == GENERATIONS  # all distinguishable
    return trees, oracles


@pytest.fixture(scope="module")
def generation_chain():
    return _generation_chain()


class TestHotSwapStress:
    def test_readers_always_see_whole_generations(self, generation_chain):
        trees, oracles = generation_chain
        engine = IndexedWarehouse(tree=trees[0])
        live = LiveIndex(engine)
        stop = threading.Event()
        errors: list[str] = []
        seen_lock = threading.Lock()
        seen: set[int] = set()

        def reader() -> None:
            while not stop.is_set():
                answer = engine.query(pattern=None, alpha=0.0)
                payload = answer.to_payload()
                number = payload.get("generation")
                expected = oracles.get(number)
                if expected is None:
                    errors.append(f"unknown generation {number!r}")
                    return
                if payload != expected:
                    errors.append(
                        f"torn read: generation {number} payload "
                        "does not match its oracle"
                    )
                    return
                with seen_lock:
                    seen.add(number)

        threads = [
            threading.Thread(target=reader) for _ in range(READERS)
        ]
        for thread in threads:
            thread.start()
        try:
            for tree in trees[1:]:
                live.publish_tree(tree)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        assert not errors, errors[0]
        assert engine.generation == GENERATIONS
        assert engine.retired_generations == GENERATIONS - 1
        # The final generation is always observable after the last swap.
        final = engine.query(pattern=None, alpha=0.0).to_payload()
        assert final == oracles[GENERATIONS]
        engine.close()

    def test_http_answers_attributable(self, generation_chain):
        trees, oracles = generation_chain
        engine = IndexedWarehouse(tree=trees[0])
        live = LiveIndex(engine)
        server, _ = start_server_thread(engine, live=live)
        port = server.server_address[1]
        stop = threading.Event()
        errors: list[str] = []

        def reader() -> None:
            url = f"http://127.0.0.1:{port}/query?alpha=0.0"
            while not stop.is_set():
                with urllib.request.urlopen(url) as response:
                    payload = json.loads(response.read())
                expected = oracles.get(payload.get("generation"))
                if payload != expected:
                    errors.append(
                        f"generation {payload.get('generation')!r} "
                        "answer does not match its oracle"
                    )
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for tree in trees[1:]:
                live.publish_tree(tree)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
            server.shutdown()
            server.server_close()
        assert not errors, errors[0]
        assert engine.generation == GENERATIONS
        engine.close()


class TestGenerationBookkeeping:
    def test_cache_is_per_generation(self, generation_chain):
        trees, _ = generation_chain
        engine = IndexedWarehouse(tree=trees[0])
        engine.query(pattern=None, alpha=0.0)
        before = engine.stats()["cache"]
        engine.swap(tree=trees[1])
        # A fresh generation starts with a fresh cache: no entries, no
        # hit/miss history carried over from the retired generation.
        after = engine.stats()["cache"]
        assert after["entries"] == 0
        assert after["hits"] == 0
        assert after["misses"] == 0
        assert before == engine._retired[0].cache.stats()
        engine.close()

    def test_swap_must_advance_generation(self, generation_chain):
        trees, _ = generation_chain
        engine = IndexedWarehouse(tree=trees[0])
        engine.swap(tree=trees[1], number=5)
        with pytest.raises(TCIndexError, match="does not advance"):
            engine.swap(tree=trees[2], number=5)
        with pytest.raises(TCIndexError, match="does not advance"):
            engine.swap(tree=trees[2], number=3)
        assert engine.generation == 5
        engine.swap(tree=trees[2])  # number=None bumps by one
        assert engine.generation == 6
        engine.close()

    def test_swap_rejects_kind_change(self, generation_chain):
        from repro.edgenet.index import build_edge_tc_tree
        from repro.edgenet.network import EdgeDatabaseNetwork

        trees, _ = generation_chain
        edge_network = EdgeDatabaseNetwork()
        edge_network.add_transaction(0, 1, [0, 1])
        edge_network.add_transaction(1, 2, [1])
        edge_tree = build_edge_tc_tree(edge_network, backend="serial")
        engine = IndexedWarehouse(tree=trees[0])
        with pytest.raises(TCIndexError, match="cannot swap"):
            engine.swap(tree=edge_tree)
        assert engine.generation == 1
        engine.close()

    def test_serving_generation_requires_exactly_one_source(self):
        with pytest.raises(TCIndexError):
            ServingGeneration(1, cache_size=8)

    def test_queries_served_cumulative_across_generations(
        self, generation_chain
    ):
        trees, _ = generation_chain
        engine = IndexedWarehouse(tree=trees[0])
        engine.query(pattern=None, alpha=0.0)
        engine.swap(tree=trees[1])
        engine.query(pattern=None, alpha=0.0)
        stats = engine.stats()
        assert stats["queries_served"] == 2
        assert stats["generation"] == 2
        assert stats["retired_generations"] == 1
        engine.close()
