"""Tests for the vertex-attributed baseline (and its information loss)."""

from __future__ import annotations

import pytest

from repro.baselines.attributed import (
    attributed_communities,
    false_theme_rate,
    flatten_to_attributes,
)
from repro.core.finder import ThemeCommunityFinder
from repro.errors import MiningError
from repro.graphs.graph import Graph
from repro.network.dbnetwork import DatabaseNetwork
from repro.txdb.database import TransactionDatabase


def _clique_network(frequencies: dict[int, float]) -> DatabaseNetwork:
    """A 4-clique where each vertex mentions item 0 with a given
    frequency (out of 10 transactions; filler items pad the rest)."""
    graph = Graph(
        [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    )
    databases = {}
    for v, f in frequencies.items():
        hits = round(10 * f)
        transactions = [{0} for _ in range(hits)]
        transactions += [{100 + v} for _ in range(10 - hits)]
        databases[v] = TransactionDatabase(transactions)
    return DatabaseNetwork(graph, databases)


class TestFlatten:
    def test_union_of_items(self, toy_network):
        attributes = flatten_to_attributes(toy_network)
        assert len(attributes) == 9
        # Every attribute set contains at least the vertex's own items.
        for v, db in toy_network.databases.items():
            assert attributes[v] == frozenset(db.items())


class TestAttributedCommunities:
    def test_finds_shared_attribute_clique(self):
        network = _clique_network({0: 0.5, 1: 0.5, 2: 0.5, 3: 0.5})
        communities = attributed_communities(network, k=3)
        assert any(
            c.pattern == (0,) and c.members == frozenset({0, 1, 2, 3})
            for c in communities
        )

    def test_invalid_parameters(self, toy_network):
        with pytest.raises(MiningError):
            attributed_communities(toy_network, k=1)
        with pytest.raises(MiningError):
            attributed_communities(toy_network, min_vertices=0)

    def test_max_length_caps_patterns(self, toy_network):
        communities = attributed_communities(toy_network, max_length=1)
        assert all(len(c.pattern) == 1 for c in communities)

    def test_sorted_largest_first(self, toy_network):
        communities = attributed_communities(toy_network)
        sizes = [c.size for c in communities]
        assert sizes == sorted(sizes, reverse=True)


class TestInformationLoss:
    """The paper's Challenge 1, made measurable."""

    def test_flattening_ignores_frequency(self):
        """Vertices that mention item 0 *once* in 10 transactions look
        identical to heavy users after flattening: the baseline reports
        the community, theme mining (α high enough) rejects it."""
        rare = _clique_network({0: 0.1, 1: 0.1, 2: 0.1, 3: 0.1})

        baseline = attributed_communities(rare, k=3)
        assert any(c.pattern == (0,) for c in baseline)

        themed = ThemeCommunityFinder(rare).find(alpha=0.5)
        assert (0,) not in themed  # cohesion 2 × 0.1 per edge, ≤ 0.5

    def test_false_theme_rate_detects_loss(self):
        rare = _clique_network({0: 0.1, 1: 0.1, 2: 0.1, 3: 0.1})
        heavy = _clique_network({0: 0.9, 1: 0.9, 2: 0.9, 3: 0.9})
        rare_rate = false_theme_rate(
            rare, attributed_communities(rare, k=3, max_length=1),
            frequency_threshold=0.3,
        )
        heavy_rate = false_theme_rate(
            heavy, attributed_communities(heavy, k=3, max_length=1),
            frequency_threshold=0.3,
        )
        assert rare_rate > heavy_rate

    def test_empty_community_list(self, toy_network):
        assert false_theme_rate(toy_network, []) == 0.0
