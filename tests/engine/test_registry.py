"""Tests for the first-class model registry (``repro.engine.registry``)."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.engine.registry import (
    CutoverSpec,
    ModelSpec,
    all_cutovers,
    get_model,
    model_for_snapshot,
    model_for_tree,
    model_names,
    register_model,
    resolve_ref,
    tree_model_names,
    unregister_model,
)
from repro.errors import TCIndexError
from repro.serve.snapshot import EDGE_VERSION, FLAG_EDGE, VERSION


class TestResolveRef:
    def test_resolves_module_attribute(self):
        assert resolve_ref("math:pi") == pytest.approx(3.14159, abs=1e-4)

    @pytest.mark.parametrize("ref", ["math", ":pi", "math:", ""])
    def test_malformed_reference_rejected(self, ref):
        with pytest.raises(TCIndexError, match="malformed reference"):
            resolve_ref(ref)


class TestBuiltinModels:
    def test_builtin_names_in_registration_order(self):
        names = model_names()
        assert names[:4] == ("vertex", "edge", "probtruss", "attributed")

    def test_tree_models_are_the_snapshot_kinds(self):
        assert tree_model_names() == ("vertex", "edge")

    def test_unknown_model_raises_with_inventory(self):
        with pytest.raises(TCIndexError, match="unknown model 'nope'"):
            get_model("nope")

    def test_lookup_is_memoized(self):
        assert get_model("vertex") is get_model("vertex")

    def test_displays_drive_stats_wording(self):
        assert get_model("vertex").display == "TC-Tree"
        assert get_model("edge").display == "Edge TC-Tree"

    def test_tree_models_carry_the_build_api(self):
        for name in tree_model_names():
            spec = get_model(name)
            assert spec.is_tree_model
            assert spec.has_snapshot
            for hook in (
                spec.decompose,
                spec.decomposition_cls,
                spec.node_cls,
                spec.make_tree,
                spec.layer1_costs,
                spec.warm,
                spec.serial_build,
                spec.encode_payload,
                spec.decode_payload,
                spec.materialize,
            ):
                assert hook is not None

    def test_workload_models_carry_entry_points(self):
        from repro.graphs.probtruss import probabilistic_k_truss
        from repro.search.attributed import attributed_community_search

        probtruss = get_model("probtruss")
        assert not probtruss.is_tree_model
        assert not probtruss.has_snapshot
        assert probtruss.entry is probabilistic_k_truss
        assert get_model("attributed").entry is attributed_community_search


class TestSnapshotDispatch:
    def test_vertex_matches_v1(self):
        assert model_for_snapshot(VERSION, 0) is get_model("vertex")

    def test_edge_matches_v2_with_flag(self):
        assert (
            model_for_snapshot(EDGE_VERSION, FLAG_EDGE) is get_model("edge")
        )

    def test_v2_without_edge_flag_is_unsupported(self):
        assert model_for_snapshot(EDGE_VERSION, 0) is None

    def test_unknown_version_is_unsupported(self):
        assert model_for_snapshot(99, 0) is None

    def test_model_for_tree_reads_the_kind_tag(self):
        assert model_for_tree(SimpleNamespace(kind="edge")) is get_model(
            "edge"
        )
        # Objects with no kind tag dispatch as the vertex model.
        assert model_for_tree(object()) is get_model("vertex")


class TestCutovers:
    def test_every_engine_cutover_is_declared(self):
        names = [cutover.name for _spec, cutover in all_cutovers()]
        assert names == [
            "CSR_MIN_EDGES",
            "NET_REUSE_FRACTION",
            "MAINT_FULL_REBUILD_FRACTION",
            "EDGE_CSR_MIN_EDGES",
            "PROB_CSR_MIN_EDGES",
        ]

    def test_value_refs_read_live(self, monkeypatch):
        import repro.graphs.probtruss as probtruss_module

        (cutover,) = get_model("probtruss").cutovers
        assert cutover.current() == float(
            probtruss_module.PROB_CSR_MIN_EDGES
        )
        monkeypatch.setattr(probtruss_module, "PROB_CSR_MIN_EDGES", 777)
        assert cutover.current() == 777.0

    def test_fixed_value_cutover_is_report_only(self):
        spec = get_model("vertex")
        ratio = next(
            c for c in spec.cutovers if c.name == "NET_REUSE_FRACTION"
        )
        assert not ratio.applicable
        assert ratio.current() == 0.9

    def test_cutover_without_any_value_raises(self):
        bare = CutoverSpec(name="X", source="s", sweep="math:pi")
        with pytest.raises(TCIndexError, match="neither value_ref"):
            bare.current()

    def test_sweep_fn_resolves(self):
        from repro.bench.tuning import sweep_prob_csr_min_edges

        (cutover,) = get_model("probtruss").cutovers
        assert cutover.sweep_fn() is sweep_prob_csr_min_edges


class TestRegistration:
    def test_register_unregister_round_trip(self):
        spec = ModelSpec(name="toy", display="Toy model")
        register_model("toy", lambda: spec)
        try:
            assert "toy" in model_names()
            assert "toy" not in tree_model_names()
            assert get_model("toy") is spec
        finally:
            unregister_model("toy")
        assert "toy" not in model_names()
        with pytest.raises(TCIndexError):
            get_model("toy")

    def test_latest_registration_wins(self):
        first = ModelSpec(name="toy", display="first")
        second = ModelSpec(name="toy", display="second")
        register_model("toy", lambda: first)
        get_model("toy")  # memoize the first spec
        register_model("toy", lambda: second)
        try:
            assert get_model("toy") is second
        finally:
            unregister_model("toy")

    def test_tree_flag_tracks_reregistration(self):
        spec = ModelSpec(name="toy", display="Toy", node_cls=object)
        register_model("toy", lambda: spec, tree=True)
        try:
            assert "toy" in tree_model_names()
            register_model("toy", lambda: spec, tree=False)
            assert "toy" not in tree_model_names()
        finally:
            unregister_model("toy")

    def test_factory_name_mismatch_rejected(self):
        register_model("toy", lambda: ModelSpec(name="other", display="x"))
        try:
            with pytest.raises(TCIndexError, match="spec named 'other'"):
                get_model("toy")
        finally:
            unregister_model("toy")
