"""Tests for per-database pattern enumeration (the TCS pre-filter)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MiningError
from repro.txdb.database import TransactionDatabase
from repro.txdb.enumerate import enumerate_frequent_patterns
from tests.conftest import transaction_databases


def _naive_patterns(db: TransactionDatabase, epsilon: float) -> set:
    """Brute force: every subset of every transaction, frequency > ε."""
    from itertools import combinations

    seen = set()
    for t in db:
        for size in range(1, len(t) + 1):
            for combo in combinations(sorted(t), size):
                seen.add(combo)
    return {p for p in seen if db.frequency(p) > epsilon}


class TestEnumerate:
    def test_strict_threshold(self):
        db = TransactionDatabase([{1}, {2}])  # each frequency 0.5
        assert set(enumerate_frequent_patterns(db, 0.5)) == set()
        assert set(enumerate_frequent_patterns(db, 0.4)) == {(1,), (2,)}

    def test_epsilon_zero_gives_all_occurring(self):
        db = TransactionDatabase([{1, 2}])
        assert set(enumerate_frequent_patterns(db, 0.0)) == {
            (1,), (2,), (1, 2)
        }

    def test_max_length(self):
        db = TransactionDatabase([{1, 2, 3}])
        patterns = set(enumerate_frequent_patterns(db, 0.0, max_length=2))
        assert (1, 2, 3) not in patterns
        assert (1, 2) in patterns

    def test_empty_database(self):
        assert list(enumerate_frequent_patterns(TransactionDatabase(), 0.0)) == []

    def test_negative_epsilon_rejected(self):
        with pytest.raises(MiningError):
            list(enumerate_frequent_patterns(TransactionDatabase([{1}]), -0.1))

    def test_no_duplicates(self):
        db = TransactionDatabase([{1, 2}, {1, 2}, {2, 3}])
        patterns = list(enumerate_frequent_patterns(db, 0.0))
        assert len(patterns) == len(set(patterns))

    @given(
        transaction_databases(max_items=4, max_transactions=6),
        st.sampled_from([0.0, 0.2, 0.5]),
    )
    def test_matches_brute_force(self, db, epsilon):
        ours = set(enumerate_frequent_patterns(db, epsilon))
        assert ours == _naive_patterns(db, epsilon)
