"""Tests for TransactionDatabase."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DatabaseError
from repro.txdb.database import TransactionDatabase
from tests.conftest import transaction_databases


class TestConstruction:
    def test_empty(self):
        db = TransactionDatabase()
        assert len(db) == 0
        assert not db

    def test_from_iterable(self):
        db = TransactionDatabase([{1, 2}, {2, 3}])
        assert db.num_transactions == 2

    def test_duplicates_kept(self):
        """A database is a multiset — repeated transactions count."""
        db = TransactionDatabase([{1}, {1}, {1, 2}])
        assert db.num_transactions == 3
        assert db.frequency((1,)) == 1.0

    def test_empty_transaction_rejected(self):
        with pytest.raises(DatabaseError):
            TransactionDatabase([set()])

    def test_items(self):
        db = TransactionDatabase([{1, 2}, {3}])
        assert db.items() == {1, 2, 3}

    def test_total_items(self):
        db = TransactionDatabase([{1, 2}, {3}])
        assert db.total_items == 3


class TestSupport:
    def test_single_item(self):
        db = TransactionDatabase([{1, 2}, {2}, {3}])
        assert db.support_count((2,)) == 2

    def test_pattern(self):
        db = TransactionDatabase([{1, 2, 3}, {1, 2}, {1, 3}])
        assert db.support_count((1, 2)) == 2
        assert db.support_count((1, 2, 3)) == 1

    def test_unknown_item(self):
        db = TransactionDatabase([{1}])
        assert db.support_count((99,)) == 0
        assert db.support_count((1, 99)) == 0

    def test_empty_pattern_in_all(self):
        db = TransactionDatabase([{1}, {2}])
        assert db.support_count(()) == 2

    def test_support_set_ids(self):
        db = TransactionDatabase([{1}, {2}, {1, 2}])
        assert db.support_set((1,)) == {0, 2}


class TestFrequency:
    def test_basic(self):
        db = TransactionDatabase([{1, 2}, {2}, {3}, {2, 3}])
        assert db.frequency((2,)) == 0.75
        assert db.frequency((2, 3)) == 0.25

    def test_empty_database(self):
        assert TransactionDatabase().frequency((1,)) == 0.0

    def test_item_frequency_fast_path(self):
        db = TransactionDatabase([{1}, {1, 2}, {3}])
        assert db.item_frequency(1) == db.frequency((1,))
        assert db.item_frequency(9) == 0.0

    def test_order_independent(self):
        db = TransactionDatabase([{1, 2, 3}, {1, 3}])
        assert db.frequency((3, 1)) == db.frequency((1, 3))

    def test_cache_invalidated_on_insert(self):
        db = TransactionDatabase([{1}])
        assert db.frequency((1,)) == 1.0
        db.add_transaction({2})
        assert db.frequency((1,)) == 0.5

    @given(transaction_databases())
    def test_frequency_in_unit_interval(self, db):
        for item in db.items():
            assert 0.0 < db.frequency((item,)) <= 1.0

    @given(transaction_databases())
    def test_anti_monotone(self, db):
        """f(p1) >= f(p2) when p1 ⊆ p2 — the classic Apriori property."""
        items = sorted(db.items())
        for i, a in enumerate(items):
            for b in items[i + 1:]:
                assert db.frequency((a,)) >= db.frequency((a, b))
                assert db.frequency((b,)) >= db.frequency((a, b))

    @given(
        transaction_databases(),
        st.sets(st.integers(min_value=0, max_value=4), min_size=1, max_size=3),
    )
    def test_matches_naive_count(self, db, pattern):
        naive = sum(1 for t in db if set(pattern) <= t) / len(db)
        assert db.frequency(tuple(pattern)) == pytest.approx(naive)


class TestStableTransactionIds:
    def test_add_returns_monotonic_tids(self):
        db = TransactionDatabase()
        assert db.add_transaction([0]) == 0
        assert db.add_transaction([1]) == 1
        assert db.tids() == {0, 1}
        assert db.next_tid == 2

    def test_remove_returns_items_and_frees_tid(self):
        db = TransactionDatabase([[0, 1], [2]])
        assert db.remove_transaction(0) == frozenset({0, 1})
        assert db.tids() == {1}
        assert len(db) == 1
        assert db.frequency((0,)) == 0.0

    def test_tids_are_never_recycled(self):
        db = TransactionDatabase([[0], [1]])
        db.remove_transaction(1)
        assert db.add_transaction([2]) == 2  # not 1
        assert db.tids() == {0, 2}

    def test_remove_unknown_tid_raises(self):
        db = TransactionDatabase([[0]])
        with pytest.raises(DatabaseError):
            db.remove_transaction(7)

    def test_transaction_lookup(self):
        db = TransactionDatabase([[0, 1]])
        assert db.transaction(0) == frozenset({0, 1})
        with pytest.raises(DatabaseError):
            db.transaction(5)

    def test_replace_keeps_tid(self):
        db = TransactionDatabase([[0, 1], [2]])
        db.replace_transaction(0, [3])
        assert db.transaction(0) == frozenset({3})
        assert db.tids() == {0, 1}
        assert db.frequency((3,)) == 0.5

    def test_replace_rejects_empty(self):
        db = TransactionDatabase([[0]])
        with pytest.raises(DatabaseError):
            db.replace_transaction(0, [])
        assert db.transaction(0) == frozenset({0})  # unchanged

    def test_replace_unknown_tid_raises(self):
        db = TransactionDatabase([[0]])
        with pytest.raises(DatabaseError):
            db.replace_transaction(9, [1])

    def test_mutations_invalidate_frequency_cache(self):
        db = TransactionDatabase([[0], [0, 1]])
        assert db.frequency((1,)) == 0.5
        db.remove_transaction(1)
        assert db.frequency((1,)) == 0.0
        db.add_transaction([1])
        assert db.frequency((1,)) == 0.5
        db.replace_transaction(0, [1])
        assert db.frequency((1,)) == 1.0
