"""Tests for probabilistic (k, γ)-truss detection."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.graph import Graph, edge_key
from repro.graphs.ktruss import k_truss
from repro.graphs.probtruss import (
    edge_qualification,
    probabilistic_k_truss,
    support_tail_probability,
)
from tests.conftest import small_graphs


class TestSupportTail:
    def test_threshold_zero_is_certain(self):
        assert support_tail_probability([0.1, 0.2], 0) == 1.0

    def test_single_trial(self):
        assert support_tail_probability([0.3], 1) == pytest.approx(0.3)

    def test_two_trials_at_least_one(self):
        # 1 - (1-p)(1-q)
        assert support_tail_probability([0.5, 0.5], 1) == pytest.approx(0.75)

    def test_all_required(self):
        assert support_tail_probability([0.5, 0.5], 2) == pytest.approx(0.25)

    def test_impossible(self):
        assert support_tail_probability([0.5], 2) == 0.0

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=6),
        st.integers(min_value=0, max_value=4),
    )
    def test_matches_brute_force(self, probs, threshold):
        from itertools import product

        brute = 0.0
        for outcome in product([0, 1], repeat=len(probs)):
            if sum(outcome) >= threshold:
                weight = math.prod(
                    p if bit else 1 - p for p, bit in zip(probs, outcome)
                )
                brute += weight
        ours = support_tail_probability(probs, threshold)
        assert ours == pytest.approx(brute, abs=1e-9)


class TestEdgeQualification:
    def test_certain_triangle(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        ones = {e: 1.0 for e in graph.iter_edges()}
        assert edge_qualification(graph, ones, 1, 2, 3) == 1.0

    def test_uncertain_triangle(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        probs = {(1, 2): 1.0, (1, 3): 0.5, (2, 3): 0.5}
        # support prob = 0.25; qualification = 1.0 * 0.25
        assert edge_qualification(graph, probs, 1, 2, 3) == pytest.approx(
            0.25
        )


class TestProbabilisticKTruss:
    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            probabilistic_k_truss(Graph(), {}, 1, 0.5)
        with pytest.raises(GraphError):
            probabilistic_k_truss(Graph(), {}, 3, 0.0)
        with pytest.raises(GraphError):
            probabilistic_k_truss(Graph(), {}, 3, 1.5)

    def test_low_probability_triangle_peeled(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        probs = {(1, 2): 0.9, (1, 3): 0.3, (2, 3): 0.3}
        # Qualification of (1,2): 0.9 × 0.09 ≈ 0.08 < γ=0.5 → all peel.
        result = probabilistic_k_truss(graph, probs, 3, 0.5)
        assert result.num_edges == 0

    def test_high_probability_triangle_survives(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        probs = {e: 0.95 for e in graph.iter_edges()}
        result = probabilistic_k_truss(graph, probs, 3, 0.5)
        assert result.num_edges == 3

    def test_gamma_monotone(self):
        graph = Graph(
            [(1, 2), (1, 3), (2, 3), (2, 4), (3, 4), (1, 4)]
        )
        probs = {e: 0.8 for e in graph.iter_edges()}
        loose = probabilistic_k_truss(graph, probs, 3, 0.2)
        tight = probabilistic_k_truss(graph, probs, 3, 0.6)
        assert set(tight.iter_edges()) <= set(loose.iter_edges())

    @given(small_graphs())
    def test_unit_probabilities_recover_k_truss(self, graph):
        """With p ≡ 1 the (k, γ)-truss equals the deterministic k-truss
        for every γ ∈ (0, 1] — on both peeling backends."""
        ones = {edge_key(u, v): 1.0 for u, v in graph.iter_edges()}
        for k in (3, 4):
            det = k_truss(graph, k)
            for engine in ("legacy", "csr"):
                prob = probabilistic_k_truss(
                    graph, ones, k, 1.0, engine=engine
                )
                assert set(prob.iter_edges()) == set(det.iter_edges())

    @given(small_graphs())
    def test_result_edges_all_qualified(self, graph):
        """Every surviving edge is (k, γ)-qualified in the result."""
        probs = {
            edge_key(u, v): 0.9 for u, v in graph.iter_edges()
        }
        result = probabilistic_k_truss(graph, probs, 3, 0.3)
        for u, v in result.iter_edges():
            assert edge_qualification(result, probs, u, v, 3) >= 0.3


class TestEngineParity:
    """The CSR peeling engine against the legacy worklist oracle.

    Probabilities come from the dyadic grid {0.25, 0.5, 0.75, 1.0}:
    products and the tail DP stay exact in float64, so the surviving
    edge set is order-independent and parity is bit-exact rather than
    approximate.
    """

    GRID = (0.25, 0.5, 0.75, 1.0)

    @given(
        small_graphs(),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.sampled_from([(3, 0.05), (3, 0.4), (4, 0.1), (5, 0.2)]),
    )
    def test_csr_matches_legacy(self, graph, seed, setting):
        import random

        k, gamma = setting
        rng = random.Random(seed)
        probs = {
            edge_key(u, v): rng.choice(self.GRID)
            for u, v in graph.iter_edges()
        }
        legacy = probabilistic_k_truss(
            graph, probs, k, gamma, engine="legacy"
        )
        csr = probabilistic_k_truss(graph, probs, k, gamma, engine="csr")
        assert sorted(csr.iter_edges()) == sorted(legacy.iter_edges())
        assert sorted(csr.vertices()) == sorted(legacy.vertices())

    @given(small_graphs(), st.sampled_from([0.05, 0.3, 0.8]))
    def test_auto_matches_explicit_engines(self, graph, gamma):
        probs = {edge_key(u, v): 0.75 for u, v in graph.iter_edges()}
        auto = probabilistic_k_truss(graph, probs, 3, gamma)
        legacy = probabilistic_k_truss(
            graph, probs, 3, gamma, engine="legacy"
        )
        assert sorted(auto.iter_edges()) == sorted(legacy.iter_edges())

    def test_unknown_engine_rejected(self):
        with pytest.raises(GraphError, match="unknown engine"):
            probabilistic_k_truss(Graph([(1, 2)]), {}, 3, 0.5, engine="gpu")

    def test_csr_engine_rejects_non_int_labels(self):
        graph = Graph([("a", "b"), ("b", "c"), ("a", "c")])
        probs = {edge_key(u, v): 1.0 for u, v in graph.iter_edges()}
        with pytest.raises(GraphError, match="not CSR-eligible"):
            probabilistic_k_truss(graph, probs, 3, 0.5, engine="csr")
        # auto falls back to the legacy worklist instead of raising.
        result = probabilistic_k_truss(graph, probs, 3, 0.5)
        assert result.num_edges == 3

    def test_legacy_route_accepts_csr_input(self):
        """CSRGraph inputs materialize before the mutating worklist."""
        from repro.graphs.csr import as_csr

        graph = Graph([(0, 1), (1, 2), (0, 2), (2, 3)])
        probs = {edge_key(u, v): 1.0 for u, v in graph.iter_edges()}
        csr = as_csr(graph)
        result = probabilistic_k_truss(csr, probs, 3, 0.5, engine="legacy")
        assert sorted(result.iter_edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_csr_input_shares_triangle_index_across_sweep(self):
        """A CSRGraph input reuses its cached triangle index."""
        from repro.graphs.csr import as_csr
        from repro.graphs.support import triangle_index

        graph = Graph([(0, 1), (1, 2), (0, 2), (0, 3), (1, 3), (2, 3)])
        probs = {edge_key(u, v): 0.75 for u, v in graph.iter_edges()}
        csr = as_csr(graph)
        index = triangle_index(csr)
        for k in (3, 4):
            probabilistic_k_truss(csr, probs, k, 0.1, engine="csr")
        assert triangle_index(csr) is index
