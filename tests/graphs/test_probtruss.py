"""Tests for probabilistic (k, γ)-truss detection."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.graph import Graph, edge_key
from repro.graphs.ktruss import k_truss
from repro.graphs.probtruss import (
    edge_qualification,
    probabilistic_k_truss,
    support_tail_probability,
)
from tests.conftest import small_graphs


class TestSupportTail:
    def test_threshold_zero_is_certain(self):
        assert support_tail_probability([0.1, 0.2], 0) == 1.0

    def test_single_trial(self):
        assert support_tail_probability([0.3], 1) == pytest.approx(0.3)

    def test_two_trials_at_least_one(self):
        # 1 - (1-p)(1-q)
        assert support_tail_probability([0.5, 0.5], 1) == pytest.approx(0.75)

    def test_all_required(self):
        assert support_tail_probability([0.5, 0.5], 2) == pytest.approx(0.25)

    def test_impossible(self):
        assert support_tail_probability([0.5], 2) == 0.0

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=6),
        st.integers(min_value=0, max_value=4),
    )
    def test_matches_brute_force(self, probs, threshold):
        from itertools import product

        brute = 0.0
        for outcome in product([0, 1], repeat=len(probs)):
            if sum(outcome) >= threshold:
                weight = math.prod(
                    p if bit else 1 - p for p, bit in zip(probs, outcome)
                )
                brute += weight
        ours = support_tail_probability(probs, threshold)
        assert ours == pytest.approx(brute, abs=1e-9)


class TestEdgeQualification:
    def test_certain_triangle(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        ones = {e: 1.0 for e in graph.iter_edges()}
        assert edge_qualification(graph, ones, 1, 2, 3) == 1.0

    def test_uncertain_triangle(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        probs = {(1, 2): 1.0, (1, 3): 0.5, (2, 3): 0.5}
        # support prob = 0.25; qualification = 1.0 * 0.25
        assert edge_qualification(graph, probs, 1, 2, 3) == pytest.approx(
            0.25
        )


class TestProbabilisticKTruss:
    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            probabilistic_k_truss(Graph(), {}, 1, 0.5)
        with pytest.raises(GraphError):
            probabilistic_k_truss(Graph(), {}, 3, 0.0)
        with pytest.raises(GraphError):
            probabilistic_k_truss(Graph(), {}, 3, 1.5)

    def test_low_probability_triangle_peeled(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        probs = {(1, 2): 0.9, (1, 3): 0.3, (2, 3): 0.3}
        # Qualification of (1,2): 0.9 × 0.09 ≈ 0.08 < γ=0.5 → all peel.
        result = probabilistic_k_truss(graph, probs, 3, 0.5)
        assert result.num_edges == 0

    def test_high_probability_triangle_survives(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        probs = {e: 0.95 for e in graph.iter_edges()}
        result = probabilistic_k_truss(graph, probs, 3, 0.5)
        assert result.num_edges == 3

    def test_gamma_monotone(self):
        graph = Graph(
            [(1, 2), (1, 3), (2, 3), (2, 4), (3, 4), (1, 4)]
        )
        probs = {e: 0.8 for e in graph.iter_edges()}
        loose = probabilistic_k_truss(graph, probs, 3, 0.2)
        tight = probabilistic_k_truss(graph, probs, 3, 0.6)
        assert set(tight.iter_edges()) <= set(loose.iter_edges())

    @given(small_graphs())
    def test_unit_probabilities_recover_k_truss(self, graph):
        """With p ≡ 1 the (k, γ)-truss equals the deterministic k-truss
        for every γ ∈ (0, 1]."""
        ones = {edge_key(u, v): 1.0 for u, v in graph.iter_edges()}
        for k in (3, 4):
            prob = probabilistic_k_truss(graph, ones, k, 1.0)
            det = k_truss(graph, k)
            assert set(prob.iter_edges()) == set(det.iter_edges())

    @given(small_graphs())
    def test_result_edges_all_qualified(self, graph):
        """Every surviving edge is (k, γ)-qualified in the result."""
        probs = {
            edge_key(u, v): 0.9 for u, v in graph.iter_edges()
        }
        result = probabilistic_k_truss(graph, probs, 3, 0.3)
        for u, v in result.iter_edges():
            assert edge_qualification(result, probs, u, v, 3) >= 0.3
