"""CSRGraph parity tests: the fast path must be indistinguishable.

Every test pits the CSR engine against the legacy adjacency-set
implementation (kept precisely to serve as the oracle) on randomized
inputs from the project's generators and hypothesis strategies.
"""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph, as_csr, as_graph, csr_eligible
from repro.graphs.generators import (
    erdos_renyi_graph,
    powerlaw_cluster_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.ktruss import (
    _k_truss_legacy,
    _truss_numbers_legacy,
    k_truss,
    max_truss_number,
    truss_numbers,
)
from repro.graphs.triangles import (
    _edge_triangle_counts_legacy,
    count_triangles,
    edge_triangle_counts,
    enumerate_triangles,
)
from repro.network.theme import intersect_graphs
from tests.conftest import small_graphs


def _random_graphs():
    """A deterministic spread of generated graphs (sparse to dense)."""
    return [
        erdos_renyi_graph(30, 0.15, seed=3),
        erdos_renyi_graph(40, 0.4, seed=4),
        powerlaw_cluster_graph(60, 3, 0.6, seed=5),
        powerlaw_cluster_graph(120, 5, 0.9, seed=6),
    ]


class TestRoundTrip:
    @given(small_graphs())
    def test_round_trip_equals_original(self, graph):
        assert CSRGraph.from_graph(graph).to_graph() == graph

    def test_round_trip_generated(self):
        for graph in _random_graphs():
            csr = CSRGraph.from_graph(graph)
            assert csr.to_graph() == graph
            assert csr.num_vertices == graph.num_vertices
            assert csr.num_edges == graph.num_edges

    def test_isolated_vertices_preserved(self):
        graph = Graph([(1, 2)])
        graph.add_vertex(99)
        csr = CSRGraph.from_graph(graph)
        assert 99 in csr
        assert csr.to_graph() == graph

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges([(1, 1)])

    def test_rejects_unsortable_labels(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges([(1, "a")])

    @given(small_graphs())
    def test_queries_match_legacy(self, graph):
        csr = CSRGraph.from_graph(graph)
        assert sorted(csr) == sorted(graph)
        assert set(csr.iter_edges()) == set(graph.iter_edges())
        for v in graph:
            assert csr.degree(v) == graph.degree(v)
            assert set(csr.neighbors(v)) == graph.neighbors(v)
        for u, v in graph.iter_edges():
            assert csr.has_edge(u, v)
            assert csr.has_edge(v, u)
        assert not csr.has_edge(-5, -6)

    def test_adjacency_rows_sorted(self):
        for graph in _random_graphs():
            csr = CSRGraph.from_graph(graph)
            for i in range(csr.num_vertices):
                row = list(csr.indices[csr.indptr[i]:csr.indptr[i + 1]])
                assert row == sorted(row)

    def test_edge_ids_canonical(self):
        csr = CSRGraph.from_graph(_random_graphs()[2])
        for eid in range(csr.num_edges):
            u, v = csr.edge_label(eid)
            assert u < v
            assert csr.edge_id(u, v) == eid
            assert csr.edge_id(v, u) == eid


class TestEligibility:
    def test_int_graph_eligible(self):
        assert csr_eligible(Graph([(1, 2)]))

    def test_string_graph_not_eligible(self):
        assert not csr_eligible(Graph([("a", "b")]))
        assert as_csr(Graph([("a", "b")])) is None

    def test_as_graph_passthrough_and_convert(self):
        graph = Graph([(1, 2), (2, 3)])
        assert as_graph(graph) is graph
        assert as_graph(CSRGraph.from_graph(graph)) == graph


class TestDerivedGraphs:
    @given(small_graphs())
    def test_subgraph_matches_legacy(self, graph):
        keep = [v for v in sorted(graph.vertices())][::2]
        expected = graph.subgraph(keep)
        got = CSRGraph.from_graph(graph).subgraph(keep)
        assert got.to_graph() == expected

    def test_intersect_matches_legacy(self):
        a = powerlaw_cluster_graph(80, 4, 0.7, seed=11)
        b = powerlaw_cluster_graph(80, 4, 0.7, seed=12)
        expected = intersect_graphs(a, b)
        got = CSRGraph.from_graph(a).intersect(CSRGraph.from_graph(b))
        assert got.to_graph() == expected

    def test_intersect_graphs_dispatches_csr(self):
        a = powerlaw_cluster_graph(50, 3, 0.5, seed=13)
        b = powerlaw_cluster_graph(50, 3, 0.5, seed=14)
        result = intersect_graphs(
            CSRGraph.from_graph(a), CSRGraph.from_graph(b)
        )
        assert isinstance(result, CSRGraph)
        assert result.to_graph() == intersect_graphs(a, b)

    def test_intersect_mixed_pair(self):
        a = powerlaw_cluster_graph(50, 3, 0.5, seed=13)
        b = powerlaw_cluster_graph(50, 3, 0.5, seed=14)
        result = intersect_graphs(CSRGraph.from_graph(a), b)
        assert set(result.iter_edges()) == set(
            intersect_graphs(a, b).iter_edges()
        )


class TestTriangleParity:
    @given(small_graphs())
    def test_edge_triangle_counts_match_legacy(self, graph):
        assert edge_triangle_counts(graph) == _edge_triangle_counts_legacy(
            graph
        )

    def test_counts_on_generated(self):
        for graph in _random_graphs():
            legacy = _edge_triangle_counts_legacy(graph)
            assert edge_triangle_counts(graph) == legacy
            assert count_triangles(graph) == sum(legacy.values()) // 3

    @given(small_graphs())
    def test_enumeration_consistent(self, graph):
        triangles = set(enumerate_triangles(graph))
        assert len(triangles) == count_triangles(graph)


class TestTrussParity:
    def test_k_truss_matches_legacy(self):
        for graph in _random_graphs():
            for k in (3, 4, 5):
                fast = k_truss(graph, k)
                slow = _k_truss_legacy(graph, k)
                assert set(fast.iter_edges()) == set(slow.iter_edges())
                assert set(fast.vertices()) == set(slow.vertices())

    def test_truss_numbers_match_legacy(self):
        for graph in _random_graphs():
            assert truss_numbers(graph) == _truss_numbers_legacy(graph)

    @given(small_graphs())
    def test_truss_numbers_match_legacy_random(self, graph):
        assert truss_numbers(graph) == _truss_numbers_legacy(graph)

    def test_string_labels_take_legacy_path(self):
        graph = Graph(
            [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")]
        )
        assert truss_numbers(graph) == _truss_numbers_legacy(graph)
        assert max_truss_number(graph) == 3
        assert set(k_truss(graph, 3).iter_edges()) == {
            ("a", "b"), ("a", "c"), ("b", "c")
        }
