"""Unit tests for CSR edge-mask projection and derived triangle indexes.

The projection fast path must be *transparent*: a projected graph is
structurally identical to one built from the filtered edge list, and a
derived triangle index is element-identical to a fresh enumeration of
the projected graph (same triangle order, same partner tables) — that
element identity is what makes projected TC-Tree builds bit-identical
to the re-enumeration oracle.
"""

from __future__ import annotations

import pickle

import pytest

from repro.graphs.csr import CSRGraph
from repro.graphs.support import (
    TriangleIndex,
    derivable,
    derive_triangle_index,
    projection,
    projection_enabled,
    triangle_index,
)

TRI_FIELDS = (
    "tri_u", "tri_v", "tri_w", "tri_e1", "tri_e2", "tri_e3", "edge_tris",
)


def wheel_graph(n: int = 8) -> CSRGraph:
    """Hub 0 connected to a cycle 1..n — every spoke pair forms triangles."""
    edges = [(0, i) for i in range(1, n + 1)]
    edges += [(i, i + 1) for i in range(1, n)]
    edges.append((1, n))
    return CSRGraph.from_edges(edges)


def assert_same_index(derived: TriangleIndex, fresh: TriangleIndex):
    for field in TRI_FIELDS:
        assert getattr(derived, field) == getattr(fresh, field)


class TestProject:
    def test_matches_generic_constructor(self):
        graph = wheel_graph()
        mask = bytearray(graph.num_edges)
        for e in range(0, graph.num_edges, 2):
            mask[e] = 1
        child = graph.project(mask)
        labels = graph.labels
        reference = CSRGraph._from_canonical_edges(
            [
                (labels[graph.edge_u[e]], labels[graph.edge_v[e]])
                for e in range(graph.num_edges)
                if mask[e]
            ]
        )
        assert child.labels == reference.labels
        assert list(child.indptr) == list(reference.indptr)
        assert list(child.indices) == list(reference.indices)
        assert list(child.edge_ids) == list(reference.edge_ids)
        assert list(child.edge_u) == list(reference.edge_u)
        assert list(child.edge_v) == list(reference.edge_v)

    def test_sparse_and_dense_strategies_agree(self):
        """project() picks a build strategy by survival rate; both must
        produce identical graphs and remap tables."""
        graph = wheel_graph(10)
        m = graph.num_edges
        sparse = bytearray(m)
        sparse[0] = sparse[1] = sparse[2] = 1  # < 1/4 survival
        dense = bytearray(b"\x01") * m
        dense[0] = 0  # > 1/4 survival
        for mask in (sparse, dense):
            child = graph.project(mask)
            expected = [e for e in range(m) if mask[e]]
            assert list(child._proj_eids) == expected
            assert child._proj_parent is graph
            assert child.edges() == [
                graph.edge_label(e) for e in expected
            ]

    def test_all_kept_returns_self(self):
        graph = wheel_graph()
        assert graph.project(bytearray(b"\x01") * graph.num_edges) is graph

    def test_all_kept_with_isolated_vertex_rebuilds(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)], vertices=[0, 1, 2, 9])
        child = graph.project(bytearray(b"\x01") * 2)
        assert child is not graph
        assert child.labels == (0, 1, 2)

    def test_chain_composes_past_unindexed_intermediate(self):
        graph = wheel_graph()
        triangle_index(graph)
        mask = bytearray(b"\x01") * graph.num_edges
        mask[0] = 0
        child = graph.project(mask)  # parent has a cached index
        assert child._proj_parent is graph
        mask2 = bytearray(b"\x01") * child.num_edges
        mask2[0] = 0
        grandchild = child.project(mask2)  # child has no cached index
        assert grandchild._proj_parent is graph
        assert [graph.edge_label(e) for e in grandchild._proj_eids] == (
            grandchild.edges()
        )

    def test_projection_links_to_indexed_intermediate(self):
        graph = wheel_graph()
        triangle_index(graph)
        mask = bytearray(b"\x01") * graph.num_edges
        mask[0] = 0
        child = graph.project(mask)
        triangle_index(child)  # derived, now cached on the child
        mask2 = bytearray(b"\x01") * child.num_edges
        mask2[0] = 0
        grandchild = child.project(mask2)
        assert grandchild._proj_parent is child

    def test_release_projection(self):
        graph = wheel_graph()
        mask = bytearray(b"\x01") * graph.num_edges
        mask[0] = 0
        child = graph.project(mask)
        child.release_projection()
        assert child._proj_parent is None
        assert child._proj_eids is None

    def test_pickle_drops_provenance(self):
        graph = wheel_graph()
        mask = bytearray(b"\x01") * graph.num_edges
        mask[0] = 0
        child = graph.project(mask)
        clone = pickle.loads(pickle.dumps(child))
        assert clone == child
        assert clone._proj_parent is None
        assert clone._proj_eids is None

    def test_intersect_is_a_projection_of_the_smaller_operand(self):
        big = wheel_graph(10)
        small = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2), (3, 4), (7, 11)])
        result = big.intersect(small)
        assert result._proj_parent is small
        assert sorted(result.iter_edges()) == [(0, 1), (0, 2), (1, 2), (3, 4)]
        base, mask, count = big.intersect_mask(small)
        assert base is small
        assert count == 4
        assert base.project(mask) == result


class TestDerivedIndex:
    def test_derived_equals_fresh(self):
        graph = wheel_graph()
        triangle_index(graph)
        mask = bytearray(b"\x01") * graph.num_edges
        mask[3] = 0
        mask[7] = 0
        child = graph.project(mask)
        derived = derive_triangle_index(child)
        assert derived is not None
        assert derived.source == "derived"
        fresh = TriangleIndex(child)
        assert fresh.source == "enumerated"
        assert_same_index(derived, fresh)

    def test_derivation_requires_cached_parent_index(self):
        graph = wheel_graph()
        mask = bytearray(b"\x01") * graph.num_edges
        mask[0] = 0
        child = graph.project(mask)  # parent index never built
        assert derive_triangle_index(child) is None
        assert not derivable(child)
        triangle_index(graph)
        assert derivable(child)
        assert derive_triangle_index(child) is not None

    def test_triangle_index_routes_through_derivation(self):
        graph = wheel_graph()
        triangle_index(graph)
        mask = bytearray(b"\x01") * graph.num_edges
        mask[0] = 0
        child = graph.project(mask)
        assert triangle_index(child).source == "derived"

    def test_oracle_toggle_forces_re_enumeration(self):
        graph = wheel_graph()
        triangle_index(graph)
        mask = bytearray(b"\x01") * graph.num_edges
        mask[0] = 0
        child = graph.project(mask)
        assert projection_enabled()
        with projection(False):
            assert not projection_enabled()
            tri = triangle_index(child)
            assert tri.source == "enumerated"
        assert projection_enabled()

    def test_empty_projection_has_empty_index(self):
        graph = wheel_graph()
        triangle_index(graph)
        child = graph.project(bytearray(graph.num_edges))
        derived = derive_triangle_index(child)
        assert derived is not None
        assert derived.num_triangles == 0
        assert derived.edge_tris == []

    def test_second_level_derivation(self):
        graph = wheel_graph(10)
        triangle_index(graph)
        mask = bytearray(b"\x01") * graph.num_edges
        mask[2] = 0
        child = graph.project(mask)
        triangle_index(child)
        mask2 = bytearray(b"\x01") * child.num_edges
        mask2[5] = 0
        grandchild = child.project(mask2)
        derived = derive_triangle_index(grandchild)
        assert_same_index(derived, TriangleIndex(grandchild))


class TestEnumerationOrder:
    def test_triangles_listed_in_canonical_order(self):
        """The (e1, w) ascending order is the contract derivation
        preserves — pin it."""
        graph = wheel_graph()
        tri = TriangleIndex(graph)
        order = list(zip(tri.tri_e1, tri.tri_w))
        assert order == sorted(order)
        for u, v, w in zip(tri.tri_u, tri.tri_v, tri.tri_w):
            assert u < v < w

    def test_wheel_triangle_count(self):
        tri = TriangleIndex(wheel_graph(8))
        assert tri.num_triangles == 8


@pytest.fixture(autouse=True)
def _projection_default_restored():
    yield
    assert projection_enabled(), "a test leaked the projection toggle"
