"""Tests for triangle enumeration (cross-checked against networkx)."""

from __future__ import annotations

import networkx as nx
from hypothesis import given

from repro.graphs.graph import Graph
from repro.graphs.triangles import (
    common_neighbors,
    count_triangles,
    edge_triangle_counts,
    enumerate_triangles,
)
from tests.conftest import small_graphs


def _to_networkx(graph: Graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(graph.vertices())
    g.add_edges_from(graph.edges())
    return g


class TestCommonNeighbors:
    def test_triangle(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        assert common_neighbors(graph, 1, 2) == {3}

    def test_no_common(self):
        graph = Graph([(1, 2), (2, 3)])
        assert common_neighbors(graph, 1, 2) == set()

    def test_multiple(self):
        graph = Graph([(1, 2), (1, 3), (2, 3), (1, 4), (2, 4)])
        assert common_neighbors(graph, 1, 2) == {3, 4}


class TestEnumeration:
    def test_single_triangle(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        assert list(enumerate_triangles(graph)) == [(1, 2, 3)]

    def test_k4_has_four_triangles(self):
        graph = Graph(
            [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
        )
        triangles = set(enumerate_triangles(graph))
        assert triangles == {
            (1, 2, 3), (1, 2, 4), (1, 3, 4), (2, 3, 4)
        }

    def test_triangle_free(self):
        graph = Graph([(1, 2), (2, 3), (3, 4), (4, 1)])
        assert count_triangles(graph) == 0

    @given(small_graphs())
    def test_count_matches_networkx(self, graph):
        ours = count_triangles(graph)
        theirs = sum(nx.triangles(_to_networkx(graph)).values()) // 3
        assert ours == theirs

    @given(small_graphs())
    def test_each_triangle_yielded_once_and_sorted(self, graph):
        triangles = list(enumerate_triangles(graph))
        assert len(triangles) == len(set(triangles))
        for a, b, c in triangles:
            assert a < b < c
            assert graph.has_edge(a, b)
            assert graph.has_edge(b, c)
            assert graph.has_edge(a, c)


class TestEdgeSupport:
    def test_support_counts(self):
        graph = Graph(
            [(1, 2), (1, 3), (2, 3), (2, 4), (3, 4)]
        )
        support = edge_triangle_counts(graph)
        assert support[(2, 3)] == 2
        assert support[(1, 2)] == 1

    @given(small_graphs())
    def test_support_sum_is_three_times_triangles(self, graph):
        support = edge_triangle_counts(graph)
        assert sum(support.values()) == 3 * count_triangles(graph)
