"""Tests for BFS traversal helpers."""

from __future__ import annotations

from hypothesis import given

from repro.graphs.graph import Graph, edge_key
from repro.graphs.traversal import bfs_edges, bfs_order, bfs_vertices
from tests.conftest import small_graphs


class TestBfsOrder:
    def test_starts_at_start(self):
        graph = Graph([(1, 2), (2, 3)])
        assert bfs_order(graph, 2)[0] == 2

    def test_level_order(self):
        #   1 - 2 - 4
        #    \- 3 - 5
        graph = Graph([(1, 2), (1, 3), (2, 4), (3, 5)])
        assert bfs_order(graph, 1) == [1, 2, 3, 4, 5]

    def test_only_reachable(self):
        graph = Graph([(1, 2), (3, 4)])
        assert set(bfs_order(graph, 1)) == {1, 2}

    def test_deterministic_tie_break(self):
        graph = Graph([(1, 5), (1, 3), (1, 4)])
        assert bfs_order(graph, 1) == [1, 3, 4, 5]

    @given(small_graphs(min_edges=1))
    def test_generator_matches_list(self, graph):
        start = min(v for v in graph if graph.degree(v) > 0)
        assert list(bfs_vertices(graph, start)) == bfs_order(graph, start)


class TestBfsEdges:
    def test_yields_component_edges_once(self):
        graph = Graph([(1, 2), (2, 3), (1, 3), (3, 4)])
        edges = list(bfs_edges(graph, 1))
        assert sorted(edges) == [(1, 2), (1, 3), (2, 3), (3, 4)]
        assert len(edges) == len(set(edges))

    def test_prefix_property(self):
        """The first m edges form a growing nested family."""
        graph = Graph([(1, 2), (2, 3), (1, 3), (3, 4), (4, 5)])
        edges = list(bfs_edges(graph, 1))
        for m in range(1, len(edges)):
            assert set(edges[:m]) <= set(edges[: m + 1])

    @given(small_graphs(min_edges=1))
    def test_covers_component(self, graph):
        start = min(v for v in graph if graph.degree(v) > 0)
        reachable = set(bfs_order(graph, start))
        expected = {
            edge_key(u, v)
            for u, v in graph.iter_edges()
            if u in reachable and v in reachable
        }
        assert set(bfs_edges(graph, start)) == expected
