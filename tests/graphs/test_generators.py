"""Tests for the random-graph generators."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs.components import is_connected
from repro.graphs.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    watts_strogatz_graph,
)
from repro.graphs.triangles import count_triangles


class TestErdosRenyi:
    def test_p0_is_empty(self):
        graph = erdos_renyi_graph(10, 0.0, seed=1)
        assert graph.num_vertices == 10
        assert graph.num_edges == 0

    def test_p1_is_complete(self):
        graph = erdos_renyi_graph(6, 1.0, seed=1)
        assert graph.num_edges == 15

    def test_deterministic_given_seed(self):
        a = erdos_renyi_graph(20, 0.3, seed=5)
        b = erdos_renyi_graph(20, 0.3, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = erdos_renyi_graph(30, 0.3, seed=5)
        b = erdos_renyi_graph(30, 0.3, seed=6)
        assert a != b

    def test_edge_count_near_expectation(self):
        graph = erdos_renyi_graph(60, 0.2, seed=7)
        expected = 0.2 * 60 * 59 / 2
        assert 0.5 * expected < graph.num_edges < 1.5 * expected

    def test_invalid_p(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(5, 1.5)

    def test_negative_n(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(-1, 0.5)


class TestBarabasiAlbert:
    def test_edge_count(self):
        graph = barabasi_albert_graph(50, 3, seed=1)
        # (n - m) new vertices each add m edges.
        assert graph.num_edges == (50 - 3) * 3

    def test_connected(self):
        graph = barabasi_albert_graph(40, 2, seed=2)
        assert is_connected(graph)

    def test_heavy_tail(self):
        """Max degree far above mean degree (preferential attachment)."""
        graph = barabasi_albert_graph(200, 2, seed=3)
        degrees = [graph.degree(v) for v in graph]
        assert max(degrees) > 4 * (sum(degrees) / len(degrees))

    def test_invalid_m(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(5, 5)
        with pytest.raises(GraphError):
            barabasi_albert_graph(5, 0)

    def test_deterministic(self):
        assert barabasi_albert_graph(30, 2, seed=9) == barabasi_albert_graph(
            30, 2, seed=9
        )


class TestWattsStrogatz:
    def test_no_rewiring_is_ring_lattice(self):
        graph = watts_strogatz_graph(10, 4, 0.0, seed=1)
        assert graph.num_edges == 10 * 4 // 2
        assert all(graph.degree(v) == 4 for v in graph)

    def test_rewired_keeps_edge_count(self):
        graph = watts_strogatz_graph(20, 4, 0.5, seed=1)
        assert graph.num_edges == 20 * 4 // 2

    def test_odd_k_rejected(self):
        with pytest.raises(GraphError):
            watts_strogatz_graph(10, 3, 0.1)

    def test_k_too_large_rejected(self):
        with pytest.raises(GraphError):
            watts_strogatz_graph(4, 4, 0.1)


class TestPowerlawCluster:
    def test_sizes(self):
        graph = powerlaw_cluster_graph(80, 3, 0.5, seed=1)
        assert graph.num_vertices == 80
        assert graph.num_edges >= (80 - 3) * 1  # at least one per newcomer

    def test_produces_triangles(self):
        """The triangle step must produce more triangles than plain BA."""
        pc = powerlaw_cluster_graph(150, 3, 0.8, seed=4)
        assert count_triangles(pc) > 50

    def test_deterministic(self):
        a = powerlaw_cluster_graph(60, 3, 0.5, seed=11)
        b = powerlaw_cluster_graph(60, 3, 0.5, seed=11)
        assert a == b

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            powerlaw_cluster_graph(5, 0, 0.5)
        with pytest.raises(GraphError):
            powerlaw_cluster_graph(5, 2, 1.5)
