"""Tests for connected components."""

from __future__ import annotations

import networkx as nx
from hypothesis import given

from repro.graphs.components import connected_components, is_connected
from repro.graphs.graph import Graph
from tests.conftest import small_graphs


class TestConnectedComponents:
    def test_empty_graph(self):
        assert connected_components(Graph()) == []

    def test_single_component(self):
        graph = Graph([(1, 2), (2, 3)])
        assert connected_components(graph) == [{1, 2, 3}]

    def test_two_components_largest_first(self):
        graph = Graph([(1, 2), (2, 3), (7, 8)])
        assert connected_components(graph) == [{1, 2, 3}, {7, 8}]

    def test_isolated_vertices_are_singletons(self):
        graph = Graph([(1, 2)])
        graph.add_vertex(9)
        assert {9} in connected_components(graph)

    def test_tie_broken_by_smallest_member(self):
        graph = Graph([(5, 6), (1, 2)])
        assert connected_components(graph) == [{1, 2}, {5, 6}]

    @given(small_graphs())
    def test_matches_networkx(self, graph):
        g = nx.Graph()
        g.add_nodes_from(graph.vertices())
        g.add_edges_from(graph.edges())
        ours = {frozenset(c) for c in connected_components(graph)}
        theirs = {frozenset(c) for c in nx.connected_components(g)}
        assert ours == theirs

    @given(small_graphs())
    def test_components_partition_vertices(self, graph):
        components = connected_components(graph)
        union = set()
        total = 0
        for component in components:
            union |= component
            total += len(component)
        assert union == set(graph.vertices())
        assert total == graph.num_vertices


class TestIsConnected:
    def test_empty_is_connected(self):
        assert is_connected(Graph())

    def test_connected(self):
        assert is_connected(Graph([(1, 2), (2, 3)]))

    def test_disconnected(self):
        assert not is_connected(Graph([(1, 2), (3, 4)]))
