"""Tests for the adjacency-set Graph."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.errors import GraphError
from repro.graphs.graph import Graph, edge_key
from tests.conftest import small_graphs


class TestEdgeKey:
    def test_orders_endpoints(self):
        assert edge_key(2, 1) == (1, 2)
        assert edge_key(1, 2) == (1, 2)


class TestConstruction:
    def test_empty(self):
        graph = Graph()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0

    def test_from_edge_list(self):
        graph = Graph([(1, 2), (2, 3)])
        assert graph.num_vertices == 3
        assert graph.num_edges == 2

    def test_add_vertex_idempotent(self):
        graph = Graph()
        graph.add_vertex(1)
        graph.add_vertex(1)
        assert graph.num_vertices == 1

    def test_add_edge_creates_endpoints(self):
        graph = Graph()
        graph.add_edge(1, 2)
        assert 1 in graph and 2 in graph

    def test_add_edge_idempotent(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        graph = Graph()
        with pytest.raises(GraphError):
            graph.add_edge(1, 1)


class TestMutation:
    def test_remove_edge(self):
        graph = Graph([(1, 2), (2, 3)])
        graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)
        assert graph.num_edges == 1
        assert 1 in graph  # vertex stays

    def test_remove_missing_edge_raises(self):
        graph = Graph([(1, 2)])
        with pytest.raises(GraphError):
            graph.remove_edge(1, 3)

    def test_remove_vertex(self):
        graph = Graph([(1, 2), (1, 3), (2, 3)])
        graph.remove_vertex(1)
        assert 1 not in graph
        assert graph.num_edges == 1

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(GraphError):
            Graph().remove_vertex(9)

    def test_discard_isolated_vertices(self):
        graph = Graph([(1, 2)])
        graph.add_vertex(7)
        graph.discard_isolated_vertices()
        assert 7 not in graph
        assert graph.num_vertices == 2


class TestQueries:
    def test_degree(self):
        graph = Graph([(1, 2), (1, 3)])
        assert graph.degree(1) == 2
        assert graph.degree(3) == 1

    def test_degree_unknown_vertex(self):
        with pytest.raises(GraphError):
            Graph().degree(0)

    def test_neighbors(self):
        graph = Graph([(1, 2), (1, 3)])
        assert graph.neighbors(1) == {2, 3}

    def test_edges_canonical(self):
        graph = Graph([(2, 1), (3, 2)])
        assert sorted(graph.edges()) == [(1, 2), (2, 3)]

    def test_iter_edges_matches_edges(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        assert sorted(graph.iter_edges()) == sorted(graph.edges())


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        graph = Graph([(1, 2)])
        clone = graph.copy()
        clone.add_edge(2, 3)
        assert graph.num_edges == 1
        assert clone.num_edges == 2

    def test_subgraph(self):
        graph = Graph([(1, 2), (2, 3), (3, 4)])
        sub = graph.subgraph([1, 2, 3])
        assert sorted(sub.edges()) == [(1, 2), (2, 3)]
        assert 4 not in sub

    def test_edge_subgraph(self):
        graph = Graph([(1, 2), (2, 3), (3, 4)])
        sub = graph.edge_subgraph([(2, 3)])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1

    def test_edge_subgraph_rejects_foreign_edges(self):
        graph = Graph([(1, 2)])
        with pytest.raises(GraphError):
            graph.edge_subgraph([(1, 3)])

    def test_equality(self):
        assert Graph([(1, 2)]) == Graph([(2, 1)])
        assert Graph([(1, 2)]) != Graph([(1, 3)])

    @given(small_graphs())
    def test_copy_equals_original(self, graph):
        assert graph.copy() == graph

    @given(small_graphs())
    def test_edge_count_consistent(self, graph):
        assert graph.num_edges == len(graph.edges())
        assert graph.num_edges == sum(
            graph.degree(v) for v in graph
        ) // 2

    @given(small_graphs())
    def test_full_subgraph_is_identity(self, graph):
        assert graph.subgraph(graph.vertices()) == graph
