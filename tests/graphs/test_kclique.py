"""Tests for maximal cliques and k-clique percolation communities."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.kclique import (
    enumerate_maximal_cliques,
    k_clique_communities,
)
from tests.conftest import small_graphs


def _to_networkx(graph: Graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(graph.vertices())
    g.add_edges_from(graph.edges())
    return g


class TestMaximalCliques:
    def test_triangle(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        assert enumerate_maximal_cliques(graph) == [frozenset({1, 2, 3})]

    def test_path_gives_edges(self):
        graph = Graph([(1, 2), (2, 3)])
        cliques = set(enumerate_maximal_cliques(graph))
        assert cliques == {frozenset({1, 2}), frozenset({2, 3})}

    @settings(deadline=None)
    @given(small_graphs(min_edges=1))
    def test_matches_networkx(self, graph):
        ours = {c for c in enumerate_maximal_cliques(graph) if len(c) > 1}
        theirs = {
            frozenset(c)
            for c in nx.find_cliques(_to_networkx(graph))
            if len(c) > 1
        }
        assert ours == theirs


class TestKCliqueCommunities:
    def test_two_triangles_sharing_edge_merge(self):
        graph = Graph([(1, 2), (2, 3), (1, 3), (2, 4), (3, 4)])
        [community] = k_clique_communities(graph, 3)
        assert community == {1, 2, 3, 4}

    def test_disjoint_triangles_stay_apart(self):
        graph = Graph([(1, 2), (2, 3), (1, 3), (7, 8), (8, 9), (7, 9)])
        communities = k_clique_communities(graph, 3)
        assert sorted(map(sorted, communities)) == [[1, 2, 3], [7, 8, 9]]

    def test_triangles_sharing_vertex_stay_apart(self):
        """Sharing only k-2 vertices does not percolate at k = 3."""
        graph = Graph([(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (3, 5)])
        communities = k_clique_communities(graph, 3)
        assert len(communities) == 2

    def test_invalid_k(self):
        with pytest.raises(GraphError):
            k_clique_communities(Graph(), 1)

    @settings(deadline=None, max_examples=30)
    @given(small_graphs())
    def test_matches_networkx(self, graph):
        ours = {
            frozenset(c) for c in k_clique_communities(graph, 3)
        }
        theirs = {
            frozenset(c)
            for c in nx.community.k_clique_communities(_to_networkx(graph), 3)
        }
        assert ours == theirs

    @settings(deadline=None, max_examples=20)
    @given(small_graphs())
    def test_communities_may_overlap_but_cover_k_cliques(self, graph):
        communities = k_clique_communities(graph, 3)
        from repro.graphs.triangles import enumerate_triangles

        for triangle in enumerate_triangles(graph):
            assert any(set(triangle) <= c for c in communities)
