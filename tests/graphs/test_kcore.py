"""Tests for k-core decomposition (cross-checked against networkx)."""

from __future__ import annotations

import networkx as nx
from hypothesis import given

from repro.graphs.graph import Graph
from repro.graphs.kcore import core_numbers, k_core
from tests.conftest import small_graphs


def _to_networkx(graph: Graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(graph.vertices())
    g.add_edges_from(graph.edges())
    return g


class TestCoreNumbers:
    def test_triangle_is_2_core(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        assert core_numbers(graph) == {1: 2, 2: 2, 3: 2}

    def test_path_is_1_core(self):
        graph = Graph([(1, 2), (2, 3)])
        assert core_numbers(graph) == {1: 1, 2: 1, 3: 1}

    def test_isolated_vertex_is_0_core(self):
        graph = Graph()
        graph.add_vertex(7)
        assert core_numbers(graph) == {7: 0}

    def test_empty(self):
        assert core_numbers(Graph()) == {}

    @given(small_graphs())
    def test_matches_networkx(self, graph):
        assert core_numbers(graph) == nx.core_number(_to_networkx(graph))


class TestKCore:
    def test_k2_drops_pendant(self):
        graph = Graph([(1, 2), (2, 3), (1, 3), (3, 4)])
        core = k_core(graph, 2)
        assert set(core.vertices()) == {1, 2, 3}

    def test_k0_is_whole_graph(self):
        graph = Graph([(1, 2)])
        graph.add_vertex(5)
        assert k_core(graph, 0) == graph

    @given(small_graphs())
    def test_matches_networkx_k2(self, graph):
        ours = k_core(graph, 2)
        theirs = nx.k_core(_to_networkx(graph), 2)
        assert set(ours.vertices()) == set(theirs.nodes)
        assert set(ours.iter_edges()) == {
            tuple(sorted(e)) for e in theirs.edges
        }

    @given(small_graphs())
    def test_min_degree_invariant(self, graph):
        for k in (1, 2, 3):
            core = k_core(graph, k)
            for v in core:
                assert core.degree(v) >= k
