"""Property-based parity: projection fast path vs re-enumeration oracle.

The convention pinned here (and documented in README "Testing"): the
**serial re-enumeration path is ground truth**. Running with projection
disabled re-enumerates every triangle index from scratch exactly like
the pre-projection code; running with it enabled derives indexes through
projection chains, exchanges carriers as masks, and may choose different
decomposition routes. Because a derived index is element-identical to a
fresh enumeration and every route decomposes the same edge set under the
same float-summation order, the resulting TC-Trees must be
**bit-identical** — exact threshold floats, exact level membership,
exact frequency maps — on every input, across the serial, thread, and
process build backends.

Cutover constants are forced down so the hypothesis-sized networks
actually exercise the CSR engine, the masked-carrier flow, and derived
indexes (at their production values only big networks would).
"""

from __future__ import annotations

import random
from contextlib import contextmanager

import pytest
from hypothesis import given, settings

import repro.core.mptd as mptd
import repro.index.decomposition as decomposition
from repro.edgenet.decomposition import decompose_edge_network_pattern
from repro.edgenet.network import EdgeDatabaseNetwork
from repro.graphs.csr import CSRGraph
from repro.graphs.support import TriangleIndex, projection, triangle_index
from repro.index.tctree import build_tc_tree
from tests.conftest import database_networks, small_graphs


def assert_trees_bit_identical(expected, actual):
    """Exact equality: patterns, thresholds, level membership, freqs."""
    assert expected.patterns() == actual.patterns()
    for pattern in expected.patterns():
        a = expected.find_node(pattern).decomposition
        b = actual.find_node(pattern).decomposition
        assert a.thresholds() == b.thresholds()
        assert a.frequencies == b.frequencies
        assert [
            sorted(level.removed_edges) for level in a.levels
        ] == [sorted(level.removed_edges) for level in b.levels]


@contextmanager
def forced_csr_cutovers():
    """Shrink the engine cutovers so tiny networks take the fast path.

    A context manager rather than a fixture: hypothesis re-runs the test
    body per example, and the override must wrap every example.
    """
    saved = (
        decomposition.CSR_MIN_EDGES,
        decomposition.CSR_NET_REUSE_MIN_EDGES,
        mptd.CSR_MIN_EDGES,
    )
    decomposition.CSR_MIN_EDGES = 1
    decomposition.CSR_NET_REUSE_MIN_EDGES = 3
    mptd.CSR_MIN_EDGES = 1
    try:
        yield
    finally:
        (
            decomposition.CSR_MIN_EDGES,
            decomposition.CSR_NET_REUSE_MIN_EDGES,
            mptd.CSR_MIN_EDGES,
        ) = saved


class TestTreeParity:
    @settings(deadline=None, max_examples=25)
    @given(database_networks())
    def test_serial_projection_matches_oracle(self, network):
        with forced_csr_cutovers():
            with projection(False):
                oracle = build_tc_tree(network)
            with projection(True):
                projected = build_tc_tree(network)
        assert_trees_bit_identical(oracle, projected)

    @settings(deadline=None, max_examples=5)
    @given(database_networks())
    def test_all_backends_match_oracle(self, network):
        with forced_csr_cutovers():
            with projection(False):
                oracle = build_tc_tree(network)
            with projection(True):
                threaded = build_tc_tree(
                    network, workers=4, backend="thread"
                )
                process = build_tc_tree(network, workers=2)
        assert_trees_bit_identical(oracle, threaded)
        assert_trees_bit_identical(oracle, process)

    @settings(deadline=None, max_examples=10)
    @given(database_networks())
    def test_parity_at_production_cutovers(self, network):
        """Without forced cutovers the tiny-graph legacy branch engages —
        the oracle contract must hold there too."""
        with projection(False):
            oracle = build_tc_tree(network)
        with projection(True):
            projected = build_tc_tree(network)
        assert_trees_bit_identical(oracle, projected)


class TestDerivedIndexProperties:
    @settings(deadline=None, max_examples=60)
    @given(small_graphs(max_vertices=10, min_edges=1))
    def test_random_masks_derive_identical_indexes(self, graph):
        csr = CSRGraph.from_graph(graph)
        triangle_index(csr)
        rng = random.Random(csr.num_edges * 31 + csr.num_vertices)
        mask = bytearray(
            1 if rng.random() < 0.6 else 0 for _ in range(csr.num_edges)
        )
        child = csr.project(mask)
        if child is csr:
            return
        with projection(True):
            derived = triangle_index(child)
        fresh = TriangleIndex(child)
        assert derived.source in ("derived", "enumerated")
        for field in (
            "tri_u", "tri_v", "tri_w", "tri_e1", "tri_e2", "tri_e3",
            "edge_tris",
        ):
            assert getattr(derived, field) == getattr(fresh, field)

    @settings(deadline=None, max_examples=60)
    @given(small_graphs(max_vertices=10, min_edges=1))
    def test_projection_equals_edge_list_construction(self, graph):
        csr = CSRGraph.from_graph(graph)
        rng = random.Random(csr.num_edges * 17 + 1)
        mask = bytearray(
            1 if rng.random() < 0.5 else 0 for _ in range(csr.num_edges)
        )
        child = csr.project(mask)
        reference = CSRGraph._from_canonical_edges(
            [csr.edge_label(e) for e in range(csr.num_edges) if mask[e]]
        )
        if child is csr:
            assert reference == csr
            return
        assert child.labels == reference.labels
        assert list(child.indptr) == list(reference.indptr)
        assert list(child.indices) == list(reference.indices)
        assert list(child.edge_ids) == list(reference.edge_ids)


class TestEdgeNetworkParity:
    def _random_edge_network(self, seed: int) -> EdgeDatabaseNetwork:
        rng = random.Random(seed)
        network = EdgeDatabaseNetwork()
        n = rng.randint(4, 9)
        for u in range(n):
            for v in range(u + 1, n):
                if rng.random() < 0.6:
                    for _ in range(rng.randint(1, 3)):
                        items = [
                            item for item in range(3)
                            if rng.random() < 0.6
                        ]
                        if items:
                            network.add_transaction(u, v, items)
        return network

    @pytest.mark.parametrize("seed", range(8))
    def test_csr_engine_matches_legacy_engine(self, seed):
        """Cross-engine parity: exact level membership and frequencies,
        thresholds to the float tolerance (the engines sum cohesion in
        different orders — same convention as the vertex model)."""
        network = self._random_edge_network(seed)
        for item in network.item_universe():
            legacy = decompose_edge_network_pattern(
                network, (item,), engine="legacy"
            )
            csr = decompose_edge_network_pattern(
                network, (item,), engine="csr"
            )
            assert len(legacy.levels) == len(csr.levels)
            assert legacy.frequencies == csr.frequencies
            for expected, actual in zip(legacy.levels, csr.levels):
                assert actual.alpha == pytest.approx(expected.alpha)
                assert actual.removed_edges == expected.removed_edges

    @pytest.mark.parametrize("seed", range(8))
    def test_projected_edge_decomposition_matches_oracle(self, seed):
        network = self._random_edge_network(seed)
        carrier = CSRGraph.from_edges(network.graph.iter_edges())
        triangle_index(carrier)
        for item in network.item_universe():
            with projection(True):
                projected = decompose_edge_network_pattern(
                    network, (item,), carrier=carrier, engine="csr"
                )
            with projection(False):
                oracle = decompose_edge_network_pattern(
                    network, (item,), carrier=carrier, engine="csr"
                )
            assert projected.thresholds() == oracle.thresholds()
            assert projected.frequencies == oracle.frequencies
            assert [
                level.removed_edges for level in projected.levels
            ] == [level.removed_edges for level in oracle.levels]
