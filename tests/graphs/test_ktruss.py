"""Tests for classic k-truss (cross-checked against networkx.k_truss)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.ktruss import k_truss, max_truss_number, truss_numbers
from tests.conftest import small_graphs


def _to_networkx(graph: Graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(graph.vertices())
    g.add_edges_from(graph.edges())
    return g


class TestKTruss:
    def test_triangle_is_3_truss(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        assert k_truss(graph, 3).num_edges == 3

    def test_triangle_free_graph_has_empty_3_truss(self):
        graph = Graph([(1, 2), (2, 3), (3, 4), (4, 1)])
        assert k_truss(graph, 3).num_edges == 0

    def test_k4_is_4_truss(self):
        graph = Graph(
            [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
        )
        assert k_truss(graph, 4).num_edges == 6
        assert k_truss(graph, 5).num_edges == 0

    def test_pendant_edge_dropped_at_k3(self):
        graph = Graph([(1, 2), (2, 3), (1, 3), (3, 4)])
        truss = k_truss(graph, 3)
        assert 4 not in truss

    def test_invalid_k(self):
        with pytest.raises(GraphError):
            k_truss(Graph(), 1)

    def test_input_not_mutated(self):
        graph = Graph([(1, 2), (2, 3), (3, 4), (4, 1)])
        k_truss(graph, 3)
        assert graph.num_edges == 4

    @given(small_graphs())
    def test_matches_networkx(self, graph):
        for k in (3, 4):
            ours = k_truss(graph, k)
            theirs = nx.k_truss(_to_networkx(graph), k)
            assert set(ours.iter_edges()) == {
                tuple(sorted(e)) for e in theirs.edges
            }


class TestTrussNumbers:
    def test_triangle(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        assert set(truss_numbers(graph).values()) == {3}

    def test_monotone_against_k_truss(self):
        """Edge e is in the k-truss iff truss_number(e) >= k."""
        graph = Graph(
            [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4), (4, 5), (5, 6)]
        )
        numbers = truss_numbers(graph)
        for k in (2, 3, 4):
            truss_edges = set(k_truss(graph, k).iter_edges())
            by_number = {e for e, t in numbers.items() if t >= k}
            assert truss_edges == by_number

    @given(small_graphs())
    def test_consistency_with_k_truss(self, graph):
        numbers = truss_numbers(graph)
        for k in (3, 4):
            truss_edges = set(k_truss(graph, k).iter_edges())
            by_number = {e for e, t in numbers.items() if t >= k}
            assert truss_edges == by_number

    def test_max_truss_number(self):
        graph = Graph(
            [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
        )
        assert max_truss_number(graph) == 4

    def test_max_truss_number_triangle_free(self):
        assert max_truss_number(Graph([(1, 2)])) == 2
