"""End-to-end integration: the full user workflow in one test module.

generate → validate → save → load → mine (3 methods) → verify →
index → stats → save → load → query (QBA/QBP) → search → update → export.
Every hop checks consistency with the previous one.
"""

from __future__ import annotations

from xml.etree import ElementTree as ET

import pytest

from repro import (
    ThemeCommunityFinder,
    ThemeCommunityWarehouse,
    bfs_edge_sample,
    build_tc_tree,
    load_network,
    save_network,
    update_vertex_database,
)
from repro.bench.experiments import make_bk
from repro.core.verify import verify_mining_result
from repro.export.graphml import network_to_graphml
from repro.index.stats import tc_tree_statistics
from repro.network.validate import has_errors, validate_network
from repro.search.attributed import attributed_community_search
from repro.search.topk import top_k_communities
from repro.search.vertex import communities_containing_vertex

ALPHA = 0.3
MAX_LENGTH = 2


@pytest.fixture(scope="module")
def workflow(tmp_path_factory):
    """Run the whole pipeline once; tests below assert on the artifacts."""
    tmp = tmp_path_factory.mktemp("workflow")
    artifacts: dict = {}

    network = bfs_edge_sample(make_bk("tiny"), 120, seed=3)
    artifacts["network"] = network

    # validate + persist + reload
    assert not has_errors(validate_network(network))
    path = tmp / "net.json"
    save_network(network, path)
    artifacts["loaded"] = load_network(path)

    # mine with all three methods on the reloaded network
    finder = ThemeCommunityFinder(artifacts["loaded"])
    artifacts["tcfi"] = finder.find(ALPHA, method="tcfi",
                                    max_length=MAX_LENGTH)
    artifacts["tcfa"] = finder.find(ALPHA, method="tcfa",
                                    max_length=MAX_LENGTH)
    artifacts["tcs"] = finder.find(ALPHA, method="tcs", epsilon=0.2,
                                   max_length=MAX_LENGTH)

    # index + persist + reload
    warehouse = ThemeCommunityWarehouse.build(
        artifacts["loaded"], max_length=MAX_LENGTH
    )
    index_path = tmp / "net.tctree.json"
    warehouse.save(index_path)
    artifacts["warehouse"] = ThemeCommunityWarehouse.load(index_path)
    return artifacts


class TestPipeline:
    def test_reload_preserves_network(self, workflow):
        original = workflow["network"]
        loaded = workflow["loaded"]
        assert loaded.graph == original.graph
        assert set(loaded.databases) == set(original.databases)

    def test_exact_methods_agree(self, workflow):
        assert workflow["tcfi"].same_trusses_as(workflow["tcfa"])
        assert workflow["tcs"].is_subset_of(workflow["tcfi"])

    def test_mining_result_verifies(self, workflow):
        assert verify_mining_result(
            workflow["loaded"], workflow["tcfi"]
        ) == []

    def test_index_answers_match_mining(self, workflow):
        answer = workflow["warehouse"].query(alpha=ALPHA)
        mined = workflow["tcfi"]
        assert set(answer.patterns()) == set(mined.patterns())
        for truss in answer.trusses:
            assert set(truss.graph.iter_edges()) == mined[
                truss.pattern
            ].edges()

    def test_index_stats_consistent(self, workflow):
        tree = workflow["warehouse"].tree
        stats = tc_tree_statistics(tree)
        assert stats.num_nodes == tree.num_nodes
        mined_at_zero = ThemeCommunityFinder(workflow["loaded"]).find(
            0.0, max_length=MAX_LENGTH
        )
        assert stats.num_nodes == mined_at_zero.num_patterns

    def test_searches_consistent(self, workflow):
        tree = workflow["warehouse"].tree
        communities = top_k_communities(tree, 3, alpha=ALPHA)
        assert communities
        best = communities[0]
        member = next(iter(best.members))
        by_vertex = communities_containing_vertex(
            tree, member, alpha=ALPHA
        )
        assert any(c.members == best.members for c in by_vertex)
        attributed = attributed_community_search(
            tree, [member], best.pattern, alpha=ALPHA
        )
        assert any(
            member in m.community.members for m in attributed
        )

    def test_update_then_requery(self, workflow):
        import copy

        network = copy.deepcopy(workflow["loaded"])
        tree = build_tc_tree(network, max_length=MAX_LENGTH)
        vertex = sorted(network.databases)[0]
        updated = update_vertex_database(
            network, tree, vertex, [[0]], max_length=MAX_LENGTH
        )
        scratch = build_tc_tree(network, max_length=MAX_LENGTH)
        assert updated.patterns() == scratch.patterns()

    def test_export_graphml(self, workflow):
        communities = top_k_communities(
            workflow["tcfi"], 5, min_size=3
        )
        text = network_to_graphml(workflow["loaded"], communities)
        root = ET.fromstring(text)
        nodes = root.findall(
            "{http://graphml.graphdrawing.org/xmlns}graph/"
            "{http://graphml.graphdrawing.org/xmlns}node"
        )
        assert len(nodes) == workflow["loaded"].num_vertices
