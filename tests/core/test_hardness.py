"""Executable check of the Theorem 3.8 reduction (#P-hardness gadget)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hardness import (
    count_frequent_patterns,
    count_theme_communities_via_gadget,
    fpc_gadget,
)
from repro.errors import MiningError
from repro.txdb.database import TransactionDatabase
from tests.conftest import transaction_databases


class TestGadget:
    def test_structure(self):
        database = TransactionDatabase([{1, 2}])
        network = fpc_gadget(database)
        assert network.num_vertices == 3
        assert network.num_edges == 3  # a triangle
        # All three vertices share equal frequencies for every pattern.
        for pattern in [(1,), (2,), (1, 2)]:
            values = {network.frequency(v, pattern) for v in range(3)}
            assert len(values) == 1

    def test_empty_database_rejected(self):
        with pytest.raises(MiningError):
            fpc_gadget(TransactionDatabase())


class TestReduction:
    def test_worked_example(self):
        database = TransactionDatabase(
            [{1, 2}, {1, 2}, {1, 3}, {2}]
        )
        # f(1)=0.75, f(2)=0.75, f(3)=0.25, f(1,2)=0.5, f(1,3)=0.25
        alpha = 0.4
        assert count_frequent_patterns(database, alpha) == 3
        assert count_theme_communities_via_gadget(database, alpha) == 3

    @settings(deadline=None, max_examples=25)
    @given(
        transaction_databases(max_items=4, max_transactions=6),
        st.sampled_from([0.0, 0.2, 0.5, 0.8]),
    )
    def test_counts_agree(self, database, alpha):
        """The proof, executed: #theme-communities(gadget) = #FPC(d, α)."""
        assert count_theme_communities_via_gadget(
            database, alpha
        ) == count_frequent_patterns(database, alpha)
