"""Tests for MiningResult and the NP/NV/NE metrics."""

from __future__ import annotations

from repro.core.results import MiningResult
from repro.core.truss import PatternTruss
from repro.graphs.graph import Graph


def _truss(pattern, edges):
    graph = Graph(edges)
    return PatternTruss(
        pattern, graph, {v: 1.0 for v in graph}, alpha=0.0
    )


class TestMiningResult:
    def test_empty(self):
        result = MiningResult(0.0)
        assert result.num_patterns == 0
        assert result.metrics()["NV/NP"] == 0.0

    def test_add_skips_empty_trusses(self):
        result = MiningResult(0.0)
        result.add(PatternTruss((1,), Graph(), {}, 0.0))
        assert len(result) == 0

    def test_metrics_count_multiplicity(self):
        """NV/NE count a vertex/edge once per truss containing it (§7)."""
        result = MiningResult(0.0)
        result.add(_truss((1,), [(0, 1), (1, 2), (0, 2)]))
        result.add(_truss((2,), [(0, 1), (1, 2), (0, 2)]))
        assert result.num_patterns == 2
        assert result.num_vertices == 6  # 3 + 3, overlap double-counted
        assert result.num_edges == 6

    def test_mapping_interface(self):
        result = MiningResult(0.0)
        truss = _truss((3,), [(0, 1), (1, 2), (0, 2)])
        result.add(truss)
        assert result[(3,)] is truss
        assert list(result) == [(3,)]
        assert (3,) in result

    def test_patterns_sorted(self):
        result = MiningResult(0.0)
        result.add(_truss((2,), [(0, 1), (1, 2), (0, 2)]))
        result.add(_truss((1,), [(0, 1), (1, 2), (0, 2)]))
        assert result.patterns() == [(1,), (2,)]
        assert result.patterns_of_length(1) == [(1,), (2,)]
        assert result.max_pattern_length() == 1

    def test_same_trusses_as(self):
        a = MiningResult(0.0)
        b = MiningResult(0.0)
        a.add(_truss((1,), [(0, 1), (1, 2), (0, 2)]))
        b.add(_truss((1,), [(0, 1), (1, 2), (0, 2)]))
        assert a.same_trusses_as(b)
        b.add(_truss((2,), [(0, 1), (1, 2), (0, 2)]))
        assert not a.same_trusses_as(b)
        assert a.is_subset_of(b)
        assert not b.is_subset_of(a)

    def test_metrics_dict(self):
        result = MiningResult(0.0)
        result.add(_truss((1,), [(0, 1), (1, 2), (0, 2)]))
        metrics = result.metrics()
        assert metrics["NP"] == 1
        assert metrics["NV"] == 3
        assert metrics["NE"] == 3
        assert metrics["NV/NP"] == 3.0
