"""Property-based tests of the paper's theorems (Section 5.1, Appendix A).

These are the load-bearing guarantees behind TCFA, TCFI, and the TC-Tree;
each is tested as stated, universally quantified over random small
database networks.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._ordering import make_pattern
from repro.core.mptd import maximal_pattern_truss
from repro.network.theme import induce_theme_network, intersect_graphs
from tests.conftest import database_networks


def _truss_edges(network, pattern, alpha):
    graph, frequencies = induce_theme_network(network, pattern)
    truss, _ = maximal_pattern_truss(graph, frequencies, alpha)
    return set(truss.iter_edges())


def _pattern_pairs(network):
    """(p1, p2) pairs with p1 ⊆ p2 drawn from the network's items."""
    items = network.item_universe()
    pairs = []
    for i, a in enumerate(items):
        pairs.append(((a,), (a,)))
        for b in items[i + 1:]:
            pairs.append(((a,), (a, b)))
            pairs.append(((b,), (a, b)))
    return pairs


class TestTheorem51GraphAntiMonotonicity:
    @settings(deadline=None, max_examples=30)
    @given(database_networks(), st.sampled_from([0.0, 0.2, 0.5]))
    def test_truss_shrinks_as_pattern_grows(self, network, alpha):
        """Theorem 5.1: p1 ⊆ p2 ⇒ C*_{p2}(α) ⊆ C*_{p1}(α)."""
        for p1, p2 in _pattern_pairs(network):
            edges_p2 = _truss_edges(network, p2, alpha)
            if not edges_p2:
                continue
            edges_p1 = _truss_edges(network, p1, alpha)
            assert edges_p2 <= edges_p1


class TestProposition52PatternAntiMonotonicity:
    @settings(deadline=None, max_examples=30)
    @given(database_networks(), st.sampled_from([0.0, 0.3]))
    def test_qualified_implies_subpatterns_qualified(self, network, alpha):
        """Prop 5.2(1): C*_{p2}(α) ≠ ∅ ⇒ C*_{p1}(α) ≠ ∅ for p1 ⊆ p2."""
        for p1, p2 in _pattern_pairs(network):
            if _truss_edges(network, p2, alpha):
                assert _truss_edges(network, p1, alpha)

    @settings(deadline=None, max_examples=30)
    @given(database_networks(), st.sampled_from([0.0, 0.3]))
    def test_unqualified_implies_superpatterns_unqualified(
        self, network, alpha
    ):
        """Prop 5.2(2): C*_{p1}(α) = ∅ ⇒ C*_{p2}(α) = ∅ for p1 ⊆ p2."""
        for p1, p2 in _pattern_pairs(network):
            if not _truss_edges(network, p1, alpha):
                assert not _truss_edges(network, p2, alpha)


class TestProposition53GraphIntersection:
    @settings(deadline=None, max_examples=25)
    @given(database_networks(max_items=3), st.sampled_from([0.0, 0.2]))
    def test_union_truss_inside_parent_intersection(self, network, alpha):
        """Prop 5.3: C*_{p1∪p2}(α) ⊆ C*_{p1}(α) ∩ C*_{p2}(α)."""
        items = network.item_universe()
        for i, a in enumerate(items):
            for b in items[i + 1:]:
                p3 = make_pattern((a, b))
                edges_p3 = _truss_edges(network, p3, alpha)
                if not edges_p3:
                    continue
                edges_a = _truss_edges(network, (a,), alpha)
                edges_b = _truss_edges(network, (b,), alpha)
                assert edges_p3 <= (edges_a & edges_b)

    @settings(deadline=None, max_examples=25)
    @given(database_networks(max_items=3))
    def test_mining_within_intersection_is_exact(self, network):
        """The TCFI shortcut: inducing G_{p3} from the intersection carrier
        gives the same truss as inducing from the whole network."""
        from repro.graphs.graph import Graph
        from repro.network.theme import theme_network_within

        items = network.item_universe()
        alpha = 0.0
        for i, a in enumerate(items):
            for b in items[i + 1:]:
                p3 = make_pattern((a, b))
                direct = _truss_edges(network, p3, alpha)

                graph_a, freq_a = induce_theme_network(network, (a,))
                truss_a, _ = maximal_pattern_truss(graph_a, freq_a, alpha)
                graph_b, freq_b = induce_theme_network(network, (b,))
                truss_b, _ = maximal_pattern_truss(graph_b, freq_b, alpha)
                carrier = intersect_graphs(truss_a, truss_b)

                graph3, freq3 = theme_network_within(network, p3, carrier)
                truss3, _ = maximal_pattern_truss(graph3, freq3, alpha)
                assert set(truss3.iter_edges()) == direct


class TestTheorem61DecompositionThreshold:
    @settings(deadline=None, max_examples=30)
    @given(database_networks())
    def test_truss_constant_until_min_cohesion(self, network):
        """Theorem 6.1: C*_p(α) only shrinks when α crosses the minimum
        edge cohesion β of the current truss; strictly shrinks at β."""
        for item in network.item_universe():
            graph, frequencies = induce_theme_network(network, (item,))
            truss, cohesion = maximal_pattern_truss(graph, frequencies, 0.0)
            if not cohesion:
                continue
            beta = min(cohesion.values())
            # Just below β: unchanged.
            before, _ = maximal_pattern_truss(
                graph, frequencies, max(0.0, beta - 1e-6)
            )
            assert set(before.iter_edges()) == set(truss.iter_edges())
            # At β: strictly smaller.
            after, _ = maximal_pattern_truss(graph, frequencies, beta)
            assert set(after.iter_edges()) < set(truss.iter_edges())
