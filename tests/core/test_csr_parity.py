"""CSR-vs-legacy parity for MPTD and the truss decomposition pipeline.

The CSR engine must produce *identical* results to the adjacency-set
oracle on every input: same surviving edges, same thresholds (up to float
drift far below the MPTD tolerance), same per-level removed sets, same
frequency restriction. These tests drive both engines explicitly via the
``engine`` selector, on top of the implicit coverage the rest of the
suite provides through the auto-routing public API.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.cohesion import (
    _edge_cohesion_table_legacy,
    edge_cohesion_table,
)
from repro.core.mptd import (
    _maximal_pattern_truss_legacy,
    maximal_pattern_truss,
)
from repro.datasets.synthetic import generate_synthetic_network
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import powerlaw_cluster_graph
from repro.index.decomposition import (
    decompose_network_pattern,
    decompose_theme,
)
from repro.network.theme import induce_theme_network
from tests.conftest import alphas, database_networks, graph_with_frequencies


def _assert_decompositions_equal(fast, slow):
    assert len(fast.levels) == len(slow.levels)
    for fast_level, slow_level in zip(fast.levels, slow.levels):
        assert fast_level.alpha == pytest.approx(slow_level.alpha)
        assert set(fast_level.removed_edges) == set(slow_level.removed_edges)
    assert fast.frequencies == slow.frequencies
    assert fast.num_edges == slow.num_edges
    assert fast.max_alpha == pytest.approx(slow.max_alpha)


class TestMPTDParity:
    @settings(deadline=None, max_examples=60)
    @given(graph_with_frequencies(), alphas())
    def test_matches_legacy_on_random_inputs(self, pair, alpha):
        graph, frequencies = pair
        # Explicit CSR input forces the engine even below the small-graph
        # cutover, so the engines are genuinely compared.
        fast_graph, fast_cohesion = maximal_pattern_truss(
            CSRGraph.from_graph(graph), frequencies, alpha
        )
        slow_graph, slow_cohesion = _maximal_pattern_truss_legacy(
            graph, frequencies, alpha
        )
        assert fast_graph == slow_graph
        assert set(fast_cohesion) == set(slow_cohesion)
        for edge, value in fast_cohesion.items():
            assert value == pytest.approx(slow_cohesion[edge])

    def test_matches_legacy_on_dense_graph(self):
        graph = powerlaw_cluster_graph(150, 5, 0.8, seed=9)
        frequencies = {v: ((v * 7) % 10 + 1) / 10.0 for v in graph}
        for alpha in (0.0, 0.3, 1.0, 2.5):
            fast_graph, _ = maximal_pattern_truss(graph, frequencies, alpha)
            slow_graph, _ = _maximal_pattern_truss_legacy(
                graph, frequencies, alpha
            )
            assert fast_graph == slow_graph

    def test_accepts_csr_input(self):
        graph = powerlaw_cluster_graph(60, 3, 0.7, seed=2)
        frequencies = {v: 1.0 for v in graph}
        from_csr, _ = maximal_pattern_truss(
            CSRGraph.from_graph(graph), frequencies, 1.0
        )
        from_graph, _ = maximal_pattern_truss(graph, frequencies, 1.0)
        assert from_csr == from_graph


class TestCohesionTableParity:
    @settings(deadline=None, max_examples=40)
    @given(graph_with_frequencies())
    def test_matches_legacy(self, pair):
        graph, frequencies = pair
        # CSR input forces the engine below the small-graph cutover.
        fast = edge_cohesion_table(CSRGraph.from_graph(graph), frequencies)
        slow = _edge_cohesion_table_legacy(graph, frequencies)
        assert set(fast) == set(slow)
        for edge, value in fast.items():
            assert value == pytest.approx(slow[edge])


class TestDecompositionParity:
    @settings(deadline=None, max_examples=40)
    @given(database_networks())
    def test_engines_agree_on_random_networks(self, network):
        for item in network.item_universe():
            graph, frequencies = induce_theme_network(network, (item,))
            fast = decompose_theme((item,), graph, frequencies, engine="csr")
            slow = decompose_theme(
                (item,), graph, frequencies, engine="legacy"
            )
            _assert_decompositions_equal(fast, slow)

    def test_engines_agree_on_dense_network(self):
        graph = powerlaw_cluster_graph(300, 6, 0.8, seed=21)
        network = generate_synthetic_network(
            num_items=3,
            num_seeds=2,
            mutation_rate=0.2,
            max_transactions=16,
            max_transaction_length=4,
            graph=graph,
            seed=21,
        )
        for item in network.item_universe():
            fast = decompose_network_pattern(network, (item,))
            slow = decompose_network_pattern(
                network, (item,), engine="legacy"
            )
            _assert_decompositions_equal(fast, slow)

    def test_engines_agree_within_carriers(self):
        """The TC-Tree child path: decomposition inside a CSR carrier."""
        graph = powerlaw_cluster_graph(200, 5, 0.8, seed=22)
        network = generate_synthetic_network(
            num_items=3,
            num_seeds=2,
            mutation_rate=0.2,
            max_transactions=12,
            max_transaction_length=4,
            graph=graph,
            seed=22,
        )
        items = network.item_universe()
        carriers = {}
        for item in items:
            decomposition = decompose_network_pattern(
                network, (item,), capture_carrier=True
            )
            carrier = decomposition.frontier_carrier()
            if carrier.num_edges:
                carriers[item] = carrier
        pairs = [
            (a, b) for i, a in enumerate(sorted(carriers))
            for b in sorted(carriers)[i + 1:]
        ]
        assert pairs, "test network must produce intersecting themes"
        from repro.network.theme import intersect_graphs

        for a, b in pairs:
            carrier = intersect_graphs(carriers[a], carriers[b])
            if carrier.num_edges == 0:
                continue
            fast = decompose_network_pattern(
                network, (a, b), carrier=carrier
            )
            slow = decompose_network_pattern(
                network, (a, b), carrier=carrier, engine="legacy"
            )
            _assert_decompositions_equal(fast, slow)

    def test_capture_carrier_matches_truss_at(self):
        graph = powerlaw_cluster_graph(200, 5, 0.8, seed=23)
        network = generate_synthetic_network(
            num_items=2,
            num_seeds=1,
            mutation_rate=0.1,
            max_transactions=8,
            max_transaction_length=3,
            graph=graph,
            seed=23,
        )
        item = network.item_universe()[0]
        decomposition = decompose_network_pattern(
            network, (item,), capture_carrier=True
        )
        carrier = decomposition.frontier_carrier()
        reference = decomposition.truss_at(0.0).graph
        assert set(carrier.iter_edges()) == set(reference.iter_edges())
        # Taking clears the stash; the rebuilt fallback must agree too.
        rebuilt = decomposition.frontier_carrier()
        assert set(rebuilt.iter_edges()) == set(reference.iter_edges())
