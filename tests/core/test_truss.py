"""Tests for the PatternTruss container."""

from __future__ import annotations

from repro.core.truss import PatternTruss
from repro.graphs.graph import Graph


def _truss() -> PatternTruss:
    graph = Graph([(1, 2), (2, 3), (1, 3), (7, 8), (8, 9), (7, 9)])
    frequencies = {v: 0.5 for v in [1, 2, 3, 7, 8, 9]}
    frequencies[99] = 0.9  # not in graph — must be dropped
    return PatternTruss((4,), graph, frequencies, alpha=0.2)


class TestPatternTruss:
    def test_counts(self):
        truss = _truss()
        assert truss.num_vertices == 6
        assert truss.num_edges == 6
        assert not truss.is_empty()

    def test_frequencies_restricted_to_graph(self):
        assert 99 not in _truss().frequencies

    def test_empty(self):
        truss = PatternTruss((1,), Graph(), {}, 0.0)
        assert truss.is_empty()
        assert truss.communities() == []

    def test_communities_are_components(self):
        communities = _truss().communities()
        assert sorted(map(sorted, communities)) == [[1, 2, 3], [7, 8, 9]]

    def test_edges_and_vertices(self):
        truss = _truss()
        assert (1, 2) in truss.edges()
        assert truss.vertices() == {1, 2, 3, 7, 8, 9}

    def test_contains_subgraph(self):
        big = _truss()
        small = PatternTruss(
            (4, 5), Graph([(1, 2), (2, 3)]), {1: 0.5, 2: 0.5, 3: 0.5}, 0.2
        )
        assert big.contains_subgraph(small)
        assert not small.contains_subgraph(big)

    def test_equality_is_pattern_and_graph(self):
        a = _truss()
        b = _truss()
        assert a == b
        c = PatternTruss((5,), a.graph.copy(), a.frequencies, 0.2)
        assert a != c

    def test_repr_mentions_pattern(self):
        assert "(4,)" in repr(_truss())
