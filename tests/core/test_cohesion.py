"""Tests for edge cohesion (Definition 3.1)."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.cohesion import edge_cohesion, edge_cohesion_table
from repro.graphs.graph import Graph
from repro.graphs.triangles import edge_triangle_counts
from tests.conftest import graph_with_frequencies


class TestEdgeCohesion:
    def test_paper_example_3_2(self):
        """Example 3.2: eco_12 = min(f1,f2,f3) + min(f1,f2,f5) = 0.2."""
        graph = Graph([(1, 2), (1, 3), (2, 3), (1, 5), (2, 5), (3, 5),
                       (3, 4), (4, 5)])
        frequencies = {1: 0.1, 2: 0.1, 3: 0.1, 4: 0.1, 5: 0.1}
        assert edge_cohesion(graph, frequencies, 1, 2) == pytest.approx(0.2)

    def test_no_triangles_gives_zero(self):
        graph = Graph([(1, 2), (2, 3)])
        assert edge_cohesion(graph, {1: 1.0, 2: 1.0, 3: 1.0}, 1, 2) == 0.0

    def test_min_over_triple(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        frequencies = {1: 0.9, 2: 0.5, 3: 0.2}
        assert edge_cohesion(graph, frequencies, 1, 2) == pytest.approx(0.2)

    def test_missing_frequency_treated_as_zero(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        assert edge_cohesion(graph, {1: 1.0, 2: 1.0}, 1, 2) == 0.0


class TestCohesionTable:
    def test_covers_all_edges(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        table = edge_cohesion_table(graph, {1: 0.5, 2: 0.5, 3: 0.5})
        assert set(table) == {(1, 2), (1, 3), (2, 3)}
        assert all(v == pytest.approx(0.5) for v in table.values())

    @given(graph_with_frequencies())
    def test_unit_frequencies_recover_triangle_support(self, pair):
        """With f ≡ 1 the cohesion is Cohen's k-truss support (§3.2)."""
        graph, _ = pair
        ones = {v: 1.0 for v in graph}
        table = edge_cohesion_table(graph, ones)
        support = edge_triangle_counts(graph)
        assert set(table) == set(support)
        for edge, value in table.items():
            assert value == pytest.approx(support[edge])

    @given(graph_with_frequencies())
    def test_table_matches_single_edge_queries(self, pair):
        graph, frequencies = pair
        table = edge_cohesion_table(graph, frequencies)
        for (u, v), value in table.items():
            assert value == pytest.approx(
                edge_cohesion(graph, frequencies, u, v)
            )

    @given(graph_with_frequencies())
    def test_cohesion_nonnegative_and_bounded(self, pair):
        """0 <= eco_ij <= (#triangles through the edge) × max f."""
        graph, frequencies = pair
        table = edge_cohesion_table(graph, frequencies)
        support = edge_triangle_counts(graph)
        max_f = max(frequencies.values(), default=0.0)
        for edge, value in table.items():
            assert value >= 0.0
            assert value <= support[edge] * max_f + 1e-9
