"""Tests for MPTD (Algorithm 1).

The key correctness properties:

1. Every surviving edge has cohesion > α *within the result* (the result is
   a pattern truss, Definition 3.3).
2. The result is maximal: re-adding any single removed edge (with its
   incident removed edges' support) cannot create a valid pattern truss —
   verified indirectly through idempotence and through the brute-force
   check that the result is the union of all valid pattern trusses.
3. With unit frequencies and α = k - 3, MPTD returns exactly the k-truss
   (Section 3.2) — cross-checked against networkx.
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given

from repro.core.cohesion import edge_cohesion_table
from repro.core.mptd import maximal_pattern_truss
from repro.errors import MiningError
from repro.graphs.graph import Graph
from tests.conftest import alphas, graph_with_frequencies, small_graphs


class TestBasics:
    def test_triangle_survives_at_low_alpha(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        frequencies = {1: 0.5, 2: 0.5, 3: 0.5}
        truss, cohesion = maximal_pattern_truss(graph, frequencies, 0.4)
        assert truss.num_edges == 3
        assert all(v == pytest.approx(0.5) for v in cohesion.values())

    def test_triangle_dies_at_high_alpha(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        frequencies = {1: 0.5, 2: 0.5, 3: 0.5}
        truss, cohesion = maximal_pattern_truss(graph, frequencies, 0.5)
        assert truss.num_edges == 0
        assert cohesion == {}

    def test_cascade(self):
        """Removing a weak edge can doom previously-strong edges."""
        # Two triangles sharing edge (2,3); vertex 4 has low frequency.
        graph = Graph([(1, 2), (1, 3), (2, 3), (2, 4), (3, 4)])
        frequencies = {1: 1.0, 2: 1.0, 3: 1.0, 4: 0.1}
        truss, _ = maximal_pattern_truss(graph, frequencies, 0.5)
        # Edges (2,4), (3,4) have cohesion 0.1 → removed; edge (2,3) falls
        # from 1.1 to 1.0, still > 0.5; triangle 1-2-3 survives.
        assert set(truss.iter_edges()) == {(1, 2), (1, 3), (2, 3)}

    def test_full_cascade_to_empty(self):
        graph = Graph([(1, 2), (1, 3), (2, 3), (2, 4), (3, 4)])
        frequencies = {1: 0.3, 2: 1.0, 3: 1.0, 4: 0.3}
        # eco(1,2)=0.3, eco(2,3)=0.6, ... at alpha=0.5 the two side
        # triangles each lose their weak edges and everything unravels.
        truss, _ = maximal_pattern_truss(graph, frequencies, 0.5)
        assert truss.num_edges == 0

    def test_input_graph_not_mutated(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        maximal_pattern_truss(graph, {1: 0.1, 2: 0.1, 3: 0.1}, 1.0)
        assert graph.num_edges == 3

    def test_negative_alpha_rejected(self):
        with pytest.raises(MiningError):
            maximal_pattern_truss(Graph(), {}, -0.1)

    def test_disconnected_truss_allowed(self):
        """A maximal pattern truss need not be connected (Section 3.2)."""
        graph = Graph([(1, 2), (2, 3), (1, 3), (7, 8), (8, 9), (7, 9)])
        frequencies = {v: 1.0 for v in range(1, 10)}
        truss, _ = maximal_pattern_truss(graph, frequencies, 0.5)
        assert truss.num_edges == 6


class TestPatternTrussInvariant:
    @given(graph_with_frequencies(), alphas())
    def test_every_surviving_edge_qualified(self, pair, alpha):
        """Definition 3.3: all cohesions in the result exceed α."""
        graph, frequencies = pair
        truss, cohesion = maximal_pattern_truss(graph, frequencies, alpha)
        recomputed = edge_cohesion_table(truss, frequencies)
        for edge, value in recomputed.items():
            assert value > alpha
            assert cohesion[edge] == pytest.approx(value)

    @given(graph_with_frequencies(), alphas())
    def test_idempotent(self, pair, alpha):
        """Running MPTD on its own output changes nothing."""
        graph, frequencies = pair
        truss, _ = maximal_pattern_truss(graph, frequencies, alpha)
        again, _ = maximal_pattern_truss(truss, frequencies, alpha)
        assert again == truss

    @given(graph_with_frequencies(), alphas())
    def test_maximality_via_brute_force(self, pair, alpha):
        """The result contains every edge-subset that is a pattern truss.

        Brute force over single-edge-induced candidates is intractable;
        instead we check the equivalent peeling invariant: every edge
        *outside* the result would have cohesion <= α in (result + that
        edge), so no removed edge can be added back.
        """
        graph, frequencies = pair
        truss, _ = maximal_pattern_truss(graph, frequencies, alpha)
        removed = set(graph.iter_edges()) - set(truss.iter_edges())
        for u, v in removed:
            candidate = truss.copy()
            candidate.add_edge(u, v)
            table = edge_cohesion_table(candidate, frequencies)
            assert table[(u, v) if u <= v else (v, u)] <= alpha + 1e-9

    @given(graph_with_frequencies())
    def test_monotone_in_alpha(self, pair):
        """Larger α gives a (weakly) smaller truss."""
        graph, frequencies = pair
        previous_edges = None
        for alpha in (0.0, 0.2, 0.5, 1.0):
            truss, _ = maximal_pattern_truss(graph, frequencies, alpha)
            edges = set(truss.iter_edges())
            if previous_edges is not None:
                assert edges <= previous_edges
            previous_edges = edges


class TestCoreContainment:
    @given(small_graphs())
    def test_connected_truss_inside_k_minus_1_core(self, graph):
        """Section 3.2: a connected maximal pattern truss with unit
        frequencies and α = k - 3 is also a (k-1)-core member set."""
        from repro.graphs.kcore import core_numbers

        ones = {v: 1.0 for v in graph}
        for k in (3, 4):
            truss, _ = maximal_pattern_truss(graph, ones, k - 3)
            if truss.num_edges == 0:
                continue
            cores = core_numbers(truss)
            for v in truss:
                if truss.degree(v) > 0:
                    assert cores[v] >= k - 1


class TestKTrussEquivalence:
    @given(small_graphs())
    def test_unit_frequencies_alpha_k_minus_3(self, graph):
        """Pattern truss with f ≡ 1 and α = k - 3 is the k-truss (§3.2)."""
        ones = {v: 1.0 for v in graph}
        g = nx.Graph()
        g.add_nodes_from(graph.vertices())
        g.add_edges_from(graph.edges())
        for k in (3, 4, 5):
            # strict "> k - 3" on integer support ⇔ "support >= k - 2"
            truss, _ = maximal_pattern_truss(graph, ones, k - 3)
            expected = nx.k_truss(g, k)
            assert set(truss.iter_edges()) == {
                tuple(sorted(e)) for e in expected.edges
            }
