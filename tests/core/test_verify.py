"""Tests for the independent result verifier."""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.tcfi import tcfi
from repro.core.truss import PatternTruss
from repro.core.verify import verify_mining_result, verify_pattern_truss
from repro.graphs.graph import Graph
from tests.conftest import database_networks


class TestVerifyPatternTruss:
    def test_genuine_trusses_pass(self, toy_network):
        result = tcfi(toy_network, 0.1)
        for truss in result.values():
            assert verify_pattern_truss(toy_network, truss, 0.1) == []

    def test_detects_fabricated_edge(self, toy_network):
        result = tcfi(toy_network, 0.1)
        truss = result[(0,)]
        tampered_graph = truss.graph.copy()
        # Vertex ids 5 (=7) and 8 (=6): an edge of the base graph that is
        # not in the p-truss.
        tampered_graph.add_edge(4, 8)
        tampered = PatternTruss((0,), tampered_graph, truss.frequencies, 0.1)
        violations = verify_pattern_truss(toy_network, tampered, 0.1)
        assert violations

    def test_detects_missing_edges(self, toy_network):
        """A strict subset of the maximal truss is not maximal."""
        result = tcfi(toy_network, 0.1)
        truss = result[(0,)]
        shrunk_graph = truss.graph.copy()
        edge = next(iter(shrunk_graph.iter_edges()))
        shrunk_graph.remove_edge(*edge)
        shrunk_graph.discard_isolated_vertices()
        shrunk = PatternTruss((0,), shrunk_graph, truss.frequencies, 0.1)
        violations = verify_pattern_truss(toy_network, shrunk, 0.1)
        assert any("maximal" in v or "cohesion" in v for v in violations)

    def test_detects_wrong_frequencies(self, toy_network):
        result = tcfi(toy_network, 0.1)
        truss = result[(0,)]
        wrong = PatternTruss(
            (0,),
            truss.graph.copy(),
            {v: 0.99 for v in truss.graph},
            0.1,
        )
        violations = verify_pattern_truss(toy_network, wrong, 0.1)
        assert any("frequency" in v for v in violations)

    def test_detects_zero_frequency_vertex(self, toy_network):
        graph = Graph([(0, 1), (1, 8), (0, 8)])  # vertex 8 = label 6, f(p)=0
        fake = PatternTruss((0,), graph, {}, 0.0)
        violations = verify_pattern_truss(toy_network, fake, 0.0)
        assert any("zero frequency" in v for v in violations)


class TestVerifyMiningResult:
    def test_exact_result_passes_with_completeness(self, toy_network):
        result = tcfi(toy_network, 0.1)
        assert verify_mining_result(
            toy_network, result, check_completeness=True,
            max_pattern_length=2,
        ) == []

    def test_detects_dropped_pattern(self, toy_network):
        from repro.core.results import MiningResult

        full = tcfi(toy_network, 0.1)
        partial = MiningResult(0.1)
        partial.add(full[(0,)])  # drop theme q
        violations = verify_mining_result(
            toy_network, partial, check_completeness=True,
            max_pattern_length=1,
        )
        assert any("missing qualified pattern (1,)" in v for v in violations)

    @settings(deadline=None, max_examples=15)
    @given(database_networks(max_items=3))
    def test_tcfi_always_verifies(self, network):
        """The exact miner's output passes full verification (including
        completeness) on random networks."""
        result = tcfi(network, 0.0)
        assert verify_mining_result(
            network, result, check_completeness=True,
            max_pattern_length=3,
        ) == []
