"""Tests for the three mining algorithms (TCS, TCFA, TCFI).

Exactness contract (Section 7.1): TCFA and TCFI always produce identical
results; TCS with ε = 0 matches them; TCS with ε > 0 produces a subset.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tcfa import tcfa
from repro.core.tcfi import tcfi
from repro.core.tcs import collect_candidate_patterns, tcs
from repro.errors import MiningError
from tests.conftest import database_networks


class TestToyGroundTruth:
    """The toy network's trusses are known exactly (see datasets/toy.py)."""

    def test_patterns_found(self, toy_network):
        result = tcfi(toy_network, 0.0)
        assert result.patterns() == [(0,), (1,)]

    def test_p_truss_below_03(self, toy_network):
        result = tcfi(toy_network, 0.2)
        assert (0,) in result
        truss = result[(0,)]
        assert truss.num_edges == 13  # K5 (10) + triangle (3)
        communities = sorted(map(sorted, truss.communities()))
        assert len(communities) == 2

    def test_p_truss_gone_at_03(self, toy_network):
        result = tcfi(toy_network, 0.3)
        assert (0,) not in result
        assert (1,) in result  # q still alive until 0.6

    def test_q_truss_shrinks_at_04(self, toy_network):
        full = tcfi(toy_network, 0.35)[(1,)]
        shrunk = tcfi(toy_network, 0.45)[(1,)]
        assert full.num_edges == 8
        assert shrunk.num_edges == 5
        assert shrunk.vertices() < full.vertices()

    def test_everything_gone_at_06(self, toy_network):
        assert len(tcfi(toy_network, 0.6)) == 0

    def test_no_length2_pattern(self, toy_network):
        """p and q never co-occur in a transaction, so no pattern of
        length 2 forms a truss."""
        result = tcfi(toy_network, 0.0)
        assert result.max_pattern_length() == 1


class TestTCS:
    def test_epsilon_zero_is_exact(self, toy_network):
        exact = tcfi(toy_network, 0.1)
        baseline = tcs(toy_network, 0.1, epsilon=0.0)
        assert baseline.same_trusses_as(exact)

    def test_high_epsilon_loses_low_frequency_trusses(self, toy_network):
        """ε = 0.2 pre-filters item p (max frequency 0.3 > 0.2 on v7-v9,
        so p survives) but ε = 0.3 drops it."""
        result = tcs(toy_network, 0.1, epsilon=0.3)
        assert (0,) not in result  # lost: max f(p) = 0.3, not > 0.3
        assert (1,) in result

    def test_candidate_collection(self, toy_network):
        candidates = collect_candidate_patterns(toy_network, 0.3)
        assert (1,) in candidates
        assert (0,) not in candidates

    def test_subset_of_exact(self, toy_network):
        exact = tcfi(toy_network, 0.0)
        for epsilon in (0.1, 0.2, 0.3):
            approx = tcs(toy_network, 0.0, epsilon=epsilon)
            assert approx.is_subset_of(exact)

    def test_negative_alpha_rejected(self, toy_network):
        with pytest.raises(MiningError):
            tcs(toy_network, -1.0)


class TestExactnessProperties:
    @settings(deadline=None, max_examples=30)
    @given(database_networks(), st.sampled_from([0.0, 0.2, 0.5]))
    def test_tcfa_equals_tcfi(self, network, alpha):
        """The intersection pruning must not change the result."""
        a = tcfa(network, alpha)
        b = tcfi(network, alpha)
        assert a.same_trusses_as(b)

    @settings(deadline=None, max_examples=20)
    @given(database_networks(max_vertices=5, max_items=3))
    def test_tcs_epsilon_zero_equals_tcfi(self, network):
        exact = tcfi(network, 0.0)
        baseline = tcs(network, 0.0, epsilon=0.0)
        assert baseline.same_trusses_as(exact)

    @settings(deadline=None, max_examples=20)
    @given(database_networks(), st.sampled_from([0.1, 0.3]))
    def test_tcs_subset_of_exact(self, network, epsilon):
        exact = tcfi(network, 0.0)
        approx = tcs(network, 0.0, epsilon=epsilon)
        assert approx.is_subset_of(exact)

    @settings(deadline=None, max_examples=20)
    @given(database_networks())
    def test_max_length_prefix_exact(self, network):
        """Capping the pattern length keeps all shorter patterns exact."""
        full = tcfi(network, 0.0)
        capped = tcfi(network, 0.0, max_length=1)
        for pattern in capped:
            assert capped[pattern].edges() == full[pattern].edges()
        assert set(capped) == {
            p for p in full if len(p) <= 1
        }

    def test_workers_do_not_change_result(self, toy_network):
        sequential = tcfi(toy_network, 0.0, workers=1)
        parallel = tcfi(toy_network, 0.0, workers=4)
        assert sequential.same_trusses_as(parallel)

    def test_tcfa_negative_alpha_rejected(self, toy_network):
        with pytest.raises(MiningError):
            tcfa(toy_network, -0.5)
        with pytest.raises(MiningError):
            tcfi(toy_network, -0.5)
