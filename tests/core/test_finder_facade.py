"""Tests for the ThemeCommunityFinder facade."""

from __future__ import annotations

import pytest

from repro.core.finder import ThemeCommunityFinder
from repro.core.tcfi import tcfi
from repro.errors import MiningError


class TestFind:
    def test_default_is_tcfi(self, toy_network):
        finder = ThemeCommunityFinder(toy_network)
        assert finder.find(0.1).same_trusses_as(tcfi(toy_network, 0.1))

    def test_method_selection(self, toy_network):
        finder = ThemeCommunityFinder(toy_network)
        exact = finder.find(0.1, method="tcfa")
        assert exact.same_trusses_as(finder.find(0.1, method="tcfi"))
        approx = finder.find(0.1, method="tcs", epsilon=0.3)
        assert approx.is_subset_of(exact)

    def test_unknown_method(self, toy_network):
        with pytest.raises(MiningError):
            ThemeCommunityFinder(toy_network).find(0.0, method="magic")


class TestFindCommunities:
    def test_min_size_filter(self, toy_network):
        finder = ThemeCommunityFinder(toy_network)
        all_communities = finder.find_communities(0.1, min_size=3)
        large_only = finder.find_communities(0.1, min_size=5)
        assert len(large_only) < len(all_communities)
        assert all(c.size >= 5 for c in large_only)

    def test_sorted_largest_first(self, toy_network):
        communities = ThemeCommunityFinder(toy_network).find_communities(0.1)
        sizes = [c.size for c in communities]
        assert sizes == sorted(sizes, reverse=True)

    def test_empty_at_high_alpha(self, toy_network):
        assert ThemeCommunityFinder(toy_network).find_communities(5.0) == []
