"""Tests for theme-community extraction."""

from __future__ import annotations

from repro.core.communities import (
    ThemeCommunity,
    communities_of_truss,
    extract_theme_communities,
)
from repro.core.results import MiningResult
from repro.core.tcfi import tcfi
from repro.core.truss import PatternTruss
from repro.graphs.graph import Graph


def _two_component_truss() -> PatternTruss:
    graph = Graph([(1, 2), (2, 3), (1, 3), (7, 8), (8, 9), (7, 9)])
    return PatternTruss(
        (5,), graph, {v: 0.4 for v in graph}, alpha=0.1
    )


class TestCommunitiesOfTruss:
    def test_one_per_component(self):
        communities = communities_of_truss(_two_component_truss())
        assert len(communities) == 2
        members = sorted(sorted(c.members) for c in communities)
        assert members == [[1, 2, 3], [7, 8, 9]]

    def test_carries_pattern_alpha_frequencies(self):
        community = communities_of_truss(_two_component_truss())[0]
        assert community.pattern == (5,)
        assert community.alpha == 0.1
        assert all(f == 0.4 for f in community.frequencies.values())
        assert set(community.frequencies) == set(community.members)


class TestThemeCommunity:
    def test_size_and_overlap(self):
        a = ThemeCommunity((1,), frozenset({1, 2, 3}), 0.0)
        b = ThemeCommunity((2,), frozenset({2, 3, 4}), 0.0)
        assert a.size == 3
        assert a.overlap(b) == 2

    def test_labels(self, toy_network):
        communities = extract_theme_communities(tcfi(toy_network, 0.1))
        q_community = next(
            c for c in communities if c.theme_labels(toy_network) == ("q",)
        )
        assert len(q_community.member_labels(toy_network)) == 6


class TestExtractThemeCommunities:
    def test_from_mining_result(self, toy_network):
        result = tcfi(toy_network, 0.1)
        communities = extract_theme_communities(result)
        # p gives two communities, q gives one.
        assert len(communities) == 3

    def test_largest_first(self, toy_network):
        communities = extract_theme_communities(tcfi(toy_network, 0.1))
        sizes = [c.size for c in communities]
        assert sizes == sorted(sizes, reverse=True)

    def test_from_iterable_of_trusses(self):
        communities = extract_theme_communities([_two_component_truss()])
        assert len(communities) == 2

    def test_overlapping_communities_allowed(self, toy_network):
        """The paper's key output property: communities with different
        themes may overlap arbitrarily (Section 7.4)."""
        communities = extract_theme_communities(tcfi(toy_network, 0.1))
        p_first = next(c for c in communities if c.pattern == (0,))
        q = next(c for c in communities if c.pattern == (1,))
        assert q.overlap(p_first) > 0

    def test_empty_result(self):
        assert extract_theme_communities(MiningResult(0.0)) == []
