"""Tests for Apriori candidate generation over qualified patterns."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro._ordering import is_subpattern, make_pattern
from repro.core.candidates import generate_candidates


class TestGenerateCandidates:
    def test_singletons_join(self):
        candidates = generate_candidates([(1,), (2,), (3,)])
        patterns = [c.pattern for c in candidates]
        assert patterns == [(1, 2), (1, 3), (2, 3)]

    def test_parent_pair_reported(self):
        [candidate] = generate_candidates([(1,), (2,)])
        assert candidate.pattern == (1, 2)
        assert {candidate.left_parent, candidate.right_parent} == {
            (1,), (2,)
        }

    def test_prune_unqualified_subpattern(self):
        # (1,2,3) would need (2,3) qualified.
        assert generate_candidates([(1, 2), (1, 3)]) == []

    def test_complete_level_joins(self):
        candidates = generate_candidates([(1, 2), (1, 3), (2, 3)])
        assert [c.pattern for c in candidates] == [(1, 2, 3)]

    def test_empty(self):
        assert generate_candidates([]) == []

    @given(
        st.sets(st.integers(min_value=0, max_value=6), min_size=1, max_size=5)
    )
    def test_full_powerset_level(self, items):
        """If every length-k subset is qualified, candidates are exactly
        the length-(k+1) subsets."""
        from itertools import combinations

        universe = sorted(items)
        for k in range(1, len(universe)):
            level = [make_pattern(c) for c in combinations(universe, k)]
            candidates = generate_candidates(level)
            expected = {
                make_pattern(c) for c in combinations(universe, k + 1)
            }
            assert {c.pattern for c in candidates} == expected

    @given(
        st.lists(
            st.sets(st.integers(min_value=0, max_value=5), min_size=2,
                    max_size=2),
            max_size=8,
            unique_by=frozenset,
        )
    )
    def test_parents_are_subpatterns(self, pairs):
        level = sorted(make_pattern(p) for p in pairs)
        for candidate in generate_candidates(level):
            assert is_subpattern(candidate.left_parent, candidate.pattern)
            assert is_subpattern(candidate.right_parent, candidate.pattern)
            assert len(candidate.pattern) == 3
