"""Tests for the metrics core: buckets, quantiles, snapshots, exposition.

The histogram tests pin the bucket math (inclusive ``le`` boundaries,
interpolated quantiles, overflow saturation); the snapshot tests pin the
delta/merge algebra the process-parallel build's worker return channel
depends on; the exposition tests are golden — byte-for-byte format 0.0.4.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    format_sample,
    log_buckets,
    use_registry,
)


class TestLogBuckets:
    def test_default_span_covers_micro_to_minute(self):
        bounds = log_buckets()
        assert bounds == DEFAULT_LATENCY_BUCKETS
        assert bounds[0] == pytest.approx(1e-6)
        assert bounds[-1] > 60.0
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        assert all(r == pytest.approx(2.0) for r in ratios)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start": 0.0},
            {"start": -1.0},
            {"factor": 1.0},
            {"factor": 0.5},
            {"count": 0},
        ],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(ObservabilityError):
            log_buckets(**kwargs)


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            Counter().inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.dec(4)
        gauge.inc()
        assert gauge.value == pytest.approx(7.0)


class TestHistogram:
    def test_boundary_is_inclusive_le(self):
        """An observation equal to a bound lands in that bucket, matching
        Prometheus ``le`` semantics."""
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        histogram.observe(2.0)
        counts, total, count = histogram.state()
        assert counts == (0, 1, 0, 0)
        assert total == pytest.approx(2.0)
        assert count == 1

    def test_overflow_lands_in_inf_bucket(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(100.0)
        assert histogram.state()[0] == (0, 0, 1)
        # The histogram cannot see past its top bound.
        assert histogram.quantile(0.99) == pytest.approx(2.0)

    def test_bounds_must_be_ascending(self):
        with pytest.raises(ObservabilityError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ObservabilityError):
            Histogram(bounds=())

    def test_quantile_interpolates_within_bucket(self):
        """100 observations spread evenly in (1, 2]: the interpolated
        median must sit near the true one, far inside the bucket."""
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        for i in range(100):
            histogram.observe(1.0 + (i + 1) / 100.0)
        median = histogram.quantile(0.5)
        assert 1.0 < median < 2.0
        assert median == pytest.approx(1.5, abs=0.01)

    def test_quantile_accuracy_within_one_bucket(self):
        """With the default ×2 buckets every quantile of a known sample
        is within a factor of two of the exact order statistic."""
        histogram = Histogram()
        values = [0.001 * (i + 1) for i in range(1000)]  # 1ms .. 1s
        for value in values:
            histogram.observe(value)
        for q in (0.5, 0.9, 0.95, 0.99):
            exact = values[int(q * len(values)) - 1]
            got = histogram.quantile(q)
            assert exact / 2 <= got <= exact * 2, (q, exact, got)

    def test_quantile_bounds_checked(self):
        with pytest.raises(ObservabilityError):
            Histogram().quantile(1.5)

    def test_percentiles_empty_is_zero(self):
        assert Histogram().percentiles() == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_percentiles_are_monotone(self):
        histogram = Histogram()
        for i in range(200):
            histogram.observe(0.0001 * 2 ** (i % 12))
        p = histogram.percentiles()
        assert p["p50"] <= p["p95"] <= p["p99"]


class TestConcurrency:
    def test_concurrent_increments_are_exact(self):
        """8 threads hammering one counter/histogram lose no updates."""
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        histogram = registry.histogram("h_seconds")
        barrier = threading.Barrier(8)

        def worker() -> None:
            barrier.wait()
            for i in range(1000):
                counter.inc()
                histogram.observe(1e-5 * (i % 7 + 1))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert counter.value == 8000
        assert histogram.count == 8000

    def test_concurrent_get_or_create_shares_children(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(8)

        def worker() -> None:
            barrier.wait()
            for _ in range(200):
                registry.counter("shared_total", route="csr").inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert registry.counter("shared_total", route="csr").value == 1600


class TestRegistry:
    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ObservabilityError):
            registry.gauge("x_total")
        with pytest.raises(ObservabilityError):
            registry.histogram("x_total")

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", "9lives", "has space", "dash-ed"):
            with pytest.raises(ObservabilityError):
                registry.counter(bad)

    def test_labels_fan_out_families(self):
        registry = MetricsRegistry()
        registry.counter("routes_total", route="csr").inc(3)
        registry.counter("routes_total", route="legacy").inc()
        assert registry.families() == {"routes_total": "counter"}
        values = registry.counters("routes_total")
        assert values[(("route", "csr"),)] == 3
        assert values[(("route", "legacy"),)] == 1

    def test_use_registry_scopes_the_default(self):
        outer = default_registry()
        with use_registry() as registry:
            assert default_registry() is registry
            assert registry is not outer
        assert default_registry() is outer


class TestSnapshot:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("c_total", help="a counter", route="x").inc(5)
        registry.gauge("g").set(2)
        h = registry.histogram("h_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(10.0)
        return registry

    def test_snapshot_pickle_round_trip(self):
        snap = self._populated().snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone.counters == snap.counters
        assert clone.gauges == snap.gauges
        assert clone.histograms == snap.histograms

    def test_delta_subtracts_counters_and_histograms(self):
        registry = self._populated()
        before = registry.snapshot()
        registry.counter("c_total", route="x").inc(2)
        registry.histogram("h_seconds").observe(0.5)
        registry.gauge("g").set(99)
        delta = registry.snapshot().delta(before)
        assert delta.counter_value("c_total", route="x") == 2
        _bounds, counts, _total, count = delta.histograms[
            ("h_seconds", ())
        ]
        assert count == 1
        assert counts == (0, 1, 0)
        # Gauges carry level, not flow: excluded from deltas.
        assert delta.gauges == {}

    def test_delta_drops_unchanged_series(self):
        registry = self._populated()
        snap = registry.snapshot()
        assert snap.delta(snap).counters == {}
        assert snap.delta(snap).histograms == {}

    def test_merge_reconstructs_totals(self):
        """snapshot → delta → merge into a fresh registry reproduces the
        worker return channel: totals must match exactly."""
        registry = self._populated()
        before = registry.snapshot()
        registry.counter("c_total", route="x").inc(7)
        registry.histogram("h_seconds").observe(0.2)
        delta = registry.snapshot().delta(before)

        target = MetricsRegistry()
        target.merge(delta)
        target.merge(delta)  # two workers reporting the same delta
        assert target.counter("c_total", route="x").value == 14
        merged = target.histogram("h_seconds", buckets=(0.1, 1.0))
        assert merged.count == 2
        assert merged.sum == pytest.approx(0.4)

    def test_merge_none_is_noop(self):
        registry = MetricsRegistry()
        registry.merge(None)
        assert registry.families() == {}

    def test_merge_rejects_bound_mismatch(self):
        source = MetricsRegistry()
        source.histogram("h_seconds", buckets=(0.5, 5.0)).observe(1.0)
        target = MetricsRegistry()
        target.histogram("h_seconds", buckets=(0.1, 1.0))
        with pytest.raises(ObservabilityError):
            target.merge(source.snapshot())

    def test_counter_total_sums_labels(self):
        registry = MetricsRegistry()
        registry.counter("r_total", route="a").inc(2)
        registry.counter("r_total", route="b").inc(3)
        assert registry.snapshot().counter_total("r_total") == 5

    def test_as_flat_dict_uses_sample_names(self):
        flat = self._populated().snapshot().as_flat_dict()
        assert flat['c_total{route="x"}'] == 5
        assert flat["h_seconds_count"] == 3
        assert flat["h_seconds_sum"] == pytest.approx(10.55)


class TestExposition:
    def test_golden_render(self):
        """Byte-for-byte text exposition format 0.0.4."""
        registry = MetricsRegistry()
        registry.counter(
            "reqs_total", help="Requests served.", method="GET"
        ).inc(3)
        registry.gauge("inflight").set(1)
        h = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(10.0)
        assert registry.render() == (
            "# TYPE inflight gauge\n"
            "inflight 1\n"
            "# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="0.1"} 1\n'
            'lat_seconds_bucket{le="1"} 2\n'
            'lat_seconds_bucket{le="+Inf"} 3\n'
            "lat_seconds_sum 10.55\n"
            "lat_seconds_count 3\n"
            "# HELP reqs_total Requests served.\n"
            "# TYPE reqs_total counter\n"
            'reqs_total{method="GET"} 3\n'
        )

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""

    def test_label_values_are_escaped(self):
        line = format_sample("m", {"path": 'a"b\\c\nd'}, 1)
        assert line == 'm{path="a\\"b\\\\c\\nd"} 1'

    def test_inf_bucket_and_integer_collapse(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(2.0,)).observe(1.0)
        text = registry.render()
        assert 'h_bucket{le="2"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_sum 1\n" in text
        assert "h_count 1\n" in text

    def test_counter_cumulative_buckets(self):
        registry = MetricsRegistry()
        h = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 3.5):
            h.observe(value)
        text = registry.render()
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="2"} 2' in text
        assert 'h_bucket{le="4"} 4' in text
        assert 'h_bucket{le="+Inf"} 4' in text
