"""Cross-backend metrics parity: serial == thread == process totals.

The route counter (``repro_engine_route_total``) counts one increment per
decomposition, wherever it ran. The serial build is the oracle; the
thread backend shares its registry in-process, and the process backend
ships worker-side deltas over the return channel and merges them into
the orchestrator's registry. If the merge plumbing dropped or
double-counted a chunk, these totals diverge.

Totals are compared summed over labels: the *route taken* legitimately
differs between backends (workers receive carrier-projected graphs the
serial build derives in place), but the *number of decompositions* must
not. Triangle-index counters are excluded for the same reason — workers
re-derive triangle indexes after chunk caches are released.
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import generate_synthetic_network
from repro.engine.registry import ROUTE_COUNTER, observed_routes
from repro.index.tctree import build_tc_tree
from repro.obs.metrics import use_registry


@pytest.fixture(scope="module")
def syn_network():
    """A synthetic network big enough to exercise both worker phases."""
    return generate_synthetic_network(
        num_items=6,
        num_seeds=2,
        mutation_rate=0.4,
        max_transactions=12,
        max_transaction_length=4,
        seed=3,
    )


def _route_total(network, *, backend: str, workers: int):
    with use_registry() as registry:
        tree = build_tc_tree(network, workers=workers, backend=backend)
        total = registry.snapshot().counter_total(ROUTE_COUNTER)
    return total, tree


class TestRouteTotalParity:
    def test_serial_thread_process_totals_match(self, syn_network):
        serial_total, serial_tree = _route_total(
            syn_network, backend="serial", workers=1
        )
        thread_total, thread_tree = _route_total(
            syn_network, backend="thread", workers=2
        )
        process_total, process_tree = _route_total(
            syn_network, backend="process", workers=2
        )
        assert serial_total > 0
        assert thread_total == serial_total
        assert process_total == serial_total
        # Sanity: the trees the counters describe are the same tree.
        assert thread_tree.patterns() == serial_tree.patterns()
        assert process_tree.patterns() == serial_tree.patterns()

    def test_worker_deltas_actually_merge(self, syn_network):
        """On the process backend nearly all decompositions happen in
        workers; a broken return channel would leave the orchestrator's
        registry near-empty rather than merely off by a little."""
        with use_registry() as registry:
            build_tc_tree(syn_network, workers=2, backend="process")
            snap = registry.snapshot()
            per_route = observed_routes("vertex")
        total = snap.counter_total(ROUTE_COUNTER)
        assert sum(per_route.values()) == total
        assert total >= 2  # layer 1 alone has several items

    def test_registry_isolation_between_builds(self, syn_network):
        """use_registry scoping: a second build starts from zero."""
        first, _ = _route_total(syn_network, backend="serial", workers=1)
        second, _ = _route_total(syn_network, backend="serial", workers=1)
        assert first == second
