"""Tests for the span tracer: no-op path, nesting, exporters, build spans."""

from __future__ import annotations

import json
import threading

from repro.obs.trace import (
    Span,
    Tracer,
    current_tracer,
    span,
    trace,
    tracing,
)


class TestDisabledPath:
    def test_span_returns_shared_noop_singleton(self):
        """Disabled tracing must not allocate: every call hands back the
        one module-level no-op object."""
        assert current_tracer() is None
        first = span("anything", attr=1)
        second = trace("else")
        assert first is second
        assert not first.active

    def test_noop_span_is_inert(self):
        with span("phase") as sp:
            sp.set_attr("key", "value")  # swallowed, no tracer installed
        assert current_tracer() is None


class TestNesting:
    def test_spans_nest_into_a_tree(self):
        with tracing() as tracer:
            with span("outer", n=1) as outer:
                assert outer.active
                with span("inner"):
                    pass
                with span("inner2") as inner2:
                    inner2.set_attr("result", 42)
        assert [root.name for root in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == [
            "inner", "inner2",
        ]
        assert outer.attrs == {"n": 1}
        assert outer.children[1].attrs == {"result": 42}
        assert outer.duration >= outer.children[0].duration

    def test_walk_is_preorder(self):
        with tracing() as tracer:
            with span("a"):
                with span("b"):
                    with span("c"):
                        pass
                with span("d"):
                    pass
        names = [s.name for s in tracer.roots[0].walk()]
        assert names == ["a", "b", "c", "d"]

    def test_activations_stack(self):
        outer_tracer = Tracer()
        inner_tracer = Tracer()
        with tracing(outer_tracer):
            assert current_tracer() is outer_tracer
            with tracing(inner_tracer):
                assert current_tracer() is inner_tracer
                with span("deep"):
                    pass
            assert current_tracer() is outer_tracer
        assert current_tracer() is None
        assert [r.name for r in inner_tracer.roots] == ["deep"]
        assert outer_tracer.roots == []

    def test_threads_get_independent_stacks(self):
        """Concurrent root spans from different threads must not nest
        under each other."""
        with tracing() as tracer:
            barrier = threading.Barrier(4)

            def worker(i: int) -> None:
                barrier.wait()
                with span(f"t{i}"):
                    with span(f"t{i}.child"):
                        pass

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert sorted(r.name for r in tracer.roots) == [
            "t0", "t1", "t2", "t3",
        ]
        for root in tracer.roots:
            assert [c.name for c in root.children] == [f"{root.name}.child"]


class TestExporters:
    def _tracer(self) -> Tracer:
        with tracing() as tracer:
            with span("build", backend="serial"):
                with span("layer1", items=3):
                    pass
        return tracer

    def test_to_json_schema(self):
        doc = self._tracer().to_json()
        assert doc["schema"] == "repro-trace/v1"
        (root,) = doc["spans"]
        assert root["name"] == "build"
        assert root["attrs"] == {"backend": "serial"}
        (child,) = root["children"]
        assert child["name"] == "layer1"
        assert child["duration"] >= 0.0

    def test_to_chrome_events(self):
        doc = self._tracer().to_chrome()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["build", "layer1"]
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        assert events[0]["args"] == {"backend": "serial"}

    def test_write_round_trips_both_formats(self, tmp_path):
        tracer = self._tracer()
        chrome_path = tmp_path / "trace.chrome.json"
        json_path = tmp_path / "trace.json"
        tracer.write(str(chrome_path), fmt="chrome")
        tracer.write(str(json_path), fmt="json")
        chrome = json.loads(chrome_path.read_text())
        assert {e["name"] for e in chrome["traceEvents"]} == {
            "build", "layer1",
        }
        plain = json.loads(json_path.read_text())
        assert plain["schema"] == "repro-trace/v1"

    def test_span_as_dict_omits_empty_fields(self):
        bare = Span("solo", {}, tid=1)
        bare.close()
        assert set(bare.as_dict()) == {"name", "start", "duration"}


class TestBuildIntegration:
    def test_build_tc_tree_records_phase_spans(self, toy_network):
        from repro.index.tctree import build_tc_tree

        tracer = Tracer()
        tree = build_tc_tree(toy_network, backend="serial", trace=tracer)
        assert tree.num_nodes > 1
        (root,) = tracer.roots
        assert root.name == "build.tc_tree"
        assert root.attrs["backend"] == "serial"
        assert root.attrs["nodes"] == tree.num_nodes
        names = {s.name for s in root.walk()}
        assert {"build.warm_triangles", "build.layer1",
                "build.frontier"} <= names
        # Disabled again after the build: the switchboard was restored.
        assert current_tracer() is None

    def test_build_without_trace_leaves_tracing_off(self, toy_network):
        from repro.index.tctree import build_tc_tree

        build_tc_tree(toy_network, backend="serial")
        assert current_tracer() is None

    def test_cli_index_trace_writes_chrome_json(self, tmp_path, capsys):
        from repro.cli import main

        network_file = tmp_path / "net.json"
        assert main(
            ["generate", "--dataset", "BK", "--scale", "tiny",
             "--out", str(network_file)]
        ) == 0
        trace_file = tmp_path / "build.trace.json"
        assert main(
            ["index", str(network_file), "--out",
             str(tmp_path / "net.tcsnap"), "--format", "snapshot",
             "--max-length", "2", "--trace", str(trace_file)]
        ) == 0
        assert "wrote build trace" in capsys.readouterr().out
        doc = json.loads(trace_file.read_text())
        names = {event["name"] for event in doc["traceEvents"]}
        assert "build.layer1" in names
        assert "snapshot.write" in names
