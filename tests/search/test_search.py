"""Tests for vertex-centred community search and top-k queries."""

from __future__ import annotations

import pytest

from repro.core.tcfi import tcfi
from repro.errors import MiningError
from repro.index.tctree import build_tc_tree
from repro.search.topk import top_k_communities
from repro.search.vertex import (
    communities_containing_vertex,
    strongest_themes_of_vertex,
)


def _vertex_by_label(network, label):
    return next(
        v for v, lbl in network.vertex_labels.items() if lbl == label
    )


class TestCommunitiesContainingVertex:
    def test_from_mining_result(self, toy_network):
        result = tcfi(toy_network, 0.1)
        v2 = _vertex_by_label(toy_network, 2)  # in both a p- and q-community
        found = communities_containing_vertex(result, v2)
        assert {c.pattern for c in found} == {(0,), (1,)}

    def test_from_tree_with_alpha(self, toy_network):
        tree = build_tc_tree(toy_network)
        v2 = _vertex_by_label(toy_network, 2)
        at_zero = communities_containing_vertex(tree, v2, alpha=0.0)
        assert {c.pattern for c in at_zero} == {(0,), (1,)}
        # At alpha = 0.45 the q-community shrinks to {5,6,7,9}; v2 leaves.
        at_045 = communities_containing_vertex(tree, v2, alpha=0.45)
        assert at_045 == []

    def test_pattern_restriction(self, toy_network):
        tree = build_tc_tree(toy_network)
        v2 = _vertex_by_label(toy_network, 2)
        only_p = communities_containing_vertex(tree, v2, pattern=(0,))
        assert {c.pattern for c in only_p} == {(0,)}

    def test_pattern_restriction_on_result(self, toy_network):
        result = tcfi(toy_network, 0.0)
        v2 = _vertex_by_label(toy_network, 2)
        only_q = communities_containing_vertex(result, v2, pattern=(1,))
        assert {c.pattern for c in only_q} == {(1,)}

    def test_vertex_in_no_community(self, toy_network):
        result = tcfi(toy_network, 0.1)
        assert communities_containing_vertex(result, 9_999) == []


class TestStrongestThemes:
    def test_departure_thresholds(self, toy_network):
        tree = build_tc_tree(toy_network)
        # Vertex label 5 is in the p-truss (departs at 0.3) and survives in
        # the q-truss core until the end (departs at 0.6).
        v5 = _vertex_by_label(toy_network, 5)
        themes = dict(strongest_themes_of_vertex(tree, v5))
        assert themes[(0,)] == pytest.approx(0.3)
        assert themes[(1,)] == pytest.approx(0.6)

    def test_ranked_descending(self, toy_network):
        tree = build_tc_tree(toy_network)
        v5 = _vertex_by_label(toy_network, 5)
        ranked = strongest_themes_of_vertex(tree, v5)
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_limit(self, toy_network):
        tree = build_tc_tree(toy_network)
        v5 = _vertex_by_label(toy_network, 5)
        assert len(strongest_themes_of_vertex(tree, v5, limit=1)) == 1

    def test_unknown_vertex_empty(self, toy_network):
        tree = build_tc_tree(toy_network)
        assert strongest_themes_of_vertex(tree, 9_999) == []

    def test_departure_matches_truss_membership(self, toy_network):
        """Cross-check against reconstruction: the vertex is inside
        truss_at(α) exactly for α < its departure threshold."""
        tree = build_tc_tree(toy_network)
        for vertex in toy_network.graph.vertices():
            for pattern, departure in strongest_themes_of_vertex(
                tree, vertex
            ):
                decomposition = tree.find_node(pattern).decomposition
                just_below = decomposition.truss_at(departure - 1e-6)
                at_departure = decomposition.truss_at(departure)
                assert vertex in just_below.vertices()
                assert vertex not in at_departure.vertices()


class TestTopK:
    def test_default_score_prefers_size(self, toy_network):
        result = tcfi(toy_network, 0.1)
        [best] = top_k_communities(result, 1)
        # Largest community in the toy network: q's 6 members.
        assert best.pattern == (1,)
        assert best.size == 6

    def test_k_bounds_output(self, toy_network):
        result = tcfi(toy_network, 0.1)
        assert len(top_k_communities(result, 2)) == 2
        assert len(top_k_communities(result, 100)) == 3

    def test_custom_score(self, toy_network):
        result = tcfi(toy_network, 0.1)
        # Inverted score: smallest community first.
        [smallest] = top_k_communities(result, 1, score=lambda c: -c.size)
        assert smallest.size == 3

    def test_min_size(self, toy_network):
        result = tcfi(toy_network, 0.1)
        communities = top_k_communities(result, 10, min_size=6)
        assert all(c.size >= 6 for c in communities)

    def test_tree_source_with_alpha(self, toy_network):
        tree = build_tc_tree(toy_network)
        communities = top_k_communities(tree, 5, alpha=0.45)
        assert {c.pattern for c in communities} == {(1,)}
        assert communities[0].size == 4

    def test_invalid_k(self, toy_network):
        with pytest.raises(MiningError):
            top_k_communities(tcfi(toy_network, 0.1), 0)
