"""Tests for attribute-driven community search."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MiningError
from repro.index.tctree import build_tc_tree
from repro.index.warehouse import ThemeCommunityWarehouse
from repro.search.attributed import attributed_community_search
from repro.serve.engine import IndexedWarehouse


def _vertex(toy_network, label):
    return next(
        v for v, lbl in toy_network.vertex_labels.items() if lbl == label
    )


class TestAttributedSearch:
    def test_finds_community_of_query_vertices(self, toy_network):
        tree = build_tc_tree(toy_network)
        v2 = _vertex(toy_network, 2)
        v3 = _vertex(toy_network, 3)
        matches = attributed_community_search(tree, [v2, v3], [0, 1])
        themes = {m.pattern for m in matches}
        # v2, v3 are together in both the p 5-clique and the q community.
        assert themes == {(0,), (1,)}

    def test_attribute_restriction(self, toy_network):
        tree = build_tc_tree(toy_network)
        v2 = _vertex(toy_network, 2)
        matches = attributed_community_search(tree, [v2], [0])
        assert {m.pattern for m in matches} == {(0,)}

    def test_vertices_must_be_in_one_community(self, toy_network):
        tree = build_tc_tree(toy_network)
        v1 = _vertex(toy_network, 1)
        v8 = _vertex(toy_network, 8)
        # 1 and 8 are in *different* p-communities and never share one.
        assert attributed_community_search(tree, [v1, v8], [0, 1]) == []

    def test_ranking_prefers_strength(self, toy_network):
        tree = build_tc_tree(toy_network)
        v5 = _vertex(toy_network, 5)
        matches = attributed_community_search(tree, [v5], [0, 1])
        # Same coverage (length-1 themes); q has α* = 0.6 > p's 0.3,
        # so the q community ranks first.
        assert matches[0].pattern == (1,)
        assert matches[0].strength == pytest.approx(0.6)
        assert matches[1].strength == pytest.approx(0.3)

    def test_alpha_filters(self, toy_network):
        tree = build_tc_tree(toy_network)
        v2 = _vertex(toy_network, 2)
        # At α = 0.45 the q community core excludes v2.
        matches = attributed_community_search(
            tree, [v2], [0, 1], alpha=0.45
        )
        assert matches == []

    def test_limit(self, toy_network):
        tree = build_tc_tree(toy_network)
        v5 = _vertex(toy_network, 5)
        assert len(
            attributed_community_search(tree, [v5], [0, 1], limit=1)
        ) == 1

    def test_empty_queries_rejected(self, toy_network):
        tree = build_tc_tree(toy_network)
        with pytest.raises(MiningError):
            attributed_community_search(tree, [], [0])
        with pytest.raises(MiningError):
            attributed_community_search(tree, [0], [])


@pytest.fixture(scope="module")
def toy_sources(toy_network, tmp_path_factory):
    """(in-memory tree, snapshot-backed engine) over the Figure 1 network."""
    warehouse = ThemeCommunityWarehouse.build(toy_network)
    path = tmp_path_factory.mktemp("attributed") / "toy.tcsnap"
    warehouse.save_snapshot(path)
    engine = IndexedWarehouse.open(path)
    yield warehouse.tree, engine
    engine.close()


@pytest.fixture(scope="module")
def edge_sources(tmp_path_factory):
    """(edge tree, v2-snapshot engine) over a random edge network."""
    import random

    from repro.edgenet.index import build_edge_tc_tree
    from repro.edgenet.network import EdgeDatabaseNetwork
    from repro.serve.snapshot import write_snapshot

    rng = random.Random(23)
    network = EdgeDatabaseNetwork()
    for u in range(9):
        for v in range(u + 1, 9):
            if rng.random() < 0.6:
                for _ in range(rng.randint(1, 3)):
                    items = [i for i in range(4) if rng.random() < 0.6]
                    if items:
                        network.add_transaction(u, v, items)
    tree = build_edge_tc_tree(network)
    path = tmp_path_factory.mktemp("attributed-edge") / "edge.tcsnap"
    write_snapshot(tree, path)
    engine = IndexedWarehouse.open(path)
    yield tree, engine
    engine.close()


class TestEngineParity:
    """The snapshot-backed engine path answers bit-identically to the
    in-memory ``query_tc_tree`` path — members, frequencies, coverage,
    strength, and the full ranking order, ties included."""

    def test_vertex_engine_bit_identical(self, toy_network, toy_sources):
        tree, engine = toy_sources
        vertices = sorted(toy_network.vertex_labels)
        queries = [
            (vertices[:1], (0, 1), 0.0),
            (vertices[:2], (0, 1), 0.0),
            (vertices[4:5], (0, 1), 0.0),  # ties on coverage
            (vertices[:1], (0,), 0.0),
            (vertices[:2], (1,), 0.3),
            (vertices[:1], (0, 1), 0.45),
        ]
        for query_vertices, attributes, alpha in queries:
            from_tree = attributed_community_search(
                tree, query_vertices, attributes, alpha=alpha
            )
            from_engine = attributed_community_search(
                engine, query_vertices, attributes, alpha=alpha
            )
            assert from_engine == from_tree

    @given(
        subset=st.sets(
            st.integers(min_value=0, max_value=9), min_size=1, max_size=3
        ),
        attributes=st.sampled_from([(0,), (1,), (0, 1)]),
        alpha=st.sampled_from([0.0, 0.15, 0.3, 0.45, 0.6]),
        limit=st.sampled_from([None, 1, 2]),
    )
    def test_vertex_engine_parity_property(
        self, toy_network, toy_sources, subset, attributes, alpha, limit
    ):
        tree, engine = toy_sources
        vertices = sorted(toy_network.vertex_labels)
        query_vertices = [vertices[i % len(vertices)] for i in subset]
        from_tree = attributed_community_search(
            tree, query_vertices, attributes, alpha=alpha, limit=limit
        )
        from_engine = attributed_community_search(
            engine, query_vertices, attributes, alpha=alpha, limit=limit
        )
        assert from_engine == from_tree

    def test_edge_engine_bit_identical(self, edge_sources):
        tree, engine = edge_sources
        items = sorted({item for p in tree.patterns() for item in p})
        assert items, "edge fixture must index at least one theme"
        high = tree.max_alpha()
        queries = [
            ([0], tuple(items), 0.0),
            ([0, 1], tuple(items), 0.0),
            ([2], tuple(items[:2]), 0.0),
            ([0], tuple(items), 0.5 * high),
        ]
        for query_vertices, attributes, alpha in queries:
            from_tree = attributed_community_search(
                tree, query_vertices, attributes, alpha=alpha
            )
            from_engine = attributed_community_search(
                engine, query_vertices, attributes, alpha=alpha
            )
            assert from_engine == from_tree

    def test_engine_search_method_delegates(self, toy_network, toy_sources):
        tree, engine = toy_sources
        vertices = sorted(toy_network.vertex_labels)
        assert engine.search(
            vertices[:1], (0, 1), alpha=0.0, limit=2
        ) == attributed_community_search(
            tree, vertices[:1], (0, 1), alpha=0.0, limit=2
        )
