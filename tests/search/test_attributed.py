"""Tests for attribute-driven community search."""

from __future__ import annotations

import pytest

from repro.errors import MiningError
from repro.index.tctree import build_tc_tree
from repro.search.attributed import attributed_community_search


def _vertex(toy_network, label):
    return next(
        v for v, lbl in toy_network.vertex_labels.items() if lbl == label
    )


class TestAttributedSearch:
    def test_finds_community_of_query_vertices(self, toy_network):
        tree = build_tc_tree(toy_network)
        v2 = _vertex(toy_network, 2)
        v3 = _vertex(toy_network, 3)
        matches = attributed_community_search(tree, [v2, v3], [0, 1])
        themes = {m.pattern for m in matches}
        # v2, v3 are together in both the p 5-clique and the q community.
        assert themes == {(0,), (1,)}

    def test_attribute_restriction(self, toy_network):
        tree = build_tc_tree(toy_network)
        v2 = _vertex(toy_network, 2)
        matches = attributed_community_search(tree, [v2], [0])
        assert {m.pattern for m in matches} == {(0,)}

    def test_vertices_must_be_in_one_community(self, toy_network):
        tree = build_tc_tree(toy_network)
        v1 = _vertex(toy_network, 1)
        v8 = _vertex(toy_network, 8)
        # 1 and 8 are in *different* p-communities and never share one.
        assert attributed_community_search(tree, [v1, v8], [0, 1]) == []

    def test_ranking_prefers_strength(self, toy_network):
        tree = build_tc_tree(toy_network)
        v5 = _vertex(toy_network, 5)
        matches = attributed_community_search(tree, [v5], [0, 1])
        # Same coverage (length-1 themes); q has α* = 0.6 > p's 0.3,
        # so the q community ranks first.
        assert matches[0].pattern == (1,)
        assert matches[0].strength == pytest.approx(0.6)
        assert matches[1].strength == pytest.approx(0.3)

    def test_alpha_filters(self, toy_network):
        tree = build_tc_tree(toy_network)
        v2 = _vertex(toy_network, 2)
        # At α = 0.45 the q community core excludes v2.
        matches = attributed_community_search(
            tree, [v2], [0, 1], alpha=0.45
        )
        assert matches == []

    def test_limit(self, toy_network):
        tree = build_tc_tree(toy_network)
        v5 = _vertex(toy_network, 5)
        assert len(
            attributed_community_search(tree, [v5], [0, 1], limit=1)
        ) == 1

    def test_empty_queries_rejected(self, toy_network):
        tree = build_tc_tree(toy_network)
        with pytest.raises(MiningError):
            attributed_community_search(tree, [], [0])
        with pytest.raises(MiningError):
            attributed_community_search(tree, [0], [])
