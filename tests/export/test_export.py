"""Tests for the GraphML / DOT / CSV exporters."""

from __future__ import annotations

from xml.etree import ElementTree as ET

from repro.core.finder import ThemeCommunityFinder
from repro.export.dot import community_to_dot, network_to_dot
from repro.export.graphml import network_to_graphml, write_graphml
from repro.export.tables import rows_to_csv, write_csv

_NS = "{http://graphml.graphdrawing.org/xmlns}"


class TestGraphml:
    def test_well_formed_and_complete(self, toy_network):
        text = network_to_graphml(toy_network)
        root = ET.fromstring(text)
        nodes = root.findall(f"{_NS}graph/{_NS}node")
        edges = root.findall(f"{_NS}graph/{_NS}edge")
        assert len(nodes) == toy_network.num_vertices
        assert len(edges) == toy_network.num_edges

    def test_community_attributes(self, toy_network):
        communities = ThemeCommunityFinder(toy_network).find_communities(0.1)
        text = network_to_graphml(toy_network, communities)
        assert "communities" in text
        assert "q" in text

    def test_escaping(self):
        from repro.network.builder import DatabaseNetworkBuilder

        builder = DatabaseNetworkBuilder()
        builder.add_edge('user "<&>"', "other")
        network = builder.build()
        ET.fromstring(network_to_graphml(network))  # must stay well-formed

    def test_write(self, toy_network, tmp_path):
        path = tmp_path / "net.graphml"
        write_graphml(toy_network, path)
        assert path.exists()
        ET.parse(path)


class TestDot:
    def test_network_dot(self, toy_network):
        text = network_to_dot(toy_network, title="toy")
        assert text.startswith("graph repro {")
        assert text.rstrip().endswith("}")
        assert "--" in text
        assert '"toy"' in text

    def test_highlighting(self, toy_network):
        vertex = next(iter(toy_network.graph))
        text = network_to_dot(toy_network, highlight=[vertex])
        assert "filled" in text

    def test_community_dot(self, toy_network):
        communities = ThemeCommunityFinder(toy_network).find_communities(0.1)
        text = community_to_dot(toy_network, communities[0])
        assert "theme:" in text
        assert "f=" in text

    def test_quote_escaping(self, toy_network):
        text = network_to_dot(toy_network, title='has "quotes"')
        assert '\\"quotes\\"' in text


class TestCsv:
    def test_round_trip(self, tmp_path):
        rows = [
            {"dataset": "BK", "NP": 3, "seconds": 0.5},
            {"dataset": "GW", "NP": 7, "seconds": 1.25, "extra": "x"},
        ]
        text = rows_to_csv(rows)
        lines = text.strip().splitlines()
        assert lines[0] == "dataset,NP,seconds,extra"
        assert lines[1] == "BK,3,0.5,"
        assert lines[2] == "GW,7,1.25,x"

        path = tmp_path / "rows.csv"
        write_csv(rows, path)
        assert path.read_text().strip() == text.strip()

    def test_empty(self):
        assert rows_to_csv([]) == ""
