"""Golden fixture for the fork-safety rule (never imported)."""

import threading
from concurrent.futures import ProcessPoolExecutor


def _module_level_work(x):
    return x * 2


def run(tasks):
    def local_work(x):
        return x + 1

    with ProcessPoolExecutor(
        initializer=lambda: None  # BAD: lambda initializer
    ) as pool:
        pool.submit(lambda: 1)  # BAD: lambda submitted
        pool.map(local_work, tasks)  # BAD: nested function submitted
        pool.submit(_module_level_work, 3)


class HoldsLock:
    def __init__(self):
        self._lock = threading.Lock()  # BAD: no __getstate__, not allowlisted


class HoldsLockButPickles:
    def __init__(self):
        self._lock = threading.Lock()

    def __getstate__(self):
        return {}
