"""Golden fixture for the registry-contract rule (never imported)."""

from repro.engine.registry import CutoverSpec, resolve_ref

GOOD = CutoverSpec(
    name="csr_min_edges",
    sweep="repro.bench.tuning:sweep_csr_min_edges",
    value_ref="repro.graphs.support:CSR_MIN_EDGES",
)

BAD_REFS = CutoverSpec(
    name="broken",
    sweep="repro.bench.tuning:no_such_sweep",  # BAD: missing attribute
    value_ref="repro.graphs.nope:CSR_MIN_EDGES",  # BAD: missing module
)

MALFORMED = CutoverSpec(
    name="malformed",
    sweep="not a dotted ref",  # BAD: not pkg.mod:attr
)


def lookup():
    return resolve_ref("repro.errors:TCIndexError")
