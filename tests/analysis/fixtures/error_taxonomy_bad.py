"""Golden fixture for the error-taxonomy rule (never imported)."""

from repro.errors import MiningError


def validate(value):
    if value is None:
        raise ValueError("value is required")  # BAD: builtin exception
    if value < 0:
        raise MiningError("negative value")
    try:
        return int(value)
    except TypeError as exc:
        raise RuntimeError("bad type") from exc  # BAD: builtin exception
    except ValueError:
        raise


def todo():
    raise NotImplementedError("abstract hook")


def waived():
    raise KeyError("k")  # repro-lint: disable=error-taxonomy
