"""Golden fixture for the determinism rule (never imported)."""

# repro-lint: scope=determinism

import time


def to_dict(table, tags):
    ordered = [table[key] for key in sorted(table.keys())]
    unsorted_rows = [table[key] for key in table.keys()]  # BAD: unsorted view
    names = {str(tag) for tag in tags}
    parts = [part for part in names]  # BAD: set-bound name iterated
    for tag in tags | {"extra"}:  # BAD: set algebra iterated
        parts.append(tag)
    stamp = time.time()  # BAD: wall clock in an encoder
    return {"rows": ordered + unsorted_rows, "parts": parts, "stamp": stamp}


def from_dict(document):
    # Decode side: document order is deterministic given the bytes.
    return [value for value in document.values()]
