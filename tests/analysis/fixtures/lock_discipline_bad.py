"""Golden fixture for the lock-discipline rule (never imported)."""

import threading


class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: self._lock

    def bump(self):
        self._count += 1  # BAD: write outside the lock

    def read_locked(self):
        with self._lock:
            return self._count

    def read_unlocked(self):
        return self._count  # BAD: read outside the lock

    def read_waived(self):
        return self._count  # repro-lint: disable=lock-discipline


_GLOBAL_LOCK = threading.Lock()
_TOTAL = 0  # guarded-by: _GLOBAL_LOCK


def add(amount):
    global _TOTAL
    with _GLOBAL_LOCK:
        _TOTAL += amount


def peek():
    return _TOTAL  # BAD: global read outside the lock


def cross_instance(stats):
    with stats._lock:
        stats._count += 1
    stats._count = 0  # BAD: base-substituted access outside the lock
