"""Meta-test: the shipped tree passes its own lint gate.

This is the test CI's ``lint-invariants`` job mirrors: every rule over
``src/repro``, modulo the committed baseline. A failure here means a
change violated a project invariant (or needs an explicit suppression /
baseline entry with a reviewable rationale).
"""

from repro.analysis import rule_names, run_lint
from tests.analysis.conftest import REPO_ROOT

GUARDED_MODULES = (
    "src/repro/obs/metrics.py",
    "src/repro/serve/engine.py",
    "src/repro/serve/live.py",
    "src/repro/engine/registry.py",
    "src/repro/index/parallel.py",
)


class TestLiveTree:
    def test_all_five_rules_are_registered(self):
        assert rule_names() == [
            "determinism",
            "error-taxonomy",
            "fork-safety",
            "lock-discipline",
            "registry-contract",
        ]

    def test_lint_runs_clean_modulo_baseline(self):
        baseline = REPO_ROOT / ".repro-lint-baseline.json"
        report = run_lint(
            REPO_ROOT,
            baseline=baseline if baseline.is_file() else None,
        )
        assert report.files > 100
        assert report.ok, "new lint findings:\n" + "\n".join(
            finding.render() for finding in report.findings
        )

    def test_baseline_carries_no_stale_debt(self):
        baseline = REPO_ROOT / ".repro-lint-baseline.json"
        if not baseline.is_file():
            return
        report = run_lint(REPO_ROOT, baseline=baseline)
        assert report.unused_baseline == []

    def test_concurrent_modules_declare_their_guards(self):
        # Annotation rot check: the lock-discipline rule only has teeth
        # where fields are declared. Each concurrent module must keep at
        # least one guarded-by declaration.
        for relpath in GUARDED_MODULES:
            source = (REPO_ROOT / relpath).read_text(encoding="utf-8")
            assert "# guarded-by:" in source, relpath
