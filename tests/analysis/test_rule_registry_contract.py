"""Golden-fixture coverage for the registry-contract rule."""

import pytest

from repro.analysis import Project, run_lint
from repro.analysis.rules import RegistryContractRule
from tests.analysis.conftest import FIXTURES, REPO_ROOT, bad_lines

FIXTURE = "registry_contract_bad.py"


def run_fixture():
    return run_lint(
        REPO_ROOT,
        paths=[str(FIXTURES / FIXTURE)],
        rules=["registry-contract"],
    )


class TestRegistryContract:
    def test_exactly_the_marked_lines_are_flagged(self):
        report = run_fixture()
        fixture_findings = [
            f for f in report.findings if f.path.endswith(FIXTURE)
        ]
        assert {f.line for f in fixture_findings} == bad_lines(FIXTURE)

    def test_resolvable_refs_pass(self):
        report = run_fixture()
        symbols = {f.symbol for f in report.findings}
        assert "repro.bench.tuning:sweep_csr_min_edges" not in symbols
        assert "repro.graphs.support:CSR_MIN_EDGES" not in symbols
        assert "repro.errors:TCIndexError" not in symbols

    def test_each_failure_mode_has_a_distinct_message(self):
        report = run_fixture()
        messages = " ".join(f.message for f in report.findings)
        assert "no attribute" in messages  # missing attr
        assert "does not import" in messages  # missing module
        assert "pkg.mod:attr" in messages  # malformed shape

    def test_live_fleet_drivers_resolve(self):
        pytest.importorskip("yaml")
        rule = RegistryContractRule()
        findings = rule.check_project(Project(root=REPO_ROOT))
        assert findings == []

    def test_bogus_fleet_driver_flagged(self, tmp_path):
        pytest.importorskip("yaml")
        bench = tmp_path / "benchmarks"
        bench.mkdir()
        (bench / "fleet.yaml").write_text(
            "experiments:\n"
            "  broken/exp:\n"
            "    driver: benchmarks.no_such_driver\n",
            encoding="utf-8",
        )
        rule = RegistryContractRule()
        findings = rule.check_project(Project(root=tmp_path))
        assert len(findings) == 1
        assert findings[0].path == "benchmarks/fleet.yaml"
        assert findings[0].symbol == "benchmarks.no_such_driver"
        assert "broken/exp" in findings[0].message
