"""Finding value-object semantics."""

from repro.analysis import Finding


class TestFinding:
    def test_render(self):
        finding = Finding(
            path="src/repro/x.py",
            line=10,
            col=4,
            rule="error-taxonomy",
            message="raises builtin ValueError",
        )
        assert finding.render() == (
            "src/repro/x.py:10:4: [error-taxonomy] raises builtin ValueError"
        )

    def test_dict_round_trip(self):
        finding = Finding(
            path="a.py", line=3, col=0, rule="determinism",
            message="m", symbol="time.time",
        )
        assert Finding.from_dict(finding.to_dict()) == finding
        assert Finding.from_dict(finding.to_dict()).symbol == "time.time"

    def test_ordering_is_by_location(self):
        first = Finding(path="a.py", line=1, col=0, rule="z", message="m")
        second = Finding(path="a.py", line=2, col=0, rule="a", message="m")
        third = Finding(path="b.py", line=1, col=0, rule="a", message="m")
        assert sorted([third, second, first]) == [first, second, third]

    def test_baseline_key_prefers_symbol(self):
        with_symbol = Finding(
            path="a.py", line=1, col=0, rule="r", message="m", symbol="sym",
        )
        without = Finding(path="a.py", line=9, col=0, rule="r", message="m")
        assert with_symbol.baseline_key == "r::a.py::sym"
        assert without.baseline_key == "r::a.py::m"

    def test_baseline_key_ignores_line(self):
        a = Finding(path="a.py", line=1, col=0, rule="r", message="m")
        b = Finding(path="a.py", line=99, col=7, rule="r", message="m")
        assert a.baseline_key == b.baseline_key
