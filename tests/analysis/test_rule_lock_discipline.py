"""Golden-fixture coverage for the lock-discipline rule."""

from repro.analysis import run_lint
from tests.analysis.conftest import FIXTURES, REPO_ROOT, bad_lines

FIXTURE = "lock_discipline_bad.py"


def run_fixture():
    return run_lint(
        REPO_ROOT,
        paths=[str(FIXTURES / FIXTURE)],
        rules=["lock-discipline"],
    )


class TestLockDiscipline:
    def test_exactly_the_marked_lines_are_flagged(self):
        report = run_fixture()
        assert {f.line for f in report.findings} == bad_lines(FIXTURE)
        assert all(f.rule == "lock-discipline" for f in report.findings)

    def test_messages_name_the_required_lock(self):
        report = run_fixture()
        by_symbol = {f.symbol for f in report.findings}
        assert by_symbol == {"_count", "_TOTAL"}
        unguarded = [f for f in report.findings if f.symbol == "_TOTAL"]
        assert "with _GLOBAL_LOCK:" in unguarded[0].message

    def test_base_substitution_names_the_receivers_lock(self):
        report = run_fixture()
        cross = [
            f
            for f in report.findings
            if "stats._count" in f.message
        ]
        assert len(cross) == 1
        assert "with stats._lock:" in cross[0].message

    def test_constructor_and_locked_and_waived_sites_pass(self):
        # The fixture's __init__, with-block, and suppressed accesses
        # must not appear: the golden line set above is exhaustive, so
        # this asserts the fixture actually exercises those branches.
        source = (FIXTURES / FIXTURE).read_text(encoding="utf-8")
        assert "with self._lock:" in source
        assert "repro-lint: disable=lock-discipline" in source
