"""Suppression-comment parsing on ModuleInfo."""

from pathlib import Path

from repro.analysis import ModuleInfo


def module_of(source: str) -> ModuleInfo:
    return ModuleInfo(Path("m.py"), "m.py", source)


class TestSuppression:
    def test_inline_suppression_scopes_to_its_line(self):
        module = module_of(
            "x = 1  # repro-lint: disable=rule-a\n"
            "y = 2\n"
        )
        assert module.suppressed("rule-a", 1)
        assert not module.suppressed("rule-a", 2)
        assert not module.suppressed("rule-b", 1)

    def test_multiple_rules_in_one_comment(self):
        module = module_of("x = 1  # repro-lint: disable=rule-a, rule-b\n")
        assert module.suppressed("rule-a", 1)
        assert module.suppressed("rule-b", 1)

    def test_standalone_comment_waives_next_line(self):
        module = module_of(
            "# repro-lint: disable=lock-discipline\n"
            "x = 1\n"
            "y = 2\n"
        )
        assert module.suppressed("lock-discipline", 2)
        assert not module.suppressed("lock-discipline", 3)

    def test_disable_all(self):
        module = module_of("x = 1  # repro-lint: disable=all\n")
        assert module.suppressed("anything", 1)

    def test_string_literal_is_not_a_comment(self):
        module = module_of("x = '# repro-lint: disable=rule-a'\n")
        assert not module.suppressed("rule-a", 1)

    def test_trailing_rationale_is_tolerated(self):
        module = module_of(
            "x = 1  # repro-lint: disable=lock-discipline (worker-local)\n"
        )
        assert module.suppressed("lock-discipline", 1)
