"""Baseline save/load/apply round-trips."""

import json

import pytest

from repro.analysis import (
    Finding,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.errors import AnalysisError


def finding(line=1, rule="r", message="m", path="a.py", symbol=""):
    return Finding(
        path=path, line=line, col=0, rule=rule, message=message, symbol=symbol
    )


class TestBaselineRoundTrip:
    def test_save_then_apply_waives_everything(self, tmp_path):
        findings = [finding(line=1), finding(line=5, rule="s")]
        path = tmp_path / "baseline.json"
        save_baseline(findings, path)
        new, waived, unused = apply_baseline(findings, load_baseline(path))
        assert new == []
        assert sorted(waived) == sorted(findings)
        assert unused == []

    def test_lines_may_drift_without_invalidating(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline([finding(line=10)], path)
        drifted = [finding(line=42)]
        new, waived, _ = apply_baseline(drifted, load_baseline(path))
        assert new == []
        assert waived == drifted

    def test_extra_occurrence_is_new(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline([finding(line=1)], path)
        doubled = [finding(line=1), finding(line=2)]
        new, waived, _ = apply_baseline(doubled, load_baseline(path))
        assert len(waived) == 1
        assert len(new) == 1

    def test_stale_entries_reported_unused(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline([finding(), finding(rule="s")], path)
        new, waived, unused = apply_baseline(
            [finding()], load_baseline(path)
        )
        assert new == []
        assert len(waived) == 1
        assert unused == ["s::a.py::m"]


class TestBaselineValidation:
    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text("{nope")
        with pytest.raises(AnalysisError, match="invalid JSON"):
            load_baseline(path)

    def test_wrong_format_raises(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"format": "other", "version": 1}))
        with pytest.raises(AnalysisError, match="format"):
            load_baseline(path)

    def test_bad_count_raises(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps(
                {
                    "format": "repro-lint-baseline",
                    "version": 1,
                    "findings": {"k": 0},
                }
            )
        )
        with pytest.raises(AnalysisError, match="positive int"):
            load_baseline(path)

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps({"format": "repro-lint-baseline", "version": 9})
        )
        with pytest.raises(AnalysisError, match="version"):
            load_baseline(path)
