"""End-to-end ``repro lint`` CLI behavior."""

import json

from repro.cli import main
from tests.analysis.conftest import FIXTURES, REPO_ROOT

INJECTED = (
    "import threading\n"
    "\n"
    "\n"
    "class Box:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._value = 0  # guarded-by: self._lock\n"
    "\n"
    "    def __getstate__(self):\n"
    "        return {}\n"
    "\n"
    "    def put(self, value):\n"
    "        self._value = value\n"
)


def write_module(root, source, name="mod.py"):
    path = root / "src" / "repro" / name
    path.write_text(source, encoding="utf-8")
    return path


class TestLintCli:
    def test_injected_violation_fails_the_gate(self, mini_project, capsys):
        write_module(mini_project, INJECTED)
        assert main(["lint", "--root", str(mini_project)]) == 1
        out = capsys.readouterr().out
        assert "[lock-discipline]" in out
        assert "src/repro/mod.py:13" in out

    def test_clean_tree_passes(self, mini_project, capsys):
        fixed = INJECTED.replace(
            "        self._value = value\n",
            "        with self._lock:\n            self._value = value\n",
        )
        write_module(mini_project, fixed)
        assert main(["lint", "--root", str(mini_project)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_suppression_waives_the_gate(self, mini_project):
        waived = INJECTED.replace(
            "        self._value = value\n",
            "        self._value = value"
            "  # repro-lint: disable=lock-discipline\n",
        )
        write_module(mini_project, waived)
        assert main(["lint", "--root", str(mini_project)]) == 0

    def test_json_report_shape(self, mini_project, capsys):
        write_module(mini_project, INJECTED)
        rc = main(["lint", "--root", str(mini_project), "--format", "json"])
        assert rc == 1
        report = json.loads(capsys.readouterr().out)
        assert report["format"] == "repro-lint-report"
        assert report["ok"] is False
        assert report["summary"] == {"lock-discipline": 1}
        (finding,) = report["findings"]
        assert finding["rule"] == "lock-discipline"
        assert finding["path"] == "src/repro/mod.py"
        assert finding["line"] == 13

    def test_write_baseline_then_lint_passes(self, mini_project, capsys):
        write_module(mini_project, INJECTED)
        assert main(["lint", "--root", str(mini_project),
                     "--write-baseline"]) == 0
        assert (mini_project / ".repro-lint-baseline.json").is_file()
        capsys.readouterr()
        assert main(["lint", "--root", str(mini_project)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_no_baseline_flag_reopens_findings(self, mini_project):
        write_module(mini_project, INJECTED)
        assert main(["lint", "--root", str(mini_project),
                     "--write-baseline"]) == 0
        assert main(["lint", "--root", str(mini_project),
                     "--no-baseline"]) == 1

    def test_stale_baseline_entries_surface_in_json(
        self, mini_project, capsys
    ):
        write_module(mini_project, INJECTED)
        assert main(["lint", "--root", str(mini_project),
                     "--write-baseline"]) == 0
        write_module(mini_project, "VALUE = 1\n")  # debt paid off
        capsys.readouterr()
        rc = main(["lint", "--root", str(mini_project), "--format", "json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["unused_baseline"] == [
            "lock-discipline::src/repro/mod.py::_value"
        ]

    def test_rule_selection_limits_the_run(self, mini_project):
        write_module(mini_project, INJECTED)
        assert main(["lint", "--root", str(mini_project),
                     "--rule", "error-taxonomy"]) == 0
        assert main(["lint", "--root", str(mini_project),
                     "--rule", "lock-discipline"]) == 1

    def test_unknown_rule_is_a_usage_error(self, mini_project, capsys):
        assert main(["lint", "--root", str(mini_project),
                     "--rule", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_explicit_baseline_is_a_usage_error(
        self, mini_project, capsys
    ):
        write_module(mini_project, "VALUE = 1\n")
        rc = main(["lint", "--root", str(mini_project),
                   "--baseline", "nope.json"])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_explicit_paths_against_live_root(self, capsys):
        # The acceptance shape: pointing the gate at a file with a
        # violation fails even though the shipped tree is clean.
        rc = main([
            "lint",
            "--root", str(REPO_ROOT),
            "--no-baseline",
            str(FIXTURES / "lock_discipline_bad.py"),
        ])
        assert rc == 1
        assert "[lock-discipline]" in capsys.readouterr().out
