"""Golden-fixture coverage for the determinism rule."""

from pathlib import Path

from repro.analysis import ModuleInfo, Project, run_lint
from repro.analysis.rules import DeterminismRule
from repro.analysis.rules.determinism import SCOPE_SUFFIXES
from tests.analysis.conftest import FIXTURES, REPO_ROOT, bad_lines

FIXTURE = "determinism_bad.py"


def run_fixture():
    return run_lint(
        REPO_ROOT,
        paths=[str(FIXTURES / FIXTURE)],
        rules=["determinism"],
    )


class TestDeterminism:
    def test_exactly_the_marked_lines_are_flagged(self):
        report = run_fixture()
        assert {f.line for f in report.findings} == bad_lines(FIXTURE)

    def test_entropy_call_flagged_by_symbol(self):
        report = run_fixture()
        assert "time.time" in {f.symbol for f in report.findings}

    def test_decode_side_mapping_iteration_passes(self):
        report = run_fixture()
        assert not any(
            "document.values" in f.symbol for f in report.findings
        )

    def test_out_of_scope_modules_are_ignored(self):
        source = (FIXTURES / FIXTURE).read_text(encoding="utf-8")
        source = source.replace("# repro-lint: scope=determinism", "#")
        module = ModuleInfo(Path("unscoped.py"), "unscoped.py", source)
        rule = DeterminismRule()
        project = Project(root=REPO_ROOT, modules=[module])
        assert rule.check_module(module, project) == []

    def test_live_serialization_files_are_in_scope(self):
        # The contract files must exist; a rename would silently drop
        # them out of the rule's reach.
        for suffix in SCOPE_SUFFIXES:
            assert (REPO_ROOT / "src" / suffix).is_file(), suffix
