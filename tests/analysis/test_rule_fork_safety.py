"""Golden-fixture coverage for the fork-safety rule."""

from repro.analysis import run_lint
from repro.analysis.rules import PROCESS_LOCAL
from tests.analysis.conftest import FIXTURES, REPO_ROOT, bad_lines

FIXTURE = "fork_safety_bad.py"


def run_fixture():
    return run_lint(
        REPO_ROOT,
        paths=[str(FIXTURES / FIXTURE)],
        rules=["fork-safety"],
    )


class TestForkSafety:
    def test_exactly_the_marked_lines_are_flagged(self):
        report = run_fixture()
        assert {f.line for f in report.findings} == bad_lines(FIXTURE)

    def test_lambda_and_nested_submissions_flagged(self):
        report = run_fixture()
        symbols = {f.symbol for f in report.findings}
        assert "<lambda>" in symbols
        assert "local_work" in symbols

    def test_lock_holder_without_getstate_flagged(self):
        report = run_fixture()
        classes = [f for f in report.findings if f.symbol == "HoldsLock"]
        assert len(classes) == 1
        assert "__getstate__" in classes[0].message
        assert "PROCESS_LOCAL" in classes[0].message

    def test_allowlist_covers_the_serving_tier(self):
        # The live tree's lock-holding types must stay enumerated —
        # removing one from the allowlist without adding __getstate__
        # should fail the meta-test, not silently pass.
        for name in ("MetricsRegistry", "IndexedWarehouse", "LiveIndex"):
            assert name in PROCESS_LOCAL
