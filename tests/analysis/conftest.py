"""Helpers for the static-analyzer tests."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import ModuleInfo, Project

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def load_fixture(name: str) -> tuple[ModuleInfo, Project]:
    """Parse one golden fixture into a single-module project.

    The project root is the real repo root so rules that consult
    ``src/repro/errors.py`` (taxonomy) resolve against the live tree.
    """
    path = FIXTURES / name
    module = ModuleInfo(path, name, path.read_text(encoding="utf-8"))
    return module, Project(root=REPO_ROOT, modules=[module])


def bad_lines(name: str) -> set[int]:
    """Line numbers carrying a ``# BAD`` marker in a fixture."""
    text = (FIXTURES / name).read_text(encoding="utf-8")
    return {
        lineno
        for lineno, line in enumerate(text.splitlines(), start=1)
        if "# BAD" in line
    }


@pytest.fixture
def mini_project(tmp_path):
    """A throwaway project skeleton with a minimal error taxonomy."""
    (tmp_path / "src" / "repro").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "errors.py").write_text(
        "class ReproError(Exception):\n"
        "    pass\n"
        "\n"
        "\n"
        "class ServeError(ReproError):\n"
        "    pass\n",
        encoding="utf-8",
    )
    return tmp_path
