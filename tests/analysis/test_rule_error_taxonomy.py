"""Golden-fixture coverage for the error-taxonomy rule."""

from repro.analysis import run_lint
from tests.analysis.conftest import FIXTURES, REPO_ROOT, bad_lines

FIXTURE = "error_taxonomy_bad.py"


def run_fixture():
    return run_lint(
        REPO_ROOT,
        paths=[str(FIXTURES / FIXTURE)],
        rules=["error-taxonomy"],
    )


class TestErrorTaxonomy:
    def test_exactly_the_marked_lines_are_flagged(self):
        report = run_fixture()
        assert {f.line for f in report.findings} == bad_lines(FIXTURE)
        assert {f.symbol for f in report.findings} == {
            "ValueError",
            "RuntimeError",
        }

    def test_taxonomy_raises_and_reraises_pass(self):
        # MiningError (taxonomy), bare re-raise, NotImplementedError and
        # the suppressed KeyError are all present in the fixture and all
        # absent from the finding set.
        source = (FIXTURES / FIXTURE).read_text(encoding="utf-8")
        for allowed in ("MiningError", "raise\n", "NotImplementedError"):
            assert allowed in source

    def test_messages_point_at_the_taxonomy(self):
        report = run_fixture()
        assert all(
            "ReproError subclass" in f.message for f in report.findings
        )
