"""End-to-end tests of the CLI (generate → stats → mine → index → query)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestGenerate:
    def test_generate_writes_file(self, tmp_path, capsys):
        out = tmp_path / "bk.json"
        code = main(
            ["generate", "--dataset", "BK", "--scale", "tiny",
             "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_unknown_dataset(self, tmp_path, capsys):
        code = main(
            ["generate", "--dataset", "NOPE", "--out",
             str(tmp_path / "x.json")]
        )
        assert code == 2
        assert "unknown dataset" in capsys.readouterr().err


class TestPipeline:
    @pytest.fixture()
    def network_file(self, tmp_path):
        out = tmp_path / "net.json"
        assert main(
            ["generate", "--dataset", "BK", "--scale", "tiny",
             "--out", str(out)]
        ) == 0
        return out

    def test_stats(self, network_file, capsys):
        assert main(["stats", str(network_file)]) == 0
        out = capsys.readouterr().out
        assert "#Vertices" in out

    def test_mine(self, network_file, capsys):
        code = main(
            ["mine", str(network_file), "--alpha", "0.3",
             "--max-length", "2"]
        )
        assert code == 0
        assert "theme communities" in capsys.readouterr().out

    def test_index_and_query(self, network_file, tmp_path, capsys):
        index_file = tmp_path / "net.tctree.json"
        assert main(
            ["index", str(network_file), "--out", str(index_file),
             "--max-length", "2"]
        ) == 0
        assert index_file.exists()
        capsys.readouterr()

        assert main(["query", str(index_file), "--alpha", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "retrieved" in out

    def test_query_with_pattern(self, network_file, tmp_path, capsys):
        index_file = tmp_path / "net.tctree.json"
        main(["index", str(network_file), "--out", str(index_file),
              "--max-length", "2"])
        capsys.readouterr()
        assert main(
            ["query", str(index_file), "--pattern", "0,1"]
        ) == 0

    def test_index_snapshot_format_and_query(
        self, network_file, tmp_path, capsys
    ):
        snap_file = tmp_path / "net.tcsnap"
        assert main(
            ["index", str(network_file), "--out", str(snap_file),
             "--max-length", "2", "--format", "snapshot"]
        ) == 0
        assert snap_file.read_bytes()[:8] == b"REPROTCS"
        capsys.readouterr()
        assert main(["query", str(snap_file), "--alpha", "0.1"]) == 0
        assert "retrieved" in capsys.readouterr().out

    def test_snapshot_migration_parity(
        self, network_file, tmp_path, capsys
    ):
        """repro snapshot migrates JSON → binary; both answer alike."""
        index_file = tmp_path / "net.tctree.json"
        snap_file = tmp_path / "net.tcsnap"
        main(["index", str(network_file), "--out", str(index_file),
              "--max-length", "2"])
        capsys.readouterr()
        assert main(
            ["snapshot", str(index_file), "--out", str(snap_file)]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["query", str(index_file), "--alpha", "0.2"]) == 0
        from_json = capsys.readouterr().out
        assert main(["query", str(snap_file), "--alpha", "0.2"]) == 0
        assert capsys.readouterr().out == from_json

    def test_query_top_k(self, network_file, tmp_path, capsys):
        index_file = tmp_path / "net.tctree.json"
        main(["index", str(network_file), "--out", str(index_file),
              "--max-length", "2"])
        capsys.readouterr()
        assert main(
            ["query", str(index_file), "--top-k", "3", "--min-size", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "top" in out
        assert out.count("pattern=") <= 3

    def test_stats_on_index_files(self, network_file, tmp_path, capsys):
        """repro stats detects index files and prints tree statistics."""
        index_file = tmp_path / "net.tctree.json"
        snap_file = tmp_path / "net.tcsnap"
        main(["index", str(network_file), "--out", str(index_file),
              "--max-length", "2"])
        main(["snapshot", str(index_file), "--out", str(snap_file)])
        capsys.readouterr()
        for path in (index_file, snap_file):
            assert main(["stats", str(path)]) == 0
            out = capsys.readouterr().out
            assert "TC-Tree statistics" in out
            assert "est_snap_KiB" in out


class TestSearchAndExport:
    @pytest.fixture()
    def network_file(self, tmp_path):
        out = tmp_path / "net.json"
        assert main(
            ["generate", "--dataset", "BK", "--scale", "tiny",
             "--out", str(out)]
        ) == 0
        return out

    def test_search_topk(self, network_file, capsys):
        assert main(
            ["search", str(network_file), "--alpha", "0.3",
             "--max-length", "2", "--top", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "top" in out
        assert "theme=" in out

    def test_search_by_vertex(self, network_file, capsys):
        assert main(
            ["search", str(network_file), "--vertex", "0",
             "--alpha", "0.3", "--max-length", "2"]
        ) == 0
        assert "vertex 0 belongs to" in capsys.readouterr().out

    def test_search_index_file_runs_attributed(
        self, network_file, tmp_path, capsys
    ):
        """repro search on an index file routes to the engine-backed
        attributed community search."""
        snap_file = tmp_path / "net.tcsnap"
        main(["index", str(network_file), "--out", str(snap_file),
              "--max-length", "2", "--format", "snapshot"])
        capsys.readouterr()
        # Anchor the query at a member of the largest indexed community.
        from repro.index.query import query_tc_tree
        from repro.serve.snapshot import TCTreeSnapshot

        tree = TCTreeSnapshot.open(snap_file).materialize_tree()
        answer = query_tc_tree(tree, alpha=0.0)
        largest = max(
            (c for t in answer.trusses for c in t.communities()), key=len
        )
        anchor = sorted(largest)[0]
        items = sorted({item for p in tree.patterns() for item in p})
        assert main(
            ["search", str(snap_file),
             "--vertices", str(anchor),
             "--attributes", ",".join(str(i) for i in items)]
        ) == 0
        out = capsys.readouterr().out
        assert "attributed matches" in out
        assert "pattern=" in out

    def test_search_index_file_requires_query_args(
        self, network_file, tmp_path, capsys
    ):
        snap_file = tmp_path / "net.tcsnap"
        main(["index", str(network_file), "--out", str(snap_file),
              "--max-length", "2", "--format", "snapshot"])
        capsys.readouterr()
        assert main(["search", str(snap_file)]) == 2
        err = capsys.readouterr().err
        assert "--vertices" in err
        assert "--attributes" in err

    def test_export_graphml(self, network_file, tmp_path, capsys):
        out = tmp_path / "net.graphml"
        assert main(
            ["export", str(network_file), "--format", "graphml",
             "--out", str(out), "--alpha", "0.3", "--max-length", "2"]
        ) == 0
        assert out.exists()
        from xml.etree import ElementTree as ET

        ET.parse(out)

    def test_export_dot(self, network_file, tmp_path):
        out = tmp_path / "net.dot"
        assert main(
            ["export", str(network_file), "--format", "dot",
             "--out", str(out)]
        ) == 0
        assert out.read_text().startswith("graph repro {")


class TestEdgePipeline:
    @pytest.fixture()
    def edge_network_file(self, tmp_path):
        import random

        from repro.edgenet.io import save_edge_network
        from repro.edgenet.network import EdgeDatabaseNetwork

        rng = random.Random(7)
        network = EdgeDatabaseNetwork()
        for u in range(8):
            for v in range(u + 1, 8):
                if rng.random() < 0.6:
                    for _ in range(rng.randint(1, 3)):
                        items = [i for i in range(3) if rng.random() < 0.6]
                        if items:
                            network.add_transaction(u, v, items)
        out = tmp_path / "edgenet.json"
        save_edge_network(network, out)
        return out

    def test_edge_index_and_query(
        self, edge_network_file, tmp_path, capsys
    ):
        out = tmp_path / "edge.tcsnap"
        assert main(
            ["edge-index", str(edge_network_file), "--out", str(out)]
        ) == 0
        assert "edge snapshot" in capsys.readouterr().out
        assert main(
            ["query", str(out), "--kind", "edge", "--alpha", "0.1"]
        ) == 0
        assert "retrieved" in capsys.readouterr().out

    def test_edge_index_parallel_matches_serial(
        self, edge_network_file, tmp_path, capsys
    ):
        serial = tmp_path / "serial.tcsnap"
        parallel = tmp_path / "parallel.tcsnap"
        assert main(
            ["edge-index", str(edge_network_file), "--out", str(serial),
             "--backend", "serial"]
        ) == 0
        assert main(
            ["edge-index", str(edge_network_file), "--out", str(parallel),
             "--workers", "2"]
        ) == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_stats_on_edge_snapshot(
        self, edge_network_file, tmp_path, capsys
    ):
        out = tmp_path / "edge.tcsnap"
        assert main(
            ["edge-index", str(edge_network_file), "--out", str(out)]
        ) == 0
        capsys.readouterr()
        assert main(["stats", str(out)]) == 0
        assert "Edge TC-Tree statistics" in capsys.readouterr().out

    def test_query_kind_mismatch(
        self, edge_network_file, tmp_path, capsys
    ):
        out = tmp_path / "edge.tcsnap"
        assert main(
            ["edge-index", str(edge_network_file), "--out", str(out)]
        ) == 0
        capsys.readouterr()
        assert main(["query", str(out), "--kind", "vertex"]) == 2
        assert "edge tree" in capsys.readouterr().err


class TestServeParser:
    def test_serve_registered(self):
        """The serve loop runs forever, so only the wiring is testable
        here; the CI smoke step exercises the live server."""
        from repro.cli import _cmd_serve, build_parser

        args = build_parser().parse_args(
            ["serve", "x.tcsnap", "--port", "0", "--cache-size", "16"]
        )
        assert args.func is _cmd_serve
        assert args.cache_size == 16


class TestValidate:
    def test_clean_network_ok(self, tmp_path, capsys):
        out = tmp_path / "net.json"
        main(["generate", "--dataset", "BK", "--scale", "tiny",
              "--out", str(out)])
        capsys.readouterr()
        assert main(["validate", str(out)]) == 0


class TestExperiment:
    def test_table2(self, capsys):
        assert main(["experiment", "table2", "--scale", "tiny"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_recovery(self, capsys):
        assert main(["experiment", "recovery", "--scale", "tiny"]) == 0
        assert "recovery" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["experiment", "fig5", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "QBA" in out and "QBP" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
