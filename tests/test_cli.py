"""End-to-end tests of the CLI (generate → stats → mine → index → query)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestGenerate:
    def test_generate_writes_file(self, tmp_path, capsys):
        out = tmp_path / "bk.json"
        code = main(
            ["generate", "--dataset", "BK", "--scale", "tiny",
             "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_unknown_dataset(self, tmp_path, capsys):
        code = main(
            ["generate", "--dataset", "NOPE", "--out",
             str(tmp_path / "x.json")]
        )
        assert code == 2
        assert "unknown dataset" in capsys.readouterr().err


class TestPipeline:
    @pytest.fixture()
    def network_file(self, tmp_path):
        out = tmp_path / "net.json"
        assert main(
            ["generate", "--dataset", "BK", "--scale", "tiny",
             "--out", str(out)]
        ) == 0
        return out

    def test_stats(self, network_file, capsys):
        assert main(["stats", str(network_file)]) == 0
        out = capsys.readouterr().out
        assert "#Vertices" in out

    def test_mine(self, network_file, capsys):
        code = main(
            ["mine", str(network_file), "--alpha", "0.3",
             "--max-length", "2"]
        )
        assert code == 0
        assert "theme communities" in capsys.readouterr().out

    def test_index_and_query(self, network_file, tmp_path, capsys):
        index_file = tmp_path / "net.tctree.json"
        assert main(
            ["index", str(network_file), "--out", str(index_file),
             "--max-length", "2"]
        ) == 0
        assert index_file.exists()
        capsys.readouterr()

        assert main(["query", str(index_file), "--alpha", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "retrieved" in out

    def test_query_with_pattern(self, network_file, tmp_path, capsys):
        index_file = tmp_path / "net.tctree.json"
        main(["index", str(network_file), "--out", str(index_file),
              "--max-length", "2"])
        capsys.readouterr()
        assert main(
            ["query", str(index_file), "--pattern", "0,1"]
        ) == 0


class TestSearchAndExport:
    @pytest.fixture()
    def network_file(self, tmp_path):
        out = tmp_path / "net.json"
        assert main(
            ["generate", "--dataset", "BK", "--scale", "tiny",
             "--out", str(out)]
        ) == 0
        return out

    def test_search_topk(self, network_file, capsys):
        assert main(
            ["search", str(network_file), "--alpha", "0.3",
             "--max-length", "2", "--top", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "top" in out
        assert "theme=" in out

    def test_search_by_vertex(self, network_file, capsys):
        assert main(
            ["search", str(network_file), "--vertex", "0",
             "--alpha", "0.3", "--max-length", "2"]
        ) == 0
        assert "vertex 0 belongs to" in capsys.readouterr().out

    def test_export_graphml(self, network_file, tmp_path, capsys):
        out = tmp_path / "net.graphml"
        assert main(
            ["export", str(network_file), "--format", "graphml",
             "--out", str(out), "--alpha", "0.3", "--max-length", "2"]
        ) == 0
        assert out.exists()
        from xml.etree import ElementTree as ET

        ET.parse(out)

    def test_export_dot(self, network_file, tmp_path):
        out = tmp_path / "net.dot"
        assert main(
            ["export", str(network_file), "--format", "dot",
             "--out", str(out)]
        ) == 0
        assert out.read_text().startswith("graph repro {")


class TestValidate:
    def test_clean_network_ok(self, tmp_path, capsys):
        out = tmp_path / "net.json"
        main(["generate", "--dataset", "BK", "--scale", "tiny",
              "--out", str(out)])
        capsys.readouterr()
        assert main(["validate", str(out)]) == 0


class TestExperiment:
    def test_table2(self, capsys):
        assert main(["experiment", "table2", "--scale", "tiny"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_recovery(self, capsys):
        assert main(["experiment", "recovery", "--scale", "tiny"]) == 0
        assert "recovery" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["experiment", "fig5", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "QBA" in out and "QBP" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
