"""Tests for DatabaseNetworkBuilder."""

from __future__ import annotations

from repro.network.builder import DatabaseNetworkBuilder


class TestBuilder:
    def test_interning_is_stable(self):
        builder = DatabaseNetworkBuilder()
        a = builder.vertex_id("alice")
        b = builder.vertex_id("bob")
        assert builder.vertex_id("alice") == a
        assert a != b

    def test_items_interned_on_first_sight(self):
        builder = DatabaseNetworkBuilder()
        assert builder.item_id("beer") == 0
        assert builder.item_id("diapers") == 1
        assert builder.item_id("beer") == 0

    def test_full_build(self):
        builder = (
            DatabaseNetworkBuilder()
            .add_edge("alice", "bob")
            .add_edge("bob", "carol")
            .add_transaction("alice", ["beer", "diapers"])
            .add_transaction("bob", ["beer"])
        )
        network = builder.build()
        assert network.num_vertices == 3
        assert network.num_edges == 2
        alice = builder.vertex_id("alice")
        beer = builder.item_id("beer")
        assert network.frequency(alice, (beer,)) == 1.0
        assert network.vertex_label(alice) == "alice"
        assert network.item_label(beer) == "beer"

    def test_add_transactions_bulk(self):
        builder = DatabaseNetworkBuilder()
        builder.add_transactions("v", [["a"], ["a", "b"]])
        network = builder.build()
        vid = builder.vertex_id("v")
        assert network.database(vid).num_transactions == 2

    def test_build_twice_independent(self):
        builder = DatabaseNetworkBuilder()
        builder.add_edge("a", "b")
        first = builder.build()
        builder.add_edge("b", "c")
        second = builder.build()
        assert first.num_edges == 1
        assert second.num_edges == 2

    def test_vertex_without_transactions_has_no_database(self):
        builder = DatabaseNetworkBuilder()
        builder.add_edge("a", "b")
        network = builder.build()
        assert network.databases == {}
