"""Tests for the DatabaseNetwork container."""

from __future__ import annotations

import pytest

from repro.errors import DatabaseError, GraphError
from repro.graphs.graph import Graph
from repro.network.dbnetwork import DatabaseNetwork
from repro.txdb.database import TransactionDatabase


def _simple_network() -> DatabaseNetwork:
    graph = Graph([(0, 1), (1, 2)])
    databases = {
        0: TransactionDatabase([{1, 2}, {1}]),
        1: TransactionDatabase([{1}]),
        2: TransactionDatabase([{2}, {3}]),
    }
    return DatabaseNetwork(graph, databases)


class TestConstruction:
    def test_empty(self):
        network = DatabaseNetwork()
        assert network.num_vertices == 0
        assert network.num_edges == 0

    def test_database_for_unknown_vertex_rejected(self):
        graph = Graph([(0, 1)])
        with pytest.raises(GraphError):
            DatabaseNetwork(graph, {7: TransactionDatabase([{1}])})

    def test_add_vertex_with_database(self):
        network = DatabaseNetwork()
        network.add_vertex(0, TransactionDatabase([{1}]))
        assert network.frequency(0, (1,)) == 1.0

    def test_set_database_requires_vertex(self):
        network = DatabaseNetwork()
        with pytest.raises(GraphError):
            network.set_database(3, TransactionDatabase([{1}]))


class TestQueries:
    def test_frequency(self):
        network = _simple_network()
        assert network.frequency(0, (1,)) == 1.0
        assert network.frequency(2, (2,)) == 0.5

    def test_frequency_vertex_without_database(self):
        network = _simple_network()
        network.add_vertex(9)
        assert network.frequency(9, (1,)) == 0.0

    def test_database_accessor(self):
        network = _simple_network()
        assert network.database(0).num_transactions == 2
        with pytest.raises(DatabaseError):
            network.database(99)

    def test_item_universe(self):
        assert _simple_network().item_universe() == [1, 2, 3]

    def test_vertices_containing_item(self):
        network = _simple_network()
        assert sorted(network.vertices_containing_item(1)) == [0, 1]
        assert network.vertices_containing_item(3) == [2]


class TestLabels:
    def test_defaults_to_identity(self):
        network = _simple_network()
        assert network.vertex_label(0) == 0
        assert network.item_label(1) == 1

    def test_explicit_labels(self):
        network = DatabaseNetwork(
            Graph([(0, 1)]),
            {},
            vertex_labels={0: "alice"},
            item_labels={1: "beer"},
        )
        assert network.vertex_label(0) == "alice"
        assert network.item_label(1) == "beer"
        assert network.pattern_labels((1,)) == ("beer",)


class TestSubnetworks:
    def test_subnetwork_restricts(self):
        network = _simple_network()
        sub = network.subnetwork([0, 1])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1
        assert 2 not in sub.databases

    def test_subnetwork_shares_databases(self):
        network = _simple_network()
        sub = network.subnetwork([0, 1])
        assert sub.databases[0] is network.databases[0]

    def test_edge_subnetwork(self):
        network = _simple_network()
        sub = network.edge_subnetwork([(1, 2)])
        assert sub.num_vertices == 2
        assert set(sub.databases) == {1, 2}
