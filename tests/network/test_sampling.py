"""Tests for BFS edge sampling (the Section 7.1 protocol)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.network.sampling import bfs_edge_sample, sample_series
from tests.conftest import database_networks


class TestBfsEdgeSample:
    def test_requested_size(self, toy_network):
        sample = bfs_edge_sample(toy_network, 5, seed=1)
        assert sample.num_edges == 5

    def test_more_than_available_gives_all(self, toy_network):
        sample = bfs_edge_sample(toy_network, 10_000, seed=1)
        assert sample.num_edges == toy_network.num_edges

    def test_zero_edges(self, toy_network):
        sample = bfs_edge_sample(toy_network, 0, seed=1)
        assert sample.num_edges == 0

    def test_negative_rejected(self, toy_network):
        with pytest.raises(GraphError):
            bfs_edge_sample(toy_network, -1)

    def test_deterministic_given_seed(self, toy_network):
        a = bfs_edge_sample(toy_network, 6, seed=3)
        b = bfs_edge_sample(toy_network, 6, seed=3)
        assert a.graph == b.graph

    def test_sample_is_subnetwork(self, toy_network):
        sample = bfs_edge_sample(toy_network, 8, seed=2)
        for u, v in sample.graph.iter_edges():
            assert toy_network.graph.has_edge(u, v)
        for v in sample.databases:
            assert sample.databases[v] is toy_network.databases[v]

    def test_connected_while_in_first_component(self, toy_network):
        """A BFS prefix within one component is connected."""
        from repro.graphs.components import is_connected

        sample = bfs_edge_sample(toy_network, 4, seed=5)
        assert is_connected(sample.graph)

    @given(database_networks(), st.integers(min_value=1, max_value=10))
    def test_never_exceeds_request(self, network, m):
        sample = bfs_edge_sample(network, m, seed=0)
        assert sample.num_edges <= m
        assert sample.num_edges == min(m, network.num_edges)


class TestSampleSeries:
    def test_nested_prefixes(self, toy_network):
        series = sample_series(toy_network, [3, 6, 9], seed=4)
        edges = [set(s.graph.iter_edges()) for s in series]
        assert edges[0] <= edges[1] <= edges[2]

    def test_sizes(self, toy_network):
        series = sample_series(toy_network, [2, 4], seed=4)
        assert [s.num_edges for s in series] == [2, 4]
