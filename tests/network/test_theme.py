"""Tests for theme-network induction."""

from __future__ import annotations

from hypothesis import given

from repro.graphs.graph import Graph
from repro.network.dbnetwork import DatabaseNetwork
from repro.network.theme import (
    induce_theme_network,
    intersect_graphs,
    theme_frequencies,
    theme_network_within,
)
from repro.txdb.database import TransactionDatabase
from tests.conftest import database_networks, small_graphs


def _network() -> DatabaseNetwork:
    graph = Graph([(0, 1), (1, 2), (0, 2), (2, 3)])
    databases = {
        0: TransactionDatabase([{1}, {1, 2}]),
        1: TransactionDatabase([{1}]),
        2: TransactionDatabase([{2}]),
        3: TransactionDatabase([{1, 2}, {3}]),
    }
    return DatabaseNetwork(graph, databases)


class TestThemeFrequencies:
    def test_only_positive(self):
        freqs = theme_frequencies(_network(), (1,))
        assert set(freqs) == {0, 1, 3}
        assert freqs[0] == 1.0
        assert freqs[3] == 0.5

    def test_candidates_restrict(self):
        freqs = theme_frequencies(_network(), (1,), candidates=[0, 2])
        assert set(freqs) == {0}


class TestInduceThemeNetwork:
    def test_vertices_with_positive_frequency(self):
        graph, freqs = induce_theme_network(_network(), (1,))
        assert set(graph.vertices()) == {0, 1, 3}
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 2)

    def test_empty_theme(self):
        graph, freqs = induce_theme_network(_network(), (3, 2))
        assert graph.num_vertices == 0
        assert freqs == {}

    def test_empty_pattern_gives_whole_network(self):
        """G is the theme network of p = ∅ (Section 3.1)."""
        network = _network()
        graph, freqs = induce_theme_network(network, ())
        assert set(graph.vertices()) == {0, 1, 2, 3}
        assert all(f == 1.0 for f in freqs.values())

    @given(database_networks())
    def test_subgraph_of_original(self, network):
        for item in network.item_universe():
            graph, freqs = induce_theme_network(network, (item,))
            for u, v in graph.iter_edges():
                assert network.graph.has_edge(u, v)
            for _v, f in freqs.items():
                assert f > 0.0


class TestThemeNetworkWithin:
    def test_restricted_to_carrier(self):
        network = _network()
        carrier = Graph([(0, 1)])
        graph, freqs = theme_network_within(network, (1,), carrier)
        assert set(graph.vertices()) == {0, 1}
        assert 3 not in freqs

    @given(database_networks())
    def test_carrier_full_graph_matches_plain_induction(self, network):
        for item in network.item_universe():
            full_graph, full_freqs = induce_theme_network(network, (item,))
            within_graph, within_freqs = theme_network_within(
                network, (item,), network.graph
            )
            assert within_graph == full_graph
            assert within_freqs == full_freqs


class TestIntersectGraphs:
    def test_common_edges_only(self):
        a = Graph([(0, 1), (1, 2)])
        b = Graph([(1, 2), (2, 3)])
        assert sorted(intersect_graphs(a, b).iter_edges()) == [(1, 2)]

    def test_disjoint(self):
        a = Graph([(0, 1)])
        b = Graph([(2, 3)])
        assert intersect_graphs(a, b).num_edges == 0

    @given(small_graphs(), small_graphs())
    def test_commutative(self, a, b):
        assert intersect_graphs(a, b) == intersect_graphs(b, a)

    @given(small_graphs())
    def test_idempotent(self, graph):
        result = intersect_graphs(graph, graph)
        assert set(result.iter_edges()) == set(graph.iter_edges())
