"""Tests for network serialization."""

from __future__ import annotations

import json

import pytest
from hypothesis import given

from repro.errors import NetworkFormatError
from repro.network.io import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from tests.conftest import database_networks


class TestRoundTrip:
    def test_toy_round_trip(self, toy_network, tmp_path):
        path = tmp_path / "toy.json"
        save_network(toy_network, path)
        loaded = load_network(path)
        assert loaded.graph == toy_network.graph
        assert set(loaded.databases) == set(toy_network.databases)
        for v in toy_network.databases:
            original = sorted(
                sorted(t) for t in toy_network.databases[v].transactions()
            )
            restored = sorted(
                sorted(t) for t in loaded.databases[v].transactions()
            )
            assert original == restored
        assert loaded.vertex_labels == toy_network.vertex_labels
        assert loaded.item_labels == toy_network.item_labels

    @given(database_networks())
    def test_dict_round_trip(self, network):
        document = network_to_dict(network)
        restored = network_from_dict(json.loads(json.dumps(document)))
        assert restored.graph == network.graph
        for v, db in network.databases.items():
            assert restored.databases[v].num_transactions == db.num_transactions
            for item in db.items():
                assert restored.databases[v].frequency((item,)) == db.frequency(
                    (item,)
                )


class TestErrors:
    def test_wrong_format(self):
        with pytest.raises(NetworkFormatError):
            network_from_dict({"format": "something-else"})

    def test_wrong_version(self):
        with pytest.raises(NetworkFormatError):
            network_from_dict({"format": "repro-dbnetwork", "version": 99})

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(NetworkFormatError):
            load_network(path)
