"""Tests for network statistics (Table 2 quantities)."""

from __future__ import annotations

from repro.network.stats import network_statistics


class TestNetworkStatistics:
    def test_toy_counts(self, toy_network):
        stats = network_statistics(toy_network)
        assert stats.num_vertices == 9
        assert stats.num_edges == 17
        assert stats.num_transactions == 9 * 10
        # Each transaction holds exactly one item in the toy network.
        assert stats.num_items_total == 90
        # p, q, and one filler item per vertex with spare capacity after
        # its p- and q-transactions (vertex 9 has none: 3 + 7 = 10).
        assert stats.num_items_unique == 2 + 8

    def test_triangles_optional(self, toy_network):
        with_triangles = network_statistics(toy_network)
        without = network_statistics(toy_network, count_triangles_too=False)
        assert with_triangles.num_triangles > 0
        assert without.num_triangles == 0

    def test_derived_quantities(self, toy_network):
        stats = network_statistics(toy_network)
        assert stats.average_degree == 2 * 17 / 9
        assert stats.average_transactions_per_vertex == 10.0

    def test_as_row_keys(self, toy_network):
        row = network_statistics(toy_network).as_row()
        assert set(row) == {
            "#Vertices",
            "#Edges",
            "#Transactions",
            "#Items (total)",
            "#Items (unique)",
        }

    def test_empty_network(self):
        from repro.network.dbnetwork import DatabaseNetwork

        stats = network_statistics(DatabaseNetwork())
        assert stats.num_vertices == 0
        assert stats.average_degree == 0.0
        assert stats.average_transactions_per_vertex == 0.0
