"""Tests for network validation."""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.network.dbnetwork import DatabaseNetwork
from repro.network.validate import has_errors, validate_network
from repro.txdb.database import TransactionDatabase


def _codes(issues):
    return {issue.code for issue in issues}


class TestValidateNetwork:
    def test_clean_network(self, toy_network):
        issues = validate_network(toy_network)
        assert not has_errors(issues)
        assert "vertices-without-database" not in _codes(issues)

    def test_vertex_without_database_warned(self):
        network = DatabaseNetwork(Graph([(0, 1)]))
        network.databases[0] = TransactionDatabase([{1}])
        issues = validate_network(network)
        assert "vertices-without-database" in _codes(issues)
        assert not has_errors(issues)

    def test_empty_database_warned(self):
        network = DatabaseNetwork(Graph([(0, 1)]))
        network.databases[0] = TransactionDatabase()
        assert "empty-databases" in _codes(validate_network(network))

    def test_dangling_database_is_error(self):
        network = DatabaseNetwork(Graph([(0, 1)]))
        network.databases[99] = TransactionDatabase([{1}])  # bypass ctor
        issues = validate_network(network)
        assert "db-unknown-vertex" in _codes(issues)
        assert has_errors(issues)

    def test_surplus_label_is_informational(self):
        """Samples share parent label maps, so surplus labels are benign."""
        network = DatabaseNetwork(Graph([(0, 1)]))
        network.vertex_labels[7] = "ghost"
        issues = validate_network(network)
        assert not has_errors(issues)
        assert "surplus-vertex-labels" in _codes(issues)

    def test_isolated_vertices_info(self):
        graph = Graph([(0, 1)])
        graph.add_vertex(5)
        network = DatabaseNetwork(graph)
        codes = _codes(validate_network(network))
        assert "isolated-vertices" in codes

    def test_unused_item_labels_warned(self):
        network = DatabaseNetwork(
            Graph([(0, 1)]),
            {0: TransactionDatabase([{1}])},
            item_labels={1: "used", 99: "never"},
        )
        assert "unused-item-labels" in _codes(validate_network(network))

    def test_errors_sorted_first(self):
        network = DatabaseNetwork(Graph([(0, 1)]))
        network.databases[99] = TransactionDatabase([{1}])
        graph_isolated = network.graph
        graph_isolated.add_vertex(5)
        issues = validate_network(network)
        severities = [issue.severity for issue in issues]
        assert severities == sorted(
            severities, key=["error", "warning", "info"].index
        )

    def test_str_format(self):
        network = DatabaseNetwork(Graph([(0, 1)]))
        network.databases[99] = TransactionDatabase([{1}])
        text = str(validate_network(network)[0])
        assert text.startswith("[error]")
