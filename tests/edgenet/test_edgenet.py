"""Tests for the edge-database-network extension (the paper's future work)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edgenet.cohesion import (
    edge_theme_cohesion,
    edge_theme_cohesion_table,
)
from repro.edgenet.finder import (
    EdgeThemeCommunityFinder,
    edge_tcfi,
    maximal_edge_pattern_truss,
)
from repro.edgenet.network import EdgeDatabaseNetwork
from repro.edgenet.theme import induce_edge_theme_network
from repro.errors import DatabaseError, GraphError, MiningError
from repro.graphs.graph import Graph
from repro.graphs.ktruss import k_truss
from repro.txdb.database import TransactionDatabase
from tests.conftest import small_graphs


def _toy_edge_network() -> EdgeDatabaseNetwork:
    """Triangle 1-2-3 strongly themed with item 0; pendant edge 3-4 with a
    weak theme; triangle 5-6-7 themed with item 1."""
    network = EdgeDatabaseNetwork()
    for u, v in [(1, 2), (2, 3), (1, 3)]:
        for _ in range(4):
            network.add_transaction(u, v, [0])
        network.add_transaction(u, v, [9])
    network.add_transaction(3, 4, [0])
    network.add_transaction(3, 4, [8])
    for u, v in [(5, 6), (6, 7), (5, 7)]:
        network.add_transaction(u, v, [1])
    return network


class TestContainer:
    def test_counts(self):
        network = _toy_edge_network()
        assert network.num_vertices == 7
        assert network.num_edges == 7
        assert len(network.databases) == 7

    def test_frequency(self):
        network = _toy_edge_network()
        assert network.frequency(1, 2, (0,)) == pytest.approx(0.8)
        assert network.frequency(2, 1, (0,)) == pytest.approx(0.8)  # canonical
        assert network.frequency(3, 4, (0,)) == pytest.approx(0.5)
        assert network.frequency(5, 6, (0,)) == 0.0

    def test_item_universe(self):
        assert _toy_edge_network().item_universe() == [0, 1, 8, 9]

    def test_database_accessor(self):
        network = _toy_edge_network()
        assert network.database(1, 2).num_transactions == 5
        with pytest.raises(DatabaseError):
            network.database(1, 7)

    def test_database_on_unknown_edge_rejected(self):
        graph = Graph([(1, 2)])
        with pytest.raises(GraphError):
            EdgeDatabaseNetwork(
                graph, {(3, 4): TransactionDatabase([{1}])}
            )


class TestThemeInduction:
    def test_keeps_positive_frequency_edges(self):
        network = _toy_edge_network()
        graph, frequencies = induce_edge_theme_network(network, (0,))
        assert set(graph.iter_edges()) == {(1, 2), (1, 3), (2, 3), (3, 4)}
        assert frequencies[(1, 2)] == pytest.approx(0.8)

    def test_carrier_restricts(self):
        network = _toy_edge_network()
        carrier = Graph([(1, 2)])
        graph, frequencies = induce_edge_theme_network(
            network, (0,), carrier=carrier
        )
        assert set(graph.iter_edges()) == {(1, 2)}


class TestCohesion:
    def test_triangle_cohesion_is_min_of_edges(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        frequencies = {(1, 2): 0.8, (1, 3): 0.5, (2, 3): 0.3}
        assert edge_theme_cohesion(graph, frequencies, 1, 2) == pytest.approx(
            0.3
        )

    def test_unit_frequencies_are_triangle_counts(self):
        graph = Graph([(1, 2), (2, 3), (1, 3), (1, 4), (2, 4)])
        ones = {e: 1.0 for e in graph.iter_edges()}
        table = edge_theme_cohesion_table(graph, ones)
        assert table[(1, 2)] == 2.0
        assert table[(1, 3)] == 1.0


class TestEdgeMPTD:
    def test_strong_triangle_survives(self):
        network = _toy_edge_network()
        graph, frequencies = induce_edge_theme_network(network, (0,))
        truss, _ = maximal_edge_pattern_truss(graph, frequencies, 0.4)
        assert set(truss.iter_edges()) == {(1, 2), (1, 3), (2, 3)}

    def test_pendant_edge_always_removed(self):
        """Edge (3,4) is in no triangle → cohesion 0 → gone at α = 0."""
        network = _toy_edge_network()
        graph, frequencies = induce_edge_theme_network(network, (0,))
        truss, _ = maximal_edge_pattern_truss(graph, frequencies, 0.0)
        assert not truss.has_edge(3, 4)

    def test_negative_alpha_rejected(self):
        with pytest.raises(MiningError):
            maximal_edge_pattern_truss(Graph(), {}, -1.0)

    @given(small_graphs())
    @settings(deadline=None)
    def test_unit_frequency_ktruss_equivalence(self, graph):
        """With f_e ≡ 1 and α = k - 3 the edge pattern truss is the
        k-truss — the Section 3.2 equivalence carries to edge networks."""
        ones = {e: 1.0 for e in graph.iter_edges()}
        for k in (3, 4):
            truss, _ = maximal_edge_pattern_truss(graph, ones, k - 3)
            expected = k_truss(graph, k)
            assert set(truss.iter_edges()) == set(expected.iter_edges())


class TestEdgeTCFI:
    def test_finds_both_themes(self):
        result = edge_tcfi(_toy_edge_network(), 0.2)
        assert (0,) in result
        assert (1,) in result
        assert result[(0,)].vertices() == {1, 2, 3}
        assert result[(1,)].vertices() == {5, 6, 7}

    def test_alpha_monotone(self):
        network = _toy_edge_network()
        low = edge_tcfi(network, 0.0)
        high = edge_tcfi(network, 0.5)
        assert set(high) <= set(low)

    def test_max_length(self):
        result = edge_tcfi(_toy_edge_network(), 0.0, max_length=1)
        assert result.max_pattern_length() <= 1

    def test_negative_alpha_rejected(self):
        with pytest.raises(MiningError):
            edge_tcfi(_toy_edge_network(), -0.1)

    @settings(deadline=None, max_examples=15)
    @given(st.randoms(use_true_random=False))
    def test_intersection_pruning_is_exact(self, rng):
        """Level-wise with intersection pruning must equal brute force:
        run every pattern's theme network through MPTD directly."""
        import itertools

        network = EdgeDatabaseNetwork()
        vertices = list(range(6))
        edges = list(itertools.combinations(vertices, 2))
        rng.shuffle(edges)
        for u, v in edges[:10]:
            for _ in range(rng.randint(1, 3)):
                items = rng.sample(range(3), rng.randint(1, 2))
                network.add_transaction(u, v, items)

        alpha = rng.choice([0.0, 0.2])
        mined = edge_tcfi(network, alpha)

        items = network.item_universe()
        expected = {}
        for length in (1, 2, 3):
            for combo in itertools.combinations(items, length):
                graph, freqs = induce_edge_theme_network(network, combo)
                truss, _ = maximal_edge_pattern_truss(graph, freqs, alpha)
                if truss.num_edges:
                    expected[combo] = set(truss.iter_edges())
        assert {p: mined[p].edges() for p in mined} == expected


class TestFacade:
    def test_find_communities(self):
        finder = EdgeThemeCommunityFinder(_toy_edge_network())
        communities = finder.find_communities(alpha=0.2)
        themes = {c.pattern for c in communities}
        assert (0,) in themes
        assert (1,) in themes
        assert all(c.size >= 3 for c in communities)
