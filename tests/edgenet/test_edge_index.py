"""Tests for edge-network decomposition, TC-Tree, and serialization."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edgenet.decomposition import decompose_edge_network_pattern
from repro.edgenet.finder import edge_tcfi, maximal_edge_pattern_truss
from repro.edgenet.index import build_edge_tc_tree
from repro.edgenet.io import (
    edge_network_from_dict,
    edge_network_to_dict,
    load_edge_network,
    save_edge_network,
)
from repro.edgenet.network import EdgeDatabaseNetwork
from repro.edgenet.theme import induce_edge_theme_network
from repro.errors import NetworkFormatError, TCIndexError
from tests.edgenet.test_edgenet import _toy_edge_network


@st.composite
def edge_networks(draw):
    """Small random edge database networks."""
    import itertools

    n = draw(st.integers(min_value=3, max_value=6))
    possible = list(itertools.combinations(range(n), 2))
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=10,
                 unique=True)
    )
    network = EdgeDatabaseNetwork()
    for u, v in edges:
        count = draw(st.integers(min_value=1, max_value=3))
        for _ in range(count):
            items = draw(
                st.sets(st.integers(min_value=0, max_value=2),
                        min_size=1, max_size=3)
            )
            network.add_transaction(u, v, items)
    return network


class TestEdgeDecomposition:
    def test_toy_theme_0(self):
        decomposition = decompose_edge_network_pattern(
            _toy_edge_network(), (0,)
        )
        # The strong triangle survives α = 0 (pendant edge 3-4 has no
        # triangle); one level at its uniform cohesion 0.8.
        assert decomposition.num_edges == 3
        assert decomposition.thresholds() == [pytest.approx(0.8)]
        assert decomposition.max_alpha == pytest.approx(0.8)

    def test_missing_pattern_empty(self):
        decomposition = decompose_edge_network_pattern(
            _toy_edge_network(), (777,)
        )
        assert decomposition.is_empty()

    @settings(deadline=None, max_examples=25)
    @given(edge_networks(), st.sampled_from([0.0, 0.2, 0.5]))
    def test_reconstruction_matches_direct(self, network, alpha):
        """Equation 1 round-trip in the edge model."""
        for item in network.item_universe():
            decomposition = decompose_edge_network_pattern(network, (item,))
            reconstructed = set(
                decomposition.graph_at(alpha).iter_edges()
            )
            graph, freqs = induce_edge_theme_network(network, (item,))
            direct, _ = maximal_edge_pattern_truss(graph, freqs, alpha)
            assert reconstructed == set(direct.iter_edges())

    @settings(deadline=None, max_examples=20)
    @given(edge_networks())
    def test_levels_ascending_disjoint(self, network):
        for item in network.item_universe():
            decomposition = decompose_edge_network_pattern(network, (item,))
            thresholds = decomposition.thresholds()
            assert thresholds == sorted(thresholds)
            seen = set()
            for level in decomposition.levels:
                assert level.removed_edges
                for edge in level.removed_edges:
                    assert edge not in seen
                    seen.add(edge)


class TestEdgeTCTree:
    def test_toy_tree(self):
        tree = build_edge_tc_tree(_toy_edge_network())
        # Item 9 rides on the strong triangle's edges with frequency 0.2,
        # so it also forms an (α = 0) truss; 8 only sits on the pendant
        # edge and never closes a triangle.
        assert set(tree.patterns()) == {(0,), (1,), (9,)}

    def test_query_modes(self):
        tree = build_edge_tc_tree(_toy_edge_network())
        all_answers = tree.query(alpha=0.0)
        assert set(all_answers.patterns()) == {(0,), (1,), (9,)}
        only_0 = tree.query(pattern=(0,))
        assert only_0.patterns() == [(0,)]
        # Theme 1's triangle has uniform frequency 1.0 → cohesion 1.0;
        # it survives α = 0.9 while theme 0 (cohesion 0.8) does not.
        high = tree.query(alpha=0.9)
        assert high.patterns() == [(1,)]

    def test_query_negative_alpha(self):
        tree = build_edge_tc_tree(_toy_edge_network())
        with pytest.raises(TCIndexError):
            tree.query(alpha=-1.0)

    def test_query_answer_counts_item_pruned_children(self):
        """The Figure 5 VN contract: a touched child counts as visited
        even when the item prune discards it (same accounting as
        ``query_tc_tree``)."""
        tree = build_edge_tc_tree(_toy_edge_network())
        everything = tree.query(alpha=0.0)
        assert everything.visited_nodes == tree.num_nodes
        assert everything.retrieved_nodes == tree.num_nodes
        only_0 = tree.query(pattern=(0,))
        # All three layer-1 children are touched; two are item-pruned.
        assert only_0.visited_nodes == 3
        assert only_0.retrieved_nodes == 1

    def test_query_tuple_shape_is_deprecated_shim(self):
        tree = build_edge_tc_tree(_toy_edge_network())
        answer = tree.query(alpha=0.0)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            pairs = list(answer)
        assert {p for p, _ in pairs} == {(0,), (1,), (9,)}
        for _pattern, graph in answer.legacy_pairs():  # explicit: no warn
            assert graph.num_edges > 0
        with pytest.warns(DeprecationWarning):
            first = answer[0]
        assert first in answer.legacy_pairs()

    def test_node_requires_nonempty_decomposition(self):
        from repro.edgenet.decomposition import EdgeTrussDecomposition
        from repro.edgenet.index import EdgeTCNode

        with pytest.raises(TCIndexError, match="non-empty"):
            EdgeTCNode(3, (3,), None)
        with pytest.raises(TCIndexError, match="non-empty"):
            EdgeTCNode(3, (3,), EdgeTrussDecomposition(pattern=(3,)))
        # The virtual root carries neither an item nor a decomposition.
        assert EdgeTCNode(None, (), None).item is None

    def test_query_communities(self):
        tree = build_edge_tc_tree(_toy_edge_network())
        communities = tree.query_communities(alpha=0.0)
        members = {frozenset(m) for _, m in communities}
        assert frozenset({1, 2, 3}) in members
        assert frozenset({5, 6, 7}) in members

    @settings(deadline=None, max_examples=20)
    @given(edge_networks())
    def test_tree_matches_mining(self, network):
        """Tree completeness: indexed patterns = edge_tcfi at α = 0 and
        every query equals fresh mining."""
        tree = build_edge_tc_tree(network)
        mined = edge_tcfi(network, 0.0)
        assert set(tree.patterns()) == set(mined.patterns())
        for alpha in (0.0, 0.3):
            answer = tree.query(alpha=alpha)
            queried = {t.pattern: t.edges() for t in answer.trusses}
            fresh = edge_tcfi(network, alpha)
            assert queried == {p: fresh[p].edges() for p in fresh}

    @settings(deadline=None, max_examples=10)
    @given(edge_networks())
    def test_max_length_cap(self, network):
        capped = build_edge_tc_tree(network, max_length=1)
        assert all(len(p) <= 1 for p in capped.patterns())


class TestEdgeBuildReuse:
    def test_reused_layer1_decompositions_keep_identity(self):
        from repro.edgenet.decomposition import (
            decompose_edge_network_pattern,
        )

        network = _toy_edge_network()
        cached = decompose_edge_network_pattern(
            network, (0,), capture_carrier=True
        )
        tree = build_edge_tc_tree(network, reuse={(0,): cached})
        assert tree.find_node((0,)).decomposition is cached

    def test_reuse_honored_at_one_worker_process_fallback(self):
        """The workers<=1 fallback of the process path must honor reuse
        exactly like the fanned-out path (it used to drop it)."""
        from repro.edgenet.decomposition import (
            decompose_edge_network_pattern,
        )
        from repro.index.parallel import build_tc_tree_process

        network = _toy_edge_network()
        cached = decompose_edge_network_pattern(
            network, (1,), capture_carrier=True
        )
        tree = build_tc_tree_process(
            network, workers=1, reuse={(1,): cached}, model="edge"
        )
        assert tree.find_node((1,)).decomposition is cached

    def test_legacy_oracle_rejects_reuse(self):
        network = _toy_edge_network()
        with pytest.raises(TCIndexError, match="oracle"):
            build_edge_tc_tree(
                network, backend="legacy", reuse={(0,): object()}
            )


class TestLegacyFrontierMemoization:
    def test_sibling_carriers_rebuilt_at_most_once(self, monkeypatch):
        """Regression for the per-pairing ``graph_at(0.0)`` rebuild: the
        legacy frontier must memoize lazily materialized sibling
        carriers, so the number of α = 0 reconstructions during a build
        is bounded by two per node (once as the expanding node, once as
        a pairing sibling) — not by the number of sibling pairings."""
        from repro.edgenet.decomposition import EdgeTrussDecomposition

        network = _toy_dense_network()
        calls = {"n": 0}
        original = EdgeTrussDecomposition.graph_at

        def counting_graph_at(self, alpha):
            if alpha == 0.0:
                calls["n"] += 1
            return original(self, alpha)

        monkeypatch.setattr(
            EdgeTrussDecomposition, "graph_at", counting_graph_at
        )
        tree = build_edge_tc_tree(network, backend="legacy")
        num_nodes = tree.num_nodes
        assert num_nodes >= 7  # the workload actually exercises pairing
        assert calls["n"] <= 2 * num_nodes


def _toy_dense_network() -> EdgeDatabaseNetwork:
    """A clique whose edges all share several items — every layer-1 node
    pairs with every later sibling, so an unmemoized frontier would
    rebuild carriers per pairing."""
    network = EdgeDatabaseNetwork()
    for u in range(6):
        for v in range(u + 1, 6):
            network.add_transaction(u, v, [0, 1, 2, 3])
            network.add_transaction(u, v, [0, 1, 2])
    return network


class TestEdgeNetworkIO:
    def test_round_trip_file(self, tmp_path):
        network = _toy_edge_network()
        path = tmp_path / "edge.json"
        save_edge_network(network, path)
        loaded = load_edge_network(path)
        assert loaded.graph == network.graph
        assert set(loaded.databases) == set(network.databases)
        for edge in network.databases:
            assert loaded.frequency(*edge, (0,)) == network.frequency(
                *edge, (0,)
            )

    @settings(deadline=None, max_examples=20)
    @given(edge_networks())
    def test_round_trip_dict(self, network):
        document = json.loads(json.dumps(edge_network_to_dict(network)))
        restored = edge_network_from_dict(document)
        assert restored.graph == network.graph
        for edge, db in network.databases.items():
            assert restored.databases[edge].num_transactions == (
                db.num_transactions
            )

    def test_bad_format(self):
        with pytest.raises(NetworkFormatError):
            edge_network_from_dict({"format": "nope"})

    def test_bad_edge_key(self):
        with pytest.raises(NetworkFormatError):
            edge_network_from_dict(
                {
                    "format": "repro-edgenetwork",
                    "version": 1,
                    "vertices": [0, 1],
                    "edges": [[0, 1]],
                    "databases": {"zero~one": [[1]]},
                }
            )

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{{{")
        with pytest.raises(NetworkFormatError):
            load_edge_network(path)
