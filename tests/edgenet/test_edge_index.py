"""Tests for edge-network decomposition, TC-Tree, and serialization."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edgenet.decomposition import decompose_edge_network_pattern
from repro.edgenet.finder import edge_tcfi, maximal_edge_pattern_truss
from repro.edgenet.index import build_edge_tc_tree
from repro.edgenet.io import (
    edge_network_from_dict,
    edge_network_to_dict,
    load_edge_network,
    save_edge_network,
)
from repro.edgenet.network import EdgeDatabaseNetwork
from repro.edgenet.theme import induce_edge_theme_network
from repro.errors import NetworkFormatError, TCIndexError
from tests.edgenet.test_edgenet import _toy_edge_network


@st.composite
def edge_networks(draw):
    """Small random edge database networks."""
    import itertools

    n = draw(st.integers(min_value=3, max_value=6))
    possible = list(itertools.combinations(range(n), 2))
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=10,
                 unique=True)
    )
    network = EdgeDatabaseNetwork()
    for u, v in edges:
        count = draw(st.integers(min_value=1, max_value=3))
        for _ in range(count):
            items = draw(
                st.sets(st.integers(min_value=0, max_value=2),
                        min_size=1, max_size=3)
            )
            network.add_transaction(u, v, items)
    return network


class TestEdgeDecomposition:
    def test_toy_theme_0(self):
        decomposition = decompose_edge_network_pattern(
            _toy_edge_network(), (0,)
        )
        # The strong triangle survives α = 0 (pendant edge 3-4 has no
        # triangle); one level at its uniform cohesion 0.8.
        assert decomposition.num_edges == 3
        assert decomposition.thresholds() == [pytest.approx(0.8)]
        assert decomposition.max_alpha == pytest.approx(0.8)

    def test_missing_pattern_empty(self):
        decomposition = decompose_edge_network_pattern(
            _toy_edge_network(), (777,)
        )
        assert decomposition.is_empty()

    @settings(deadline=None, max_examples=25)
    @given(edge_networks(), st.sampled_from([0.0, 0.2, 0.5]))
    def test_reconstruction_matches_direct(self, network, alpha):
        """Equation 1 round-trip in the edge model."""
        for item in network.item_universe():
            decomposition = decompose_edge_network_pattern(network, (item,))
            reconstructed = set(
                decomposition.graph_at(alpha).iter_edges()
            )
            graph, freqs = induce_edge_theme_network(network, (item,))
            direct, _ = maximal_edge_pattern_truss(graph, freqs, alpha)
            assert reconstructed == set(direct.iter_edges())

    @settings(deadline=None, max_examples=20)
    @given(edge_networks())
    def test_levels_ascending_disjoint(self, network):
        for item in network.item_universe():
            decomposition = decompose_edge_network_pattern(network, (item,))
            thresholds = decomposition.thresholds()
            assert thresholds == sorted(thresholds)
            seen = set()
            for level in decomposition.levels:
                assert level.removed_edges
                for edge in level.removed_edges:
                    assert edge not in seen
                    seen.add(edge)


class TestEdgeTCTree:
    def test_toy_tree(self):
        tree = build_edge_tc_tree(_toy_edge_network())
        # Item 9 rides on the strong triangle's edges with frequency 0.2,
        # so it also forms an (α = 0) truss; 8 only sits on the pendant
        # edge and never closes a triangle.
        assert set(tree.patterns()) == {(0,), (1,), (9,)}

    def test_query_modes(self):
        tree = build_edge_tc_tree(_toy_edge_network())
        all_answers = tree.query(alpha=0.0)
        assert {p for p, _ in all_answers} == {(0,), (1,), (9,)}
        only_0 = tree.query(pattern=(0,))
        assert {p for p, _ in only_0} == {(0,)}
        # Theme 1's triangle has uniform frequency 1.0 → cohesion 1.0;
        # it survives α = 0.9 while theme 0 (cohesion 0.8) does not.
        high = tree.query(alpha=0.9)
        assert {p for p, _ in high} == {(1,)}

    def test_query_negative_alpha(self):
        tree = build_edge_tc_tree(_toy_edge_network())
        with pytest.raises(TCIndexError):
            tree.query(alpha=-1.0)

    def test_query_communities(self):
        tree = build_edge_tc_tree(_toy_edge_network())
        communities = tree.query_communities(alpha=0.0)
        members = {frozenset(m) for _, m in communities}
        assert frozenset({1, 2, 3}) in members
        assert frozenset({5, 6, 7}) in members

    @settings(deadline=None, max_examples=20)
    @given(edge_networks())
    def test_tree_matches_mining(self, network):
        """Tree completeness: indexed patterns = edge_tcfi at α = 0 and
        every query equals fresh mining."""
        tree = build_edge_tc_tree(network)
        mined = edge_tcfi(network, 0.0)
        assert set(tree.patterns()) == set(mined.patterns())
        for alpha in (0.0, 0.3):
            queried = {p: set(g.iter_edges()) for p, g in tree.query(alpha=alpha)}
            fresh = edge_tcfi(network, alpha)
            assert queried == {p: fresh[p].edges() for p in fresh}

    @settings(deadline=None, max_examples=10)
    @given(edge_networks())
    def test_max_length_cap(self, network):
        capped = build_edge_tc_tree(network, max_length=1)
        assert all(len(p) <= 1 for p in capped.patterns())


class TestEdgeNetworkIO:
    def test_round_trip_file(self, tmp_path):
        network = _toy_edge_network()
        path = tmp_path / "edge.json"
        save_edge_network(network, path)
        loaded = load_edge_network(path)
        assert loaded.graph == network.graph
        assert set(loaded.databases) == set(network.databases)
        for edge in network.databases:
            assert loaded.frequency(*edge, (0,)) == network.frequency(
                *edge, (0,)
            )

    @settings(deadline=None, max_examples=20)
    @given(edge_networks())
    def test_round_trip_dict(self, network):
        document = json.loads(json.dumps(edge_network_to_dict(network)))
        restored = edge_network_from_dict(document)
        assert restored.graph == network.graph
        for edge, db in network.databases.items():
            assert restored.databases[edge].num_transactions == (
                db.num_transactions
            )

    def test_bad_format(self):
        with pytest.raises(NetworkFormatError):
            edge_network_from_dict({"format": "nope"})

    def test_bad_edge_key(self):
        with pytest.raises(NetworkFormatError):
            edge_network_from_dict(
                {
                    "format": "repro-edgenetwork",
                    "version": 1,
                    "vertices": [0, 1],
                    "edges": [[0, 1]],
                    "databases": {"zero~one": [[1]]},
                }
            )

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{{{")
        with pytest.raises(NetworkFormatError):
            load_edge_network(path)
