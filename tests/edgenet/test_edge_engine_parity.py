"""Cross-engine parity for the edge TC-Tree (mirrors the vertex suite in
``tests/graphs/test_projection_properties.py``).

Convention: the **legacy dict-of-sets serial build is the cross-engine
oracle** — every CSR-engine backend must reproduce its patterns and
per-level removed-edge sets exactly, and its thresholds within the
cohesion tolerance (the engines sum cohesion in different orders).
*Within* the CSR engine the contract is stricter: serial, thread, and
process builds, with projection on or off, must be **bit-identical**
(exact threshold floats, exact level membership, exact frequencies) —
derived triangle indexes are element-identical to fresh enumeration and
the route choice never depends on the projection switch.

Cutover constants are forced down so hypothesis-sized networks actually
exercise the CSR engine, masked carriers, and derived indexes.
"""

from __future__ import annotations

from contextlib import contextmanager

import pytest
from hypothesis import given, settings

import repro.edgenet.decomposition as edge_decomposition
from repro.edgenet.decomposition import decompose_edge_network_pattern
from repro.edgenet.index import build_edge_tc_tree
from repro.graphs.support import projection
from tests.edgenet.test_edge_index import edge_networks


@contextmanager
def forced_edge_csr_cutovers():
    """Shrink the edge-engine cutovers so tiny networks take the fast
    path (a context manager so it wraps every hypothesis example)."""
    saved = (
        edge_decomposition.EDGE_CSR_MIN_EDGES,
        edge_decomposition.CSR_NET_REUSE_MIN_EDGES,
    )
    edge_decomposition.EDGE_CSR_MIN_EDGES = 1
    edge_decomposition.CSR_NET_REUSE_MIN_EDGES = 3
    try:
        yield
    finally:
        (
            edge_decomposition.EDGE_CSR_MIN_EDGES,
            edge_decomposition.CSR_NET_REUSE_MIN_EDGES,
        ) = saved


def assert_edge_trees_bit_identical(expected, actual):
    """Exact equality: patterns, thresholds, level membership, freqs."""
    assert expected.patterns() == actual.patterns()
    for pattern in expected.patterns():
        a = expected.find_node(pattern).decomposition
        b = actual.find_node(pattern).decomposition
        assert a.thresholds() == b.thresholds()
        assert a.frequencies == b.frequencies
        assert [
            sorted(level.removed_edges) for level in a.levels
        ] == [sorted(level.removed_edges) for level in b.levels]


def assert_matches_legacy_oracle(oracle, actual):
    """Cross-engine contract: exact patterns, per-level edge sets, and
    frequencies; thresholds to the float tolerance."""
    assert oracle.patterns() == actual.patterns()
    for pattern in oracle.patterns():
        a = oracle.find_node(pattern).decomposition
        b = actual.find_node(pattern).decomposition
        assert len(a.levels) == len(b.levels)
        assert a.frequencies == b.frequencies
        for expected_level, actual_level in zip(a.levels, b.levels):
            assert actual_level.alpha == pytest.approx(expected_level.alpha)
            assert (
                sorted(actual_level.removed_edges)
                == sorted(expected_level.removed_edges)
            )


class TestEdgeTreeParity:
    @settings(deadline=None, max_examples=25)
    @given(edge_networks())
    def test_serial_projection_matches_oracle(self, network):
        with forced_edge_csr_cutovers():
            oracle = build_edge_tc_tree(network, backend="legacy")
            with projection(False):
                off = build_edge_tc_tree(network, backend="serial")
            with projection(True):
                on = build_edge_tc_tree(network, backend="serial")
        assert_edge_trees_bit_identical(off, on)
        assert_matches_legacy_oracle(oracle, on)

    @settings(deadline=None, max_examples=5)
    @given(edge_networks())
    def test_all_backends_match_oracle(self, network):
        with forced_edge_csr_cutovers():
            oracle = build_edge_tc_tree(network, backend="legacy")
            with projection(True):
                serial = build_edge_tc_tree(network, backend="serial")
                threaded = build_edge_tc_tree(
                    network, workers=4, backend="thread"
                )
                process = build_edge_tc_tree(network, workers=2)
        assert_edge_trees_bit_identical(serial, threaded)
        assert_edge_trees_bit_identical(serial, process)
        assert_matches_legacy_oracle(oracle, serial)

    @settings(deadline=None, max_examples=10)
    @given(edge_networks())
    def test_parity_at_production_cutovers(self, network):
        """Without forced cutovers the tiny-graph legacy branch engages —
        the oracle contract must hold there too."""
        oracle = build_edge_tc_tree(network, backend="legacy")
        with projection(False):
            off = build_edge_tc_tree(network, backend="serial")
        with projection(True):
            on = build_edge_tc_tree(network, backend="serial")
        assert_edge_trees_bit_identical(off, on)
        assert_matches_legacy_oracle(oracle, on)

    def test_max_length_matches_across_backends(self):
        from tests.edgenet.test_edge_index import _toy_dense_network

        network = _toy_dense_network()
        with forced_edge_csr_cutovers():
            oracle = build_edge_tc_tree(
                network, max_length=2, backend="legacy"
            )
            capped = build_edge_tc_tree(network, max_length=2)
            process = build_edge_tc_tree(network, max_length=2, workers=2)
        assert_matches_legacy_oracle(oracle, capped)
        assert_edge_trees_bit_identical(capped, process)
        assert all(len(p) <= 2 for p in capped.patterns())


class TestEdgeRoutes:
    def test_children_take_the_carrier_projection_route(self):
        from tests.edgenet.test_edge_index import _toy_dense_network

        network = _toy_dense_network()
        with forced_edge_csr_cutovers():
            tree = build_edge_tc_tree(network)
        deep = [n for n in tree.iter_nodes() if len(n.pattern) >= 2]
        assert deep
        assert all(
            n.decomposition.route == "carrier-projected+csr" for n in deep
        )
        layer1 = [n for n in tree.iter_nodes() if len(n.pattern) == 1]
        assert all(
            n.decomposition.route in ("net-full+csr", "net-projected+csr")
            for n in layer1
        )

    def test_routes_do_not_depend_on_projection_switch(self):
        from tests.edgenet.test_edge_index import _toy_dense_network

        network = _toy_dense_network()
        with forced_edge_csr_cutovers():
            with projection(True):
                on = build_edge_tc_tree(network)
            with projection(False):
                off = build_edge_tc_tree(network)
        routes_on = {
            n.pattern: n.decomposition.route for n in on.iter_nodes()
        }
        routes_off = {
            n.pattern: n.decomposition.route for n in off.iter_nodes()
        }
        assert routes_on == routes_off

    def test_forced_csr_engine_matches_auto(self):
        from tests.edgenet.test_edge_index import _toy_dense_network

        network = _toy_dense_network()
        for item in network.item_universe():
            auto = decompose_edge_network_pattern(network, (item,))
            forced = decompose_edge_network_pattern(
                network, (item,), engine="csr"
            )
            assert [
                sorted(level.removed_edges) for level in auto.levels
            ] == [sorted(level.removed_edges) for level in forced.levels]
            for a, b in zip(auto.thresholds(), forced.thresholds()):
                assert a == pytest.approx(b)
