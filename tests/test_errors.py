"""Exception-taxonomy contract: hierarchy and back-compat aliases."""

import pytest

from repro.errors import (
    AnalysisError,
    BadRequestError,
    ReproError,
    ServeError,
    TCIndexError,
)


class TestTaxonomy:
    def test_all_library_errors_are_repro_errors(self):
        for cls in (AnalysisError, BadRequestError, ServeError, TCIndexError):
            assert issubclass(cls, ReproError)

    def test_bad_request_is_a_serve_error(self):
        assert issubclass(BadRequestError, ServeError)


class TestIndexErrorRename:
    def test_old_name_still_imports(self):
        import repro.errors as errors

        with pytest.warns(DeprecationWarning, match="TCIndexError"):
            legacy = errors.IndexError_
        assert legacy is TCIndexError

    def test_unknown_attribute_raises(self):
        import repro.errors as errors

        with pytest.raises(AttributeError, match="no attribute"):
            errors.not_a_real_name  # noqa: B018 — attribute access is the test
