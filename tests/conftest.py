"""Shared fixtures and hypothesis strategies.

The property-based tests need random *small* database networks: the paper's
theorems (anti-monotonicity, intersection, decomposition) are universally
quantified, so small adversarial instances are the right search space.
"""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.datasets.toy import toy_database_network
from repro.graphs.graph import Graph
from repro.network.dbnetwork import DatabaseNetwork
from repro.txdb.database import TransactionDatabase


# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------

@pytest.fixture(scope="session")
def toy_network() -> DatabaseNetwork:
    """The Figure 1 toy network (session-scoped; it is never mutated)."""
    return toy_database_network()


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------

@st.composite
def small_graphs(draw, max_vertices: int = 8, min_edges: int = 0):
    """A random simple graph on at most ``max_vertices`` vertices."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=min_edges, unique=True)
    )
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


@st.composite
def frequency_maps(draw, graph: Graph):
    """Random frequencies in (0, 1] for every vertex of ``graph``."""
    steps = draw(
        st.lists(
            st.integers(min_value=1, max_value=10),
            min_size=graph.num_vertices,
            max_size=graph.num_vertices,
        )
    )
    return {v: s / 10.0 for v, s in zip(sorted(graph.vertices()), steps)}


@st.composite
def graph_with_frequencies(draw, max_vertices: int = 8):
    """(graph, frequency map) pair for truss-level property tests."""
    graph = draw(small_graphs(max_vertices=max_vertices))
    frequencies = draw(frequency_maps(graph))
    return graph, frequencies


@st.composite
def transaction_databases(
    draw, max_items: int = 5, max_transactions: int = 8
):
    """A random non-empty transaction database over items 0..max_items-1."""
    transactions = draw(
        st.lists(
            st.sets(
                st.integers(min_value=0, max_value=max_items - 1),
                min_size=1,
                max_size=max_items,
            ),
            min_size=1,
            max_size=max_transactions,
        )
    )
    return TransactionDatabase(transactions)


@st.composite
def database_networks(
    draw,
    max_vertices: int = 6,
    max_items: int = 4,
    max_transactions: int = 5,
):
    """A random small database network (every vertex has a database)."""
    graph = draw(small_graphs(max_vertices=max_vertices))
    databases = {}
    for v in sorted(graph.vertices()):
        databases[v] = draw(
            transaction_databases(
                max_items=max_items, max_transactions=max_transactions
            )
        )
    return DatabaseNetwork(graph, databases)


@st.composite
def alphas(draw):
    """A cohesion threshold on the scale the small networks produce."""
    return draw(
        st.sampled_from([0.0, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0, 1.5, 2.0])
    )
