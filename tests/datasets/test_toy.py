"""Ground-truth tests for the Figure 1 toy network."""

from __future__ import annotations

import pytest

from repro.core.tcfi import tcfi
from repro.datasets.toy import (
    P_FREQUENCIES,
    Q_FREQUENCIES,
    TOY_EDGES,
    toy_database_network,
)


class TestStructure:
    def test_shape(self, toy_network):
        assert toy_network.num_vertices == 9
        assert toy_network.num_edges == len(TOY_EDGES)

    def test_every_vertex_has_ten_transactions(self, toy_network):
        for db in toy_network.databases.values():
            assert db.num_transactions == 10

    def test_deterministic(self):
        a = toy_database_network()
        b = toy_database_network()
        assert a.graph == b.graph

    def test_item_ids(self, toy_network):
        assert toy_network.item_label(0) == "p"
        assert toy_network.item_label(1) == "q"


class TestFrequencies:
    def test_p_frequencies_match_spec(self, toy_network):
        for vertex_label, expected in P_FREQUENCIES.items():
            vid = next(
                v for v, lbl in toy_network.vertex_labels.items()
                if lbl == vertex_label
            )
            assert toy_network.frequency(vid, (0,)) == pytest.approx(expected)

    def test_q_frequencies_match_spec(self, toy_network):
        for vertex_label, expected in Q_FREQUENCIES.items():
            vid = next(
                v for v, lbl in toy_network.vertex_labels.items()
                if lbl == vertex_label
            )
            assert toy_network.frequency(vid, (1,)) == pytest.approx(expected)

    def test_p_and_q_never_cooccur(self, toy_network):
        for v in toy_network.databases:
            assert toy_network.frequency(v, (0, 1)) == 0.0


class TestGroundTruthCommunities:
    def test_two_p_communities(self, toy_network):
        truss = tcfi(toy_network, 0.2)[(0,)]
        communities = truss.communities()
        sizes = sorted(len(c) for c in communities)
        assert sizes == [3, 5]

    def test_community_members_by_label(self, toy_network):
        truss = tcfi(toy_network, 0.2)[(0,)]
        label = {v: toy_network.vertex_label(v) for v in truss.vertices()}
        communities = {
            frozenset(label[v] for v in c) for c in truss.communities()
        }
        assert communities == {
            frozenset({1, 2, 3, 4, 5}),
            frozenset({7, 8, 9}),
        }

    def test_q_community_members(self, toy_network):
        truss = tcfi(toy_network, 0.3)[(1,)]
        [community] = truss.communities()
        labels = {toy_network.vertex_label(v) for v in community}
        assert labels == {2, 3, 5, 6, 7, 9}
