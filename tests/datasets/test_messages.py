"""Tests for the message-network (edge model) generator."""

from __future__ import annotations

import pytest

from repro.datasets.messages import generate_message_network
from repro.edgenet.finder import EdgeThemeCommunityFinder
from repro.errors import MiningError


class TestGeneration:
    def test_every_edge_has_threads(self):
        network = generate_message_network(num_users=40, seed=1)
        assert network.num_edges == len(network.databases)
        assert all(
            db.num_transactions > 0 for db in network.databases.values()
        )

    def test_deterministic(self):
        a = generate_message_network(num_users=40, seed=5)
        b = generate_message_network(num_users=40, seed=5)
        assert a.graph == b.graph
        for edge in a.databases:
            assert sorted(map(sorted, a.databases[edge])) == sorted(
                map(sorted, b.databases[edge])
            )

    def test_labels(self):
        network = generate_message_network(num_users=20, seed=1)
        assert network.vertex_labels[0] == "user_0"
        assert network.item_labels[0] == "topic_0"

    def test_invalid_parameters(self):
        with pytest.raises(MiningError):
            generate_message_network(num_circles=-1)
        with pytest.raises(MiningError):
            generate_message_network(topic_probability=1.5)
        with pytest.raises(MiningError):
            generate_message_network(num_topics=1, topics_per_circle=2)

    def test_ground_truth(self):
        network, planted = generate_message_network(
            num_users=50, num_circles=4, seed=2, return_ground_truth=True
        )
        assert len(planted) == 4
        for circle in planted:
            assert circle.members <= set(network.graph.vertices())
            assert len(circle.theme) == 2


class TestMinability:
    def test_circles_form_edge_theme_communities(self):
        network, planted = generate_message_network(
            num_users=60,
            num_circles=4,
            circle_size=6,
            threads_per_pair=6,
            topic_probability=0.8,
            seed=7,
            return_ground_truth=True,
        )
        finder = EdgeThemeCommunityFinder(network)
        communities = finder.find_communities(alpha=0.3, max_length=2)
        assert communities
        # At least one planted circle substantially recovered.
        from repro.datasets.ground_truth import evaluate_recovery

        report = evaluate_recovery(planted, communities, threshold=0.4)
        assert report.recovered >= 1
