"""Tests for the real-dataset loaders (SNAP check-in, AMINER citation)."""

from __future__ import annotations

import pytest

from repro.datasets.loaders import (
    iter_aminer_records,
    load_aminer_network,
    load_snap_checkin_network,
    tokenize_abstract,
)
from repro.errors import NetworkFormatError

SNAP_EDGES = """\
# comment line
0\t1
1\t2
0\t2
2\t3
"""

SNAP_CHECKINS = """\
0\t2010-10-17T01:48:53Z\t39.7\t-104.9\tcoffee
0\t2010-10-17T02:00:00Z\t39.7\t-104.9\tgym
0\t2010-10-25T12:00:00Z\t39.7\t-104.9\tcoffee
1\t2010-10-17T05:00:00Z\t39.7\t-104.9\tcoffee
1\t2010-10-17T06:00:00Z\t39.7\t-104.9\tgym
2\t2010-10-17T06:30:00Z\t39.7\t-104.9\tlibrary
"""

AMINER_DUMP = """\
#*Mining Sequential Patterns
#@Jian Pei;Jiawei Han
#!We study the problem of mining sequential patterns in transaction
databases with efficient algorithms for pattern growth.

#*Graph Clustering Survey
#@Alice Smith
#!A survey of graph clustering techniques and community detection.

#*No Abstract Paper
#@Bob Jones;Carol White
"""


@pytest.fixture()
def snap_files(tmp_path):
    edges = tmp_path / "edges.txt"
    checkins = tmp_path / "checkins.txt"
    edges.write_text(SNAP_EDGES)
    checkins.write_text(SNAP_CHECKINS)
    return edges, checkins


class TestSnapLoader:
    def test_graph_structure(self, snap_files):
        edges, checkins = snap_files
        network = load_snap_checkin_network(edges, checkins)
        assert network.num_vertices == 4
        assert network.num_edges == 4

    def test_period_grouping(self, snap_files):
        """User 0's two Oct-17 check-ins share a 2-day period; the Oct-25
        one is separate — two transactions total."""
        edges, checkins = snap_files
        network = load_snap_checkin_network(edges, checkins, period_days=2)
        builder_id = next(
            v for v, lbl in network.vertex_labels.items() if lbl == "0"
        )
        db = network.databases[builder_id]
        assert db.num_transactions == 2
        transactions = sorted(
            sorted(network.item_labels[i] for i in t) for t in db
        )
        assert transactions == [["coffee"], ["coffee", "gym"]]

    def test_bad_edge_line_rejected(self, tmp_path, snap_files):
        _, checkins = snap_files
        bad = tmp_path / "bad_edges.txt"
        bad.write_text("0 1 2 3 4\n")
        with pytest.raises(NetworkFormatError):
            load_snap_checkin_network(bad, checkins)

    def test_malformed_checkin_rejected(self, tmp_path, snap_files):
        edges, _ = snap_files
        bad = tmp_path / "bad_checkins.txt"
        bad.write_text("0\t2010-10-17T01:48:53Z\n")
        with pytest.raises(NetworkFormatError):
            load_snap_checkin_network(edges, bad)

    def test_unparseable_time_skipped(self, tmp_path, snap_files):
        edges, _ = snap_files
        odd = tmp_path / "odd.txt"
        odd.write_text("0\tnot-a-time\t0\t0\tplace\n")
        network = load_snap_checkin_network(edges, odd)
        assert all(
            db.num_transactions == 0 for db in network.databases.values()
        ) or not network.databases

    def test_max_checkins_cap(self, snap_files):
        edges, checkins = snap_files
        network = load_snap_checkin_network(edges, checkins, max_checkins=2)
        total = sum(
            db.total_items for db in network.databases.values()
        )
        assert total <= 2


class TestTokenizer:
    def test_filters_stopwords_and_short_tokens(self):
        tokens = tokenize_abstract("We study the mining of big graphs!")
        assert "the" not in tokens
        assert "we" not in tokens
        assert "of" not in tokens
        assert "mining" in tokens
        assert "graphs" in tokens

    def test_splits_on_non_alpha(self):
        assert tokenize_abstract("graph-based k-truss") == [
            "graph", "truss"
        ]

    def test_lowercases(self):
        assert tokenize_abstract("Sequential PATTERNS") == [
            "sequential", "patterns"
        ]


class TestAminerLoader:
    def test_record_streaming(self, tmp_path):
        dump = tmp_path / "aminer.txt"
        dump.write_text(AMINER_DUMP)
        records = list(iter_aminer_records(dump))
        assert len(records) == 3
        assert records[0]["title"] == "Mining Sequential Patterns"
        assert "Jian Pei" in records[0]["authors"]

    def test_network_construction(self, tmp_path):
        dump = tmp_path / "aminer.txt"
        dump.write_text(AMINER_DUMP)
        network = load_aminer_network(dump)
        # Paper 3 has no abstract → skipped; authors: Pei, Han, Smith.
        labels = set(network.vertex_labels.values())
        assert {"Jian Pei", "Jiawei Han", "Alice Smith"} <= labels
        assert "Bob Jones" not in labels
        # Pei–Han co-author edge exists.
        pei = next(
            v for v, l in network.vertex_labels.items() if l == "Jian Pei"
        )
        han = next(
            v for v, l in network.vertex_labels.items() if l == "Jiawei Han"
        )
        assert network.graph.has_edge(pei, han)
        # Their databases share the paper transaction.
        mining = next(
            i for i, l in network.item_labels.items() if l == "mining"
        )
        assert network.frequency(pei, (mining,)) == 1.0

    def test_max_papers(self, tmp_path):
        dump = tmp_path / "aminer.txt"
        dump.write_text(AMINER_DUMP)
        network = load_aminer_network(dump, max_papers=1)
        labels = set(network.vertex_labels.values())
        assert "Alice Smith" not in labels
