"""Tests for the SYN generator."""

from __future__ import annotations

import math

import pytest

from repro.core.tcfi import tcfi
from repro.datasets.synthetic import generate_synthetic_network
from repro.errors import MiningError
from repro.graphs.generators import erdos_renyi_graph


class TestGeneration:
    def test_sizes(self):
        network = generate_synthetic_network(
            num_vertices=80, num_items=20, num_seeds=4, seed=1
        )
        assert network.num_vertices == 80
        assert len(network.databases) == 80

    def test_deterministic(self):
        a = generate_synthetic_network(num_vertices=50, seed=9)
        b = generate_synthetic_network(num_vertices=50, seed=9)
        assert a.graph == b.graph
        for v in a.databases:
            assert sorted(map(sorted, a.databases[v])) == sorted(
                map(sorted, b.databases[v])
            )

    def test_transaction_count_law(self):
        """db size is ⌈e^{0.1 d}⌉ capped — check against actual degrees."""
        cap = 16
        network = generate_synthetic_network(
            num_vertices=60, max_transactions=cap, seed=3
        )
        for v, db in network.databases.items():
            degree = network.graph.degree(v)
            expected = min(cap, math.ceil(math.exp(0.1 * degree)))
            assert db.num_transactions == expected

    def test_items_within_universe(self):
        network = generate_synthetic_network(
            num_vertices=40, num_items=10, seed=2
        )
        universe = set(range(10))
        for db in network.databases.values():
            assert db.items() <= universe

    def test_custom_graph(self):
        graph = erdos_renyi_graph(30, 0.2, seed=5)
        network = generate_synthetic_network(graph=graph, seed=5)
        assert network.graph is graph

    def test_invalid_parameters(self):
        with pytest.raises(MiningError):
            generate_synthetic_network(num_seeds=0)
        with pytest.raises(MiningError):
            generate_synthetic_network(mutation_rate=2.0)


class TestMinability:
    def test_diffusion_creates_theme_communities(self):
        """The BFS diffusion must make neighbours share patterns: mining
        at a moderate α finds at least one non-trivial truss."""
        network = generate_synthetic_network(
            num_vertices=100, num_items=20, num_seeds=5, seed=7
        )
        result = tcfi(network, 0.2, max_length=2)
        assert result.num_patterns > 0
