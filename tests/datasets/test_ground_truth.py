"""Tests for planted ground truth and recovery metrics."""

from __future__ import annotations

import pytest

from repro._ordering import make_pattern
from repro.core.communities import ThemeCommunity
from repro.core.finder import ThemeCommunityFinder
from repro.datasets.checkin import generate_checkin_network
from repro.datasets.coauthor import generate_coauthor_network
from repro.datasets.ground_truth import (
    PlantedCommunity,
    evaluate_recovery,
    jaccard,
)


class TestJaccard:
    def test_identical(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert jaccard({1}, {2}) == 0.0

    def test_partial(self):
        assert jaccard({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_both_empty(self):
        assert jaccard(set(), set()) == 1.0


class TestEvaluateRecovery:
    def _mined(self, members, pattern=(0,)):
        return ThemeCommunity(make_pattern(pattern), frozenset(members), 0.0)

    def test_perfect_recovery(self):
        planted = [PlantedCommunity(frozenset({1, 2, 3}), (0,))]
        mined = [self._mined({1, 2, 3})]
        report = evaluate_recovery(planted, mined)
        assert report.average_best_jaccard == 1.0
        assert report.recovery_rate == 1.0

    def test_no_mined_communities(self):
        planted = [PlantedCommunity(frozenset({1, 2}), (0,))]
        report = evaluate_recovery(planted, [])
        assert report.average_best_jaccard == 0.0
        assert report.recovered == 0

    def test_no_planted_communities(self):
        assert evaluate_recovery([], []).recovery_rate == 1.0

    def test_theme_matching_stricter(self):
        planted = [PlantedCommunity(frozenset({1, 2, 3}), (5,))]
        mined = [self._mined({1, 2, 3}, pattern=(9,))]
        loose = evaluate_recovery(planted, mined, match_theme=False)
        strict = evaluate_recovery(planted, mined, match_theme=True)
        assert loose.average_best_jaccard == 1.0
        assert strict.average_best_jaccard == 0.0

    def test_threshold_counts(self):
        planted = [
            PlantedCommunity(frozenset({1, 2, 3, 4}), (0,)),
            PlantedCommunity(frozenset({9, 10}), (0,)),
        ]
        mined = [self._mined({1, 2, 3})]
        report = evaluate_recovery(planted, mined, threshold=0.5)
        assert report.recovered == 1
        assert report.recovery_rate == 0.5


class TestGeneratorsExposeGroundTruth:
    def test_checkin_ground_truth_shape(self):
        network, planted = generate_checkin_network(
            num_users=60, num_groups=5, seed=1, return_ground_truth=True
        )
        assert len(planted) == 5
        for community in planted:
            assert community.size >= 1
            assert community.members <= set(network.graph.vertices())
            assert all(0 <= item for item in community.theme)

    def test_coauthor_ground_truth_shape(self):
        network, planted = generate_coauthor_network(
            num_authors=60, num_topics=4, num_papers=100, seed=1,
            return_ground_truth=True,
        )
        assert 1 <= len(planted) <= 4
        for community in planted:
            assert community.members <= set(range(60))
            assert len(community.theme) == 4  # keywords_per_topic default

    def test_default_return_unchanged(self):
        """Without the flag the generators still return just the network."""
        network = generate_checkin_network(num_users=30, seed=1)
        assert network.num_vertices == 30


class TestEndToEndRecovery:
    def test_theme_mining_recovers_planted_groups(self):
        """Mining must substantially recover the planted hangout groups —
        the generators and the miner agree about what a community is."""
        network, planted = generate_checkin_network(
            num_users=80,
            num_locations=24,
            num_groups=6,
            group_size=6,
            periods=25,
            visit_probability=0.75,
            seed=11,
            return_ground_truth=True,
        )
        mined = ThemeCommunityFinder(network).find_communities(
            alpha=0.2, max_length=3
        )
        report = evaluate_recovery(planted, mined, threshold=0.5)
        assert report.average_best_jaccard > 0.5
        assert report.recovery_rate >= 0.5
