"""Tests for the co-author (AMINER surrogate) generator."""

from __future__ import annotations

import pytest

from repro.core.finder import ThemeCommunityFinder
from repro.datasets.coauthor import generate_coauthor_network
from repro.errors import MiningError


class TestGeneration:
    def test_sizes(self):
        network = generate_coauthor_network(
            num_authors=60, num_papers=120, seed=1
        )
        assert network.num_vertices == 60
        assert len(network.databases) == 60
        # Every author has at least one transaction.
        assert all(db for db in network.databases.values())

    def test_deterministic(self):
        a = generate_coauthor_network(num_authors=40, num_papers=80, seed=6)
        b = generate_coauthor_network(num_authors=40, num_papers=80, seed=6)
        assert a.graph == b.graph

    def test_keyword_budget_enforced(self):
        with pytest.raises(MiningError):
            generate_coauthor_network(
                num_topics=10, keywords_per_topic=5, num_keywords=20
            )
        with pytest.raises(MiningError):
            generate_coauthor_network(num_topics=0)

    def test_hyper_paper_creates_large_clique(self):
        """The Blue-Gene analogue: a single paper with many authors makes
        a big clique, driving up the maximum cohesion (Figure 5(c))."""
        without = generate_coauthor_network(
            num_authors=60, num_papers=50, hyper_paper_authors=0, seed=8
        )
        with_hyper = generate_coauthor_network(
            num_authors=60, num_papers=50, hyper_paper_authors=25, seed=8
        )
        max_degree = lambda n: max(n.graph.degree(v) for v in n.graph)
        assert max_degree(with_hyper) >= 24
        assert max_degree(with_hyper) > max_degree(without)

    def test_labels(self):
        network = generate_coauthor_network(num_authors=10, seed=1)
        assert network.vertex_label(0) == "author_0"
        assert str(network.item_label(0)).startswith("keyword_")


class TestPlantedThemes:
    def test_research_themes_minable(self):
        """Planted topics must surface: groups of co-authors sharing a
        multi-keyword research interest (the Table 4 structure)."""
        network = generate_coauthor_network(
            num_authors=80,
            num_topics=5,
            num_papers=300,
            keywords_per_topic=4,
            num_keywords=40,
            seed=3,
        )
        finder = ThemeCommunityFinder(network)
        communities = finder.find_communities(alpha=0.3, max_length=3)
        assert communities
        assert any(len(c.pattern) >= 2 for c in communities)

    def test_overlapping_communities_exist(self):
        """Senior authors straddle topics, so communities with different
        themes must overlap (the Figure 6 phenomenon)."""
        network = generate_coauthor_network(
            num_authors=60,
            num_topics=4,
            num_papers=250,
            authors_per_topic=25,
            seed=4,
        )
        finder = ThemeCommunityFinder(network)
        communities = finder.find_communities(alpha=0.25, max_length=2)
        overlapping = any(
            a.pattern != b.pattern and a.overlap(b) > 0
            for i, a in enumerate(communities)
            for b in communities[i + 1:]
        )
        assert overlapping
