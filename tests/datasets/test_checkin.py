"""Tests for the check-in (Brightkite/Gowalla surrogate) generator."""

from __future__ import annotations

import pytest

from repro.core.finder import ThemeCommunityFinder
from repro.datasets.checkin import generate_checkin_network
from repro.errors import MiningError


class TestGeneration:
    def test_sizes(self):
        network = generate_checkin_network(
            num_users=50, num_locations=20, periods=10, seed=1
        )
        assert network.num_vertices == 50
        assert all(
            db.num_transactions == 10 for db in network.databases.values()
        )

    def test_labels(self):
        network = generate_checkin_network(num_users=10, periods=5, seed=1)
        assert network.vertex_label(0) == "user_0"
        assert str(network.item_label(0)).startswith("place_")

    def test_deterministic(self):
        a = generate_checkin_network(num_users=40, seed=4)
        b = generate_checkin_network(num_users=40, seed=4)
        assert a.graph == b.graph

    def test_items_within_locations(self):
        network = generate_checkin_network(
            num_users=30, num_locations=15, seed=2
        )
        universe = set(range(15))
        for db in network.databases.values():
            assert db.items() <= universe

    def test_invalid_parameters(self):
        with pytest.raises(MiningError):
            generate_checkin_network(num_groups=-1)
        with pytest.raises(MiningError):
            generate_checkin_network(visit_probability=1.5)


class TestPlantedGroups:
    def test_hangout_groups_minable(self):
        """Planted co-visitation groups must surface as theme communities:
        a group of friends frequently visiting the same places."""
        network = generate_checkin_network(
            num_users=80,
            num_locations=24,
            num_groups=6,
            group_size=6,
            periods=20,
            visit_probability=0.7,
            seed=5,
        )
        finder = ThemeCommunityFinder(network)
        communities = finder.find_communities(alpha=0.3, max_length=2)
        assert communities, "no theme communities found in planted data"
        # At least one community should use a multi-item theme
        # (a *set* of places, not a single place).
        assert any(len(c.pattern) >= 2 for c in communities)
