"""Community search over theme communities.

The truss-community-search literature the paper builds on (Huang et al.,
SIGMOD 2014; Huang & Lakshmanan, VLDB 2017) asks *online* queries: "which
communities contain this vertex?", "what are the k strongest communities
for this theme?". This package answers those queries on top of the
library's two backends — a mining result or a TC-Tree warehouse.
"""

from repro.search.vertex import (
    communities_containing_vertex,
    strongest_themes_of_vertex,
)
from repro.search.topk import top_k_communities

__all__ = [
    "communities_containing_vertex",
    "strongest_themes_of_vertex",
    "top_k_communities",
]
