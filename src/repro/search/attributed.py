"""Attribute-driven community search (ATC-style, Huang & Lakshmanan 2017).

The related-work query the paper cites: given *query vertices* that must
all belong to the community and *query attributes* the theme may use, find
the best communities. On top of a TC-Tree this is a filtered QBP: traverse
themes within the query attributes, keep communities containing every
query vertex, and rank by how much of the query the theme covers.

The default ranking prefers (1) larger theme coverage of the query
attributes, (2) stronger cohesion (the α at which the community would
still exist, read from the decomposition), (3) smaller size — i.e. the
most specific, most cohesive, tightest group around the query vertices.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro._ordering import Pattern, make_pattern
from repro.core.communities import ThemeCommunity
from repro.errors import MiningError
from repro.index.query import query_tc_tree
from repro.index.tctree import TCTree


@dataclass(frozen=True)
class AttributedMatch:
    """One ranked answer to an attribute-driven search."""

    community: ThemeCommunity
    coverage: int  # |theme ∩ query attributes| (= |theme|, by pruning)
    strength: float  # largest α at which the community's truss is non-empty

    @property
    def pattern(self) -> Pattern:
        return self.community.pattern


def attributed_community_search(
    tree: TCTree,
    query_vertices: Iterable[int],
    query_attributes: Iterable[int],
    alpha: float = 0.0,
    limit: int | None = None,
) -> list[AttributedMatch]:
    """Communities containing every query vertex, themed within the query
    attributes, best-first.

    ``alpha`` sets the minimum cohesion; strength is read per-theme from
    the indexed decomposition (its α*), so ranking needs no re-mining.
    """
    vertices = set(query_vertices)
    if not vertices:
        raise MiningError("need at least one query vertex")
    attributes = make_pattern(query_attributes)
    if not attributes:
        raise MiningError("need at least one query attribute")

    answer = query_tc_tree(tree, pattern=attributes, alpha=alpha)
    matches: list[AttributedMatch] = []
    for truss in answer.trusses:
        node = tree.find_node(truss.pattern)
        strength = (
            node.decomposition.max_alpha
            if node is not None and node.decomposition is not None
            else 0.0
        )
        for community in truss.communities():
            if vertices <= community:
                matches.append(
                    AttributedMatch(
                        community=ThemeCommunity(
                            pattern=truss.pattern,
                            members=frozenset(community),
                            alpha=alpha,
                            frequencies={
                                v: truss.frequencies.get(v, 0.0)
                                for v in community
                            },
                        ),
                        coverage=len(truss.pattern),
                        strength=strength,
                    )
                )
    matches.sort(
        key=lambda m: (
            -m.coverage,
            -m.strength,
            m.community.size,
            m.pattern,
        )
    )
    if limit is not None:
        matches = matches[:limit]
    return matches
