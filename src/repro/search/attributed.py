"""Attribute-driven community search (ATC-style, Huang & Lakshmanan 2017).

The related-work query the paper cites: given *query vertices* that must
all belong to the community and *query attributes* the theme may use, find
the best communities. On top of a TC-Tree this is a filtered QBP: traverse
themes within the query attributes, keep communities containing every
query vertex, and rank by how much of the query the theme covers.

The search runs against any *source* that answers the query protocol —
an in-memory :class:`~repro.index.tctree.TCTree` (or edge tree), or a
:class:`~repro.serve.engine.IndexedWarehouse`, where it inherits the
serving tier's snapshot prune-without-decode and LRU carrier cache. Both
paths answer bit-identically (the parity suite asserts it, ranking ties
included).

The default ranking prefers (1) larger theme coverage of the query
attributes, (2) stronger cohesion (the α at which the community would
still exist, read from the decomposition), (3) smaller size — i.e. the
most specific, most cohesive, tightest group around the query vertices.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro._ordering import Pattern, make_pattern
from repro.core.communities import ThemeCommunity
from repro.errors import MiningError
from repro.index.query import query_tc_tree
from repro.index.tctree import TCTree


@dataclass(frozen=True)
class AttributedMatch:
    """One ranked answer to an attribute-driven search."""

    community: ThemeCommunity
    coverage: int  # |theme ∩ query attributes| (= |theme|, by pruning)
    strength: float  # largest α at which the community's truss is non-empty

    @property
    def pattern(self) -> Pattern:
        return self.community.pattern


def attributed_community_search(
    source: TCTree,
    query_vertices: Iterable[int],
    query_attributes: Iterable[int],
    alpha: float = 0.0,
    limit: int | None = None,
) -> list[AttributedMatch]:
    """Communities containing every query vertex, themed within the query
    attributes, best-first.

    ``source`` is an in-memory tree or an
    :class:`~repro.serve.engine.IndexedWarehouse`; ``alpha`` sets the
    minimum cohesion. Strength is read per-theme from the indexed
    decomposition (its α*), so ranking needs no re-mining — on the
    engine path through the carrier cache the query just warmed.
    """
    vertices = set(query_vertices)
    if not vertices:
        raise MiningError("need at least one query vertex")
    attributes = make_pattern(query_attributes)
    if not attributes:
        raise MiningError("need at least one query attribute")

    if hasattr(source, "theme_strength"):
        answer = source.query(pattern=attributes, alpha=alpha)
        strength_of = source.theme_strength
    else:
        answer = query_tc_tree(source, pattern=attributes, alpha=alpha)

        def strength_of(pattern: Pattern) -> float:
            node = source.find_node(pattern)
            if node is None or node.decomposition is None:
                return 0.0
            return node.decomposition.max_alpha

    matches: list[AttributedMatch] = []
    for truss in answer.trusses:
        strength = strength_of(truss.pattern)
        for community in truss.communities():
            if vertices <= community:
                matches.append(
                    AttributedMatch(
                        community=ThemeCommunity(
                            pattern=truss.pattern,
                            members=frozenset(community),
                            alpha=alpha,
                            frequencies={
                                v: truss.frequencies.get(v, 0.0)
                                for v in community
                            },
                        ),
                        coverage=len(truss.pattern),
                        strength=strength,
                    )
                )
    matches.sort(
        key=lambda m: (
            -m.coverage,
            -m.strength,
            m.community.size,
            m.pattern,
        )
    )
    if limit is not None:
        matches = matches[:limit]
    return matches
