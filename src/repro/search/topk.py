"""Top-k community queries.

Ranks theme communities by a pluggable scoring function. The default
score combines size with theme length (longer themes are more specific and
usually more interesting — they are also rarer, by Theorem 5.1).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.core.communities import ThemeCommunity, extract_theme_communities
from repro.core.results import MiningResult
from repro.errors import MiningError
from repro.index.query import QueryAnswer, query_tc_tree
from repro.index.tctree import TCTree

Score = Callable[[ThemeCommunity], float]


def default_score(community: ThemeCommunity) -> float:
    """Size weighted by theme specificity: |members| × |pattern|."""
    return community.size * max(1, len(community.pattern))


def top_k_communities(
    source: MiningResult | TCTree | QueryAnswer,
    k: int,
    pattern: Iterable[int] | None = None,
    alpha: float = 0.0,
    score: Score = default_score,
    min_size: int = 3,
) -> list[ThemeCommunity]:
    """The ``k`` best-scoring theme communities.

    ``source`` is a mining result, a TC-Tree (queried at ``alpha`` with
    optional query ``pattern``), or an already-computed
    :class:`QueryAnswer` — the serving engine's path, where the query ran
    against a snapshot and only ranking remains (its own ``alpha`` is
    authoritative; the ``alpha`` argument is ignored for this source).
    Ties break deterministically by pattern then members.
    """
    if k < 1:
        raise MiningError(f"k must be >= 1, got {k}")
    if isinstance(source, TCTree):
        # query_tc_tree already restricts to sub-patterns of ``pattern``;
        # the shared filter below is then a no-op.
        communities = query_tc_tree(
            source, pattern=pattern, alpha=alpha
        ).communities()
    elif isinstance(source, QueryAnswer):
        communities = source.communities()
    else:
        communities = extract_theme_communities(source)
    if pattern is not None:
        allowed = set(pattern)
        communities = [
            c for c in communities if set(c.pattern) <= allowed
        ]
    communities = [c for c in communities if c.size >= min_size]
    communities.sort(
        key=lambda c: (-score(c), c.pattern, sorted(c.members))
    )
    return communities[:k]
