"""Vertex-centred community search.

``communities_containing_vertex`` is the theme-community analogue of
k-truss community search: given a query vertex (and optionally a query
pattern and threshold), return every theme community the vertex belongs
to. ``strongest_themes_of_vertex`` ranks those communities by the largest
threshold at which the vertex is still inside — the natural "how strongly
does this vertex belong" score, read off the TC-Tree decompositions with
no re-mining.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro._ordering import Pattern
from repro.core.communities import ThemeCommunity, extract_theme_communities
from repro.core.results import MiningResult
from repro.index.query import query_tc_tree
from repro.index.tctree import TCTree


def _communities(
    source: MiningResult | TCTree,
    pattern: Iterable[int] | None,
    alpha: float,
) -> list[ThemeCommunity]:
    if isinstance(source, TCTree):
        return query_tc_tree(source, pattern=pattern, alpha=alpha).communities()
    communities = extract_theme_communities(source)
    if pattern is not None:
        allowed = set(pattern)
        communities = [
            c for c in communities if set(c.pattern) <= allowed
        ]
    return communities


def communities_containing_vertex(
    source: MiningResult | TCTree,
    vertex: int,
    pattern: Iterable[int] | None = None,
    alpha: float = 0.0,
) -> list[ThemeCommunity]:
    """All theme communities containing ``vertex``, largest-first.

    ``source`` is either a mined :class:`MiningResult` (its α applies and
    ``alpha`` is ignored for results) or a :class:`TCTree` (queried at
    ``alpha``). ``pattern`` optionally restricts themes to sub-patterns of
    it, as in Algorithm 5.
    """
    return [
        c
        for c in _communities(source, pattern, alpha)
        if vertex in c.members
    ]


def strongest_themes_of_vertex(
    tree: TCTree,
    vertex: int,
    limit: int | None = None,
) -> list[tuple[Pattern, float]]:
    """Themes of ``vertex`` ranked by departure threshold.

    For each indexed theme containing the vertex, compute the largest
    decomposition threshold α_k at which the vertex is still in
    ``C*_p(α)`` — i.e. the level at which its last incident edge is
    removed. Higher = the vertex sits in a more cohesive part of that
    theme's truss. Read directly from ``L_p``; no mining.
    """
    scored: list[tuple[Pattern, float]] = []
    for node in tree.iter_nodes():
        decomposition = node.decomposition
        if decomposition is None or vertex not in decomposition.frequencies:
            continue
        departure = 0.0
        for level in decomposition.levels:
            if any(vertex in edge for edge in level.removed_edges):
                departure = max(departure, level.alpha)
        if departure > 0.0:
            scored.append((node.pattern, departure))
    scored.sort(key=lambda item: (-item[1], item[0]))
    if limit is not None:
        scored = scored[:limit]
    return scored
