"""The 9-vertex toy database network of Figure 1.

Layout (mirroring the paper's example):

- vertices 1..5 form a 5-clique, vertices 7, 8, 9 a triangle;
- vertex 6 bridges the two groups (edges 5-6 and 6-7) plus two extra
  edges 5-7 and 6-9 that close triangles for the second theme;
- item ``p`` (id 0) has frequency 0.1 on vertices 1..5, 0.3 on 7..9, and
  0 on vertex 6;
- item ``q`` (id 1) has frequency 0.4 / 0.5 / 0.7 / 0.8 / 0.6 / 0.7 on
  vertices 2, 3, 5, 6, 7, 9 and 0 elsewhere.

Exactly known ground truth (derived by hand, asserted in tests):

- theme ``(0,)``: maximal pattern truss for α < 0.3 is the 5-clique plus
  the 7-8-9 triangle → two theme communities {1..5} and {7,8,9}; empty for
  α >= 0.3.
- theme ``(1,)``: maximal pattern truss for α < 0.4 contains the single
  community {2,3,5,6,7,9}, which overlaps both p-communities; the edge
  cohesion profile steps at 0.4 and 0.6, so the decomposition thresholds
  are [0.4, 0.6] (α* = 0.6... see test_toy for the exact list).
- no other pattern forms a truss (fillers are vertex-unique; p and q never
  co-occur in one transaction).
"""

from __future__ import annotations

from repro.network.builder import DatabaseNetworkBuilder
from repro.network.dbnetwork import DatabaseNetwork

#: frequency of item "p" per vertex (×10 = transaction count out of 10)
P_FREQUENCIES = {1: 0.1, 2: 0.1, 3: 0.1, 4: 0.1, 5: 0.1,
                 6: 0.0, 7: 0.3, 8: 0.3, 9: 0.3}

#: frequency of item "q" per vertex
Q_FREQUENCIES = {1: 0.0, 2: 0.4, 3: 0.5, 4: 0.0, 5: 0.7,
                 6: 0.8, 7: 0.6, 8: 0.0, 9: 0.7}

#: the toy graph's edges
TOY_EDGES = [
    # 5-clique on 1..5
    (1, 2), (1, 3), (1, 4), (1, 5),
    (2, 3), (2, 4), (2, 5),
    (3, 4), (3, 5),
    (4, 5),
    # triangle on 7..9
    (7, 8), (7, 9), (8, 9),
    # bridge and theme-q closure edges
    (5, 6), (6, 7), (5, 7), (6, 9),
]

TRANSACTIONS_PER_VERTEX = 10


def toy_database_network() -> DatabaseNetwork:
    """Build the deterministic toy network described above.

    Item ids: "p" → 0, "q" → 1, then one filler item per vertex. Each
    vertex database holds exactly 10 transactions; p-transactions and
    q-transactions are disjoint so the pattern {p, q} has frequency 0
    everywhere.
    """
    builder = DatabaseNetworkBuilder()
    # Intern p and q first so they get ids 0 and 1.
    builder.item_id("p")
    builder.item_id("q")
    for u, v in TOY_EDGES:
        builder.add_edge(u, v)
    for vertex in range(1, 10):
        p_count = round(P_FREQUENCIES[vertex] * TRANSACTIONS_PER_VERTEX)
        q_count = round(Q_FREQUENCIES[vertex] * TRANSACTIONS_PER_VERTEX)
        filler = f"filler_{vertex}"
        for _ in range(p_count):
            builder.add_transaction(vertex, ["p"])
        for _ in range(q_count):
            builder.add_transaction(vertex, ["q"])
        for _ in range(TRANSACTIONS_PER_VERTEX - p_count - q_count):
            builder.add_transaction(vertex, [filler])
    return builder.build()
