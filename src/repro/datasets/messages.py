"""Message-network generator for the edge-database-network extension.

The edge model (Section 8 future work) needs a workload where transaction
databases live on relationships: conversations. This generator plants
*circles* — friend groups whose internal message threads revolve around a
shared topic set — on a clustered social graph, mirroring how the check-in
generator plants hangout groups for the vertex model.

A theme community in the generated network is a circle whose pairwise
conversations all frequently cover the circle's topics.
"""

from __future__ import annotations

import random
from collections import deque

from repro._ordering import make_pattern
from repro.datasets.ground_truth import PlantedCommunity
from repro.edgenet.network import EdgeDatabaseNetwork
from repro.errors import MiningError
from repro.graphs.generators import powerlaw_cluster_graph
from repro.graphs.graph import Graph


def _bfs_ball(graph: Graph, center: int, size: int) -> list[int]:
    ball = [center]
    seen = {center}
    queue = deque([center])
    while queue and len(ball) < size:
        v = queue.popleft()
        for w in sorted(graph.neighbors(v)):
            if w not in seen:
                seen.add(w)
                ball.append(w)
                queue.append(w)
                if len(ball) >= size:
                    break
    return ball


def generate_message_network(
    num_users: int = 100,
    num_topics: int = 12,
    num_circles: int = 6,
    circle_size: int = 6,
    topics_per_circle: int = 2,
    threads_per_pair: int = 4,
    topic_probability: float = 0.7,
    noise_topics: int = 6,
    edges_per_vertex: int = 3,
    triangle_probability: float = 0.6,
    seed: int | None = 0,
    return_ground_truth: bool = False,
):
    """Generate an edge database network of message threads.

    Every edge of the social graph carries one transaction per message
    thread (the set of topics the thread touched). Pairs inside a planted
    circle discuss the circle's topics with probability
    ``topic_probability`` per topic per thread; everyone also produces
    off-topic chatter drawn from ``noise_topics`` extra topics.
    """
    if num_circles < 0:
        raise MiningError(f"num_circles must be >= 0, got {num_circles}")
    if not 0.0 <= topic_probability <= 1.0:
        raise MiningError(
            f"topic_probability must be in [0, 1], got {topic_probability}"
        )
    if num_topics < topics_per_circle:
        raise MiningError(
            "num_topics must be >= topics_per_circle "
            f"({num_topics} < {topics_per_circle})"
        )
    rng = random.Random(seed)
    graph = powerlaw_cluster_graph(
        num_users,
        edges_per_vertex,
        triangle_probability,
        seed=rng.randrange(2**31),
    )
    theme_topics = list(range(num_topics))
    chatter_topics = list(range(num_topics, num_topics + noise_topics))

    circle_members: list[list[int]] = []
    circle_topics: list[list[int]] = []
    pair_topics: dict[tuple[int, int], set[int]] = {}
    for _ in range(num_circles):
        center = rng.randrange(num_users)
        members = _bfs_ball(graph, center, circle_size)
        topics = rng.sample(theme_topics, topics_per_circle)
        circle_members.append(members)
        circle_topics.append(topics)
        member_set = set(members)
        for u, v in graph.iter_edges():
            if u in member_set and v in member_set:
                pair_topics.setdefault((u, v), set()).update(topics)

    network = EdgeDatabaseNetwork()
    for u, v in sorted(graph.iter_edges()):
        topics = pair_topics.get((u, v), set())
        for _ in range(threads_per_pair):
            thread: set[int] = set()
            for topic in topics:
                if rng.random() < topic_probability:
                    thread.add(topic)
            if rng.random() < 0.5 or not thread:
                thread.add(rng.choice(chatter_topics))
            network.add_transaction(u, v, thread)
    # Keep the full social graph, including edges without planted topics.
    for u, v in graph.iter_edges():
        if not network.graph.has_edge(u, v):
            network.graph.add_edge(u, v)

    network.item_labels = {
        t: f"topic_{t}" for t in theme_topics + chatter_topics
    }
    network.vertex_labels = {v: f"user_{v}" for v in range(num_users)}

    if not return_ground_truth:
        return network
    planted = [
        PlantedCommunity(frozenset(members), make_pattern(topics))
        for members, topics in zip(circle_members, circle_topics)
    ]
    return network, planted
