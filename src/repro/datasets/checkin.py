"""Check-in database network — Brightkite / Gowalla surrogate.

The paper turns a location-based social network into a database network:
the friendship graph is the network; each user's check-in history is cut
into periods and the locations visited within one period form a
transaction. A theme community is then "a group of friends who frequently
visit the same set of places".

The surrogate generates exactly that structure:

- a power-law-cluster friendship graph (heavy-tailed degrees, abundant
  triangles — the empirical shape of Brightkite/Gowalla);
- ``num_groups`` *hangout groups*: connected vertex sets (BFS balls around
  random centres) that share a small set of favourite locations;
- per-user transaction databases where each period's transaction mixes the
  user's groups' favourite places (with probability ``visit_probability``
  per place) and random noise locations.

Members of a hangout group therefore have a high frequency for the group's
location-set, and the group is densely connected — a planted theme
community. Groups overlap (balls intersect), reproducing the arbitrarily
overlapping communities the paper emphasizes.
"""

from __future__ import annotations

import random
from collections import deque

from repro.errors import MiningError
from repro.graphs.graph import Graph
from repro.graphs.generators import powerlaw_cluster_graph
from repro.network.dbnetwork import DatabaseNetwork
from repro.txdb.database import TransactionDatabase


def _bfs_ball(graph: Graph, center: int, size: int) -> list[int]:
    """The first ``size`` vertices of a BFS from ``center``."""
    ball = [center]
    seen = {center}
    queue = deque([center])
    while queue and len(ball) < size:
        v = queue.popleft()
        for w in sorted(graph.neighbors(v)):
            if w not in seen:
                seen.add(w)
                ball.append(w)
                queue.append(w)
                if len(ball) >= size:
                    break
    return ball


def generate_checkin_network(
    num_users: int = 300,
    num_locations: int = 60,
    num_groups: int = 12,
    group_size: int = 8,
    locations_per_group: int = 3,
    periods: int = 30,
    visit_probability: float = 0.6,
    noise_locations: int = 2,
    edges_per_vertex: int = 3,
    triangle_probability: float = 0.6,
    seed: int | None = 0,
    return_ground_truth: bool = False,
):
    """Generate a check-in database network with planted hangout groups.

    Every user has ``periods`` transactions (one per period). A user in a
    hangout group includes each of the group's favourite locations in a
    period's transaction with probability ``visit_probability``; everyone
    additionally checks in at up to ``noise_locations`` random places per
    period.

    With ``return_ground_truth=True`` the return value is a pair
    ``(network, [PlantedCommunity])`` so recovery quality can be measured
    (see :mod:`repro.datasets.ground_truth`).
    """
    if num_groups < 0:
        raise MiningError(f"num_groups must be >= 0, got {num_groups}")
    if not 0.0 <= visit_probability <= 1.0:
        raise MiningError(
            f"visit_probability must be in [0, 1], got {visit_probability}"
        )
    rng = random.Random(seed)
    graph = powerlaw_cluster_graph(
        num_users,
        edges_per_vertex,
        triangle_probability,
        seed=rng.randrange(2**31),
    )
    locations = list(range(num_locations))

    # Plant hangout groups: a BFS ball of friends + favourite locations.
    group_members: dict[int, list[int]] = {v: [] for v in range(num_users)}
    group_places: list[list[int]] = []
    group_balls: list[list[int]] = []
    for g in range(num_groups):
        center = rng.randrange(num_users)
        ball = _bfs_ball(graph, center, group_size)
        group_balls.append(ball)
        places = rng.sample(locations, min(locations_per_group, num_locations))
        group_places.append(places)
        for member in ball:
            group_members[member].append(g)

    databases: dict[int, TransactionDatabase] = {}
    for user in range(num_users):
        database = TransactionDatabase()
        for _ in range(periods):
            visited: set[int] = set()
            for g in group_members[user]:
                for place in group_places[g]:
                    if rng.random() < visit_probability:
                        visited.add(place)
            for _ in range(rng.randint(0, noise_locations)):
                visited.add(rng.choice(locations))
            if not visited:
                visited.add(rng.choice(locations))
            database.add_transaction(visited)
        databases[user] = database

    item_labels = {i: f"place_{i}" for i in locations}
    vertex_labels = {v: f"user_{v}" for v in range(num_users)}
    network = DatabaseNetwork(graph, databases, vertex_labels, item_labels)
    if not return_ground_truth:
        return network

    from repro._ordering import make_pattern
    from repro.datasets.ground_truth import PlantedCommunity

    planted = [
        PlantedCommunity(frozenset(ball), make_pattern(places))
        for ball, places in zip(group_balls, group_places)
    ]
    return network, planted
