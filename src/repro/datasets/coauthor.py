"""Co-author database network — AMINER surrogate.

The paper builds a database network from a citation dump: authors are
vertices, co-authorship gives edges, and each paper contributes one
transaction (its abstract keywords) to every author's database. A theme
community is "a group of authors who collaborate closely and share the
same research interest described by the same set of keywords"
(Section 7.4, Table 4, Figure 6).

The surrogate generates papers directly:

- ``num_topics`` research topics, each a set of ``keywords_per_topic``
  keywords and a pool of member authors (pools overlap — senior authors
  straddle topics, the Philip S. Yu / Jiawei Han effect of Figure 6);
- papers pick a topic, sample 2-5 authors from its pool (weighted so
  repeat collaborations dominate, creating dense cliques), take a subset
  of the topic's keywords plus noise keywords, and clique-connect their
  authors;
- optionally one "hyper-paper" with ``hyper_paper_authors`` authors — the
  analogue of the 115-author IBM Blue Gene paper that produces the very
  large α* the paper observes on AMINER (Figure 5(c)).
"""

from __future__ import annotations

import random

from repro.errors import MiningError
from repro.graphs.graph import Graph
from repro.network.dbnetwork import DatabaseNetwork
from repro.txdb.database import TransactionDatabase


def generate_coauthor_network(
    num_authors: int = 200,
    num_topics: int = 10,
    keywords_per_topic: int = 4,
    num_keywords: int = 80,
    authors_per_topic: int = 25,
    num_papers: int = 600,
    noise_keywords: int = 2,
    hyper_paper_authors: int = 0,
    collaboration_bias: float = 0.7,
    seed: int | None = 0,
    return_ground_truth: bool = False,
):
    """Generate a co-author database network with planted research themes.

    ``collaboration_bias`` is the probability that a paper's author list is
    drawn from a previous paper of the same topic (plus/minus one author)
    rather than fresh — this concentrates collaborations into cliques, the
    structure theme communities need.

    With ``return_ground_truth=True`` returns ``(network, planted)`` where
    each planted community is a topic's *publishing* authors (those who
    actually wrote at least one paper on it) with the topic's keyword set
    as the theme.
    """
    if num_topics < 1:
        raise MiningError(f"num_topics must be >= 1, got {num_topics}")
    if num_keywords < num_topics * keywords_per_topic:
        raise MiningError(
            "num_keywords must cover the topics: need >= "
            f"{num_topics * keywords_per_topic}, got {num_keywords}"
        )
    rng = random.Random(seed)
    keywords = list(range(num_keywords))

    # Disjoint core keyword sets per topic; noise comes from the whole pool.
    topic_keywords: list[list[int]] = []
    shuffled = keywords[:]
    rng.shuffle(shuffled)
    for t in range(num_topics):
        start = t * keywords_per_topic
        topic_keywords.append(shuffled[start:start + keywords_per_topic])

    # Overlapping author pools.
    topic_authors: list[list[int]] = []
    for _ in range(num_topics):
        pool_size = min(authors_per_topic, num_authors)
        topic_authors.append(rng.sample(range(num_authors), pool_size))

    graph = Graph()
    for author in range(num_authors):
        graph.add_vertex(author)
    databases: dict[int, TransactionDatabase] = {
        a: TransactionDatabase() for a in range(num_authors)
    }

    def publish(authors: list[int], paper_keywords: set[int]) -> None:
        for i, a in enumerate(authors):
            for b in authors[i + 1:]:
                if a != b:
                    graph.add_edge(a, b)
        for a in authors:
            databases[a].add_transaction(paper_keywords)

    recent_teams: list[list[list[int]]] = [[] for _ in range(num_topics)]
    topic_publishers: list[set[int]] = [set() for _ in range(num_topics)]
    for _ in range(num_papers):
        topic = rng.randrange(num_topics)
        pool = topic_authors[topic]
        if recent_teams[topic] and rng.random() < collaboration_bias:
            team = list(rng.choice(recent_teams[topic]))
            # Occasionally rotate one member to grow the clique slowly.
            if rng.random() < 0.5 and len(team) > 2:
                team[rng.randrange(len(team))] = rng.choice(pool)
                team = list(dict.fromkeys(team))
        else:
            team_size = rng.randint(2, min(5, len(pool)))
            team = rng.sample(pool, team_size)
        core = topic_keywords[topic]
        take = rng.randint(max(2, len(core) - 1), len(core))
        paper_keywords = set(rng.sample(core, take))
        for _ in range(rng.randint(0, noise_keywords)):
            paper_keywords.add(rng.choice(keywords))
        publish(team, paper_keywords)
        topic_publishers[topic].update(team)
        recent_teams[topic].append(team)
        if len(recent_teams[topic]) > 5:
            recent_teams[topic].pop(0)

    if hyper_paper_authors > 1:
        team = rng.sample(
            range(num_authors), min(hyper_paper_authors, num_authors)
        )
        topic = rng.randrange(num_topics)
        publish(team, set(topic_keywords[topic][:2]))

    # Authors who never published still need a database (their own note).
    for a in range(num_authors):
        if not databases[a]:
            databases[a].add_transaction([rng.choice(keywords)])

    item_labels = {k: f"keyword_{k}" for k in keywords}
    vertex_labels = {a: f"author_{a}" for a in range(num_authors)}
    network = DatabaseNetwork(graph, databases, vertex_labels, item_labels)
    if not return_ground_truth:
        return network

    from repro._ordering import make_pattern
    from repro.datasets.ground_truth import PlantedCommunity

    planted = [
        PlantedCommunity(frozenset(publishers), make_pattern(core))
        for publishers, core in zip(topic_publishers, topic_keywords)
        if publishers
    ]
    return network, planted
