"""Dataset generators for the evaluation (Section 7).

The paper evaluates on two check-in networks (Brightkite, Gowalla), a
co-author network (AMINER), and a synthetic network (SYN). The raw dumps
are not redistributable / not available offline, so this package generates
faithful surrogates:

- :mod:`repro.datasets.toy` — the 9-vertex running example of Figure 1,
  with exactly known trusses (used heavily in tests and the quickstart);
- :mod:`repro.datasets.synthetic` — the SYN recipe reimplemented verbatim
  (seed vertices, BFS transaction diffusion, 10% item mutation,
  ``⌈e^{0.1·d}⌉`` transactions of length ``⌈e^{0.13·d}⌉``);
- :mod:`repro.datasets.checkin` — Brightkite/Gowalla surrogate: friendship
  graph + per-user check-in databases with planted co-visitation groups;
- :mod:`repro.datasets.coauthor` — AMINER surrogate: collaboration cliques
  per paper + keyword-transaction databases with planted research themes.

Every generator takes a ``seed`` and is fully deterministic given it.
"""

from repro.datasets.checkin import generate_checkin_network
from repro.datasets.coauthor import generate_coauthor_network
from repro.datasets.ground_truth import (
    PlantedCommunity,
    RecoveryReport,
    evaluate_recovery,
)
from repro.datasets.messages import generate_message_network
from repro.datasets.synthetic import generate_synthetic_network
from repro.datasets.toy import toy_database_network

__all__ = [
    "toy_database_network",
    "generate_synthetic_network",
    "generate_checkin_network",
    "generate_coauthor_network",
    "generate_message_network",
    "PlantedCommunity",
    "RecoveryReport",
    "evaluate_recovery",
]
