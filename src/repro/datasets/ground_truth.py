"""Planted ground truth and community-recovery metrics.

The surrogate generators plant communities by construction (hangout
groups, research topics). When asked, they return the planted structure so
recovery quality is measurable: does theme-community mining actually find
the groups that generated the data?

Matching follows the community-detection convention: each planted
community is matched to its best-Jaccard mined community; recovery quality
is the average best Jaccard (a value in [0, 1]), plus a recall-style count
of planted communities recovered above a Jaccard threshold.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro._ordering import Pattern, make_pattern
from repro.core.communities import ThemeCommunity


@dataclass(frozen=True)
class PlantedCommunity:
    """One planted community: its members and the theme that generated it."""

    members: frozenset[int]
    theme: Pattern

    @property
    def size(self) -> int:
        return len(self.members)


def jaccard(a: Iterable[int], b: Iterable[int]) -> float:
    """Jaccard similarity of two vertex sets."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    union = len(set_a | set_b)
    return len(set_a & set_b) / union if union else 0.0


@dataclass(frozen=True)
class RecoveryReport:
    """How well mined communities recover the planted ones."""

    num_planted: int
    num_mined: int
    average_best_jaccard: float
    recovered: int  # planted communities matched above the threshold
    threshold: float

    @property
    def recovery_rate(self) -> float:
        if self.num_planted == 0:
            return 1.0
        return self.recovered / self.num_planted


def evaluate_recovery(
    planted: Sequence[PlantedCommunity],
    mined: Sequence[ThemeCommunity],
    threshold: float = 0.5,
    match_theme: bool = False,
) -> RecoveryReport:
    """Match each planted community to its best mined counterpart.

    ``match_theme=True`` additionally requires the mined community's
    pattern to overlap the planted theme — the stricter "found the group
    *for the right reason*" notion.
    """
    best_scores = []
    recovered = 0
    for plant in planted:
        candidates = mined
        if match_theme:
            theme = set(plant.theme)
            candidates = [
                c for c in mined if theme & set(make_pattern(c.pattern))
            ]
        best = max(
            (jaccard(plant.members, c.members) for c in candidates),
            default=0.0,
        )
        best_scores.append(best)
        if best >= threshold:
            recovered += 1
    average = (
        sum(best_scores) / len(best_scores) if best_scores else 0.0
    )
    return RecoveryReport(
        num_planted=len(planted),
        num_mined=len(mined),
        average_best_jaccard=average,
        recovered=recovered,
        threshold=threshold,
    )
