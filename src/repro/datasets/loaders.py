"""Loaders for the paper's real dataset formats.

The evaluation datasets are public but not redistributable with this
library. Users who download them can load the original files directly:

- **SNAP check-in format** (Brightkite ``loc-brightkite``, Gowalla
  ``loc-gowalla``): an edge list ``user<TAB>user`` plus a check-in file
  ``user<TAB>time<TAB>lat<TAB>lon<TAB>location_id``. The loader replicates
  the paper's construction: check-ins are cut into fixed periods (2 days
  in the paper) and the locations within one period form a transaction.

- **AMINER citation format** (DBLP citation v2): records separated by
  blank lines with ``#*`` title, ``#@`` authors, ``#!`` abstract lines.
  The paper uses abstract keywords as items and connects co-authors; we
  tokenize abstracts the same way (lower-cased alphabetic tokens, stopword
  and short-token filtered).

Both loaders stream line-by-line, so files larger than memory are fine;
optional caps bound the output for laptop-scale experiments.
"""

from __future__ import annotations

import datetime as _dt
from collections.abc import Iterable
from pathlib import Path

from repro.errors import NetworkFormatError
from repro.network.builder import DatabaseNetworkBuilder
from repro.network.dbnetwork import DatabaseNetwork

#: Minimal English stopword list for abstract tokenization. The paper does
#: not publish its exact list; any reasonable list preserves the structure
#: (theme communities are driven by domain keywords, not function words).
STOPWORDS = frozenset(
    """a an and are as at be but by for from has have in is it its of on or
    that the this to was we were which with not no can our their they them
    these those using use used based new between than then also such each
    other into over under more most some any all one two both during after
    before where when while however been being because study paper approach
    method methods results show shows proposed propose present presents
    problem problems data model models system systems""".split()
)


def _parse_checkin_time(text: str) -> _dt.datetime | None:
    """Parse SNAP's ISO-8601 check-in timestamps (Z suffix)."""
    try:
        return _dt.datetime.strptime(text, "%Y-%m-%dT%H:%M:%SZ")
    except ValueError:
        return None


def load_snap_checkin_network(
    edges_path: str | Path,
    checkins_path: str | Path,
    period_days: int = 2,
    max_users: int | None = None,
    max_checkins: int | None = None,
) -> DatabaseNetwork:
    """Load a Brightkite/Gowalla-style dataset (Section 7 construction).

    ``period_days`` is the paper's 2-day window: all locations a user
    checks into within one window become one transaction. ``max_users``
    keeps only the first N distinct users of the edge list (and their
    check-ins); ``max_checkins`` caps the check-in scan.
    """
    edges_path = Path(edges_path)
    checkins_path = Path(checkins_path)
    builder = DatabaseNetworkBuilder()

    allowed_users: set[str] | None = None
    if max_users is not None:
        allowed_users = set()

    with edges_path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise NetworkFormatError(
                    f"{edges_path}:{line_number}: expected "
                    f"'user user', got {line!r}"
                )
            u, v = parts
            if allowed_users is not None:
                if (
                    len(allowed_users) >= max_users
                    and not {u, v} <= allowed_users
                ):
                    continue
                allowed_users.update((u, v))
            if u != v:
                builder.add_edge(u, v)

    # Accumulate per-user, per-period location sets.
    periods: dict[tuple[str, int], set[str]] = {}
    epoch = _dt.datetime(2000, 1, 1)
    seen_checkins = 0
    with checkins_path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) < 5:
                parts = line.split()
            if len(parts) < 5:
                raise NetworkFormatError(
                    f"{checkins_path}:{line_number}: expected 5 fields, "
                    f"got {line!r}"
                )
            user, time_text, _lat, _lon, location = (
                parts[0], parts[1], parts[2], parts[3], parts[4],
            )
            if allowed_users is not None and user not in allowed_users:
                continue
            timestamp = _parse_checkin_time(time_text)
            if timestamp is None or not location:
                continue
            period = (timestamp - epoch).days // period_days
            periods.setdefault((user, period), set()).add(location)
            seen_checkins += 1
            if max_checkins is not None and seen_checkins >= max_checkins:
                break

    for (user, _period), locations in sorted(periods.items()):
        builder.add_transaction(user, sorted(locations))
    return builder.build()


def tokenize_abstract(text: str) -> list[str]:
    """Lower-cased alphabetic tokens, stopword- and length-filtered."""
    tokens = []
    word = []
    for ch in text.lower():
        if ch.isalpha():
            word.append(ch)
        elif word:
            tokens.append("".join(word))
            word = []
    if word:
        tokens.append("".join(word))
    return [
        t for t in tokens if len(t) >= 3 and t not in STOPWORDS
    ]


def iter_aminer_records(path: str | Path) -> Iterable[dict[str, str]]:
    """Stream records of the AMINER citation format.

    Yields dicts with keys ``title``, ``authors`` (raw ``;``-separated
    string), and ``abstract``; missing fields are empty strings.
    """
    record: dict[str, str] = {}
    with Path(path).open("r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if line.startswith("#*"):
                if record:
                    yield record
                record = {"title": line[2:].strip()}
            elif line.startswith("#@"):
                record["authors"] = line[2:].strip()
            elif line.startswith("#!"):
                record["abstract"] = line[2:].strip()
            elif not line.strip() and record:
                yield record
                record = {}
    if record:
        yield record


def load_aminer_network(
    path: str | Path,
    max_papers: int | None = None,
    max_keywords_per_paper: int | None = 30,
) -> DatabaseNetwork:
    """Load an AMINER citation dump into a database network (Section 7).

    Authors become vertices connected when they co-author; each paper's
    abstract keywords become one transaction in every author's database.
    Papers without authors or abstracts are skipped, as the paper's
    construction implies.
    """
    builder = DatabaseNetworkBuilder()
    for count, record in enumerate(iter_aminer_records(path)):
        if max_papers is not None and count >= max_papers:
            break
        authors = [
            a.strip()
            for a in record.get("authors", "").split(";")
            if a.strip()
        ]
        keywords = tokenize_abstract(record.get("abstract", ""))
        if max_keywords_per_paper is not None:
            keywords = keywords[:max_keywords_per_paper]
        if not authors or not keywords:
            continue
        for i, a in enumerate(authors):
            for b in authors[i + 1:]:
                if a != b:
                    builder.add_edge(a, b)
        transaction = sorted(set(keywords))
        for author in authors:
            builder.add_transaction(author, transaction)
    return builder.build()
