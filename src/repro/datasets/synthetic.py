"""The SYN synthetic database network (Section 7, "Synthetic (SYN) dataset").

The paper's recipe, reimplemented step by step:

1. Generate a network (the paper used JUNG; we default to the Holme-Kim
   power-law-cluster model because pattern trusses need triangles).
2. Randomly select ``num_seeds`` seed vertices; build each seed's database
   by sampling random itemsets from the item universe ``S``.
3. Visit the remaining vertices in BFS order from the seeds; build each
   vertex's database by sampling transactions from already-built neighbour
   databases and mutating ``mutation_rate`` (10% in the paper) of the items
   of each sampled transaction to random items of ``S``.
4. For a vertex of degree ``d``, the database has ``⌈e^{0.1·d}⌉``
   transactions of length ``⌈e^{0.13·d}⌉`` (capped — pure Python cannot
   hold the exponential blow-up of the paper's largest hubs, and the cap
   only affects the top few hub vertices).

The BFS diffusion is what makes neighbouring vertices share frequent
patterns, so theme communities exist by construction.
"""

from __future__ import annotations

import math
import random
from collections import deque

from repro.errors import MiningError
from repro.graphs.graph import Graph
from repro.graphs.generators import powerlaw_cluster_graph
from repro.network.dbnetwork import DatabaseNetwork
from repro.txdb.database import TransactionDatabase


def _num_transactions(degree: int, cap: int) -> int:
    return min(cap, math.ceil(math.exp(0.1 * degree)))


def _transaction_length(degree: int, cap: int, universe: int) -> int:
    return max(1, min(cap, universe, math.ceil(math.exp(0.13 * degree))))


def generate_synthetic_network(
    num_vertices: int = 500,
    num_items: int = 50,
    num_seeds: int = 10,
    mutation_rate: float = 0.1,
    edges_per_vertex: int = 3,
    triangle_probability: float = 0.5,
    max_transactions: int = 64,
    max_transaction_length: int = 16,
    graph: Graph | None = None,
    seed: int | None = 0,
) -> DatabaseNetwork:
    """Generate a SYN-style database network.

    Defaults are scaled for pure-Python experiments; the structure (not the
    scale) is what the evaluation depends on. Pass ``graph`` to diffuse
    transactions over a custom topology.
    """
    if num_seeds < 1:
        raise MiningError(f"num_seeds must be >= 1, got {num_seeds}")
    if not 0.0 <= mutation_rate <= 1.0:
        raise MiningError(
            f"mutation_rate must be in [0, 1], got {mutation_rate}"
        )
    rng = random.Random(seed)
    if graph is None:
        graph = powerlaw_cluster_graph(
            num_vertices,
            edges_per_vertex,
            triangle_probability,
            seed=rng.randrange(2**31),
        )
    items = list(range(num_items))

    def random_transaction(length: int) -> list[int]:
        return rng.sample(items, min(length, len(items)))

    def seed_database(vertex: int) -> TransactionDatabase:
        degree = graph.degree(vertex)
        database = TransactionDatabase()
        length = _transaction_length(
            degree, max_transaction_length, num_items
        )
        for _ in range(_num_transactions(degree, max_transactions)):
            database.add_transaction(random_transaction(length))
        return database

    def diffused_database(
        vertex: int, built: dict[int, TransactionDatabase]
    ) -> TransactionDatabase:
        degree = graph.degree(vertex)
        neighbor_pool = [
            t
            for n in graph.neighbors(vertex)
            if n in built
            for t in built[n].transactions()
        ]
        database = TransactionDatabase()
        length = _transaction_length(
            degree, max_transaction_length, num_items
        )
        for _ in range(_num_transactions(degree, max_transactions)):
            if neighbor_pool:
                sampled = list(rng.choice(neighbor_pool))
            else:
                sampled = random_transaction(length)
            # Mutate ~mutation_rate of the items to random items of S.
            # Per-item Bernoulli rather than a rounded count so short
            # transactions still mutate occasionally.
            mutated = set(sampled)
            for item in sampled:
                if rng.random() < mutation_rate:
                    mutated.discard(item)
                    mutated.add(rng.choice(items))
            if not mutated:
                mutated = set(random_transaction(1))
            database.add_transaction(mutated)
        return database

    vertices = sorted(graph.vertices())
    seeds = rng.sample(vertices, min(num_seeds, len(vertices)))
    databases: dict[int, TransactionDatabase] = {}
    for s in seeds:
        databases[s] = seed_database(s)

    # BFS diffusion from all seeds simultaneously.
    queue = deque(seeds)
    visited = set(seeds)
    while queue:
        v = queue.popleft()
        for w in sorted(graph.neighbors(v)):
            if w not in visited:
                visited.add(w)
                databases[w] = diffused_database(w, databases)
                queue.append(w)
    # Vertices unreachable from any seed get seed-style databases.
    for v in vertices:
        if v not in databases:
            databases[v] = seed_database(v)

    return DatabaseNetwork(graph, databases)
