"""The theme-community data warehouse (Section 6 motivation).

The paper advocates building a warehouse of decomposed maximal pattern
trusses once, then answering arbitrary ``(q, α)`` queries from the index.
:class:`ThemeCommunityWarehouse` packages that workflow: build (or load) a
TC-Tree, query it, and persist it as JSON.

Persistence format (version 1)::

    {
      "format": "repro-tctree",
      "version": 1,
      "num_items": 42,
      "nodes": [
        {"pattern": [3, 7],
         "frequencies": {"0": 0.5, ...},
         "levels": [[alpha, [[u, v], ...]], ...]},
        ...
      ]
    }

Nodes are listed parent-before-child; the tree shape is implied by the
patterns (each node's parent is its pattern minus the last item).

JSON is the *interchange* format. For serving-grade load times use the
binary snapshot format of :mod:`repro.serve.snapshot`
(:meth:`ThemeCommunityWarehouse.save_snapshot`, ``repro snapshot``):
flat sections plus a per-node offset table, decodable node-by-node by
the lazy query engine (:class:`repro.serve.engine.IndexedWarehouse`).
:meth:`ThemeCommunityWarehouse.load` sniffs the magic bytes and accepts
both formats.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path

from repro._ordering import Pattern
from repro.core.communities import ThemeCommunity
from repro.errors import TCIndexError
from repro.index.decomposition import DecompositionLevel, TrussDecomposition
from repro.index.query import QueryAnswer, query_tc_tree
from repro.index.tcnode import TCNode
from repro.index.tctree import TCTree, build_tc_tree
from repro.network.dbnetwork import DatabaseNetwork

_FORMAT = "repro-tctree"
_VERSION = 1


class ThemeCommunityWarehouse:
    """Build-once / query-many facade over a TC-Tree."""

    def __init__(self, tree: TCTree) -> None:
        self.tree = tree

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        network: DatabaseNetwork,
        max_length: int | None = None,
        workers: int = 1,
        backend: str = "process",
        trace=None,
    ) -> "ThemeCommunityWarehouse":
        """Index every maximal pattern truss of ``network``.

        ``workers``/``backend``/``trace`` select the build parallelism and
        optional span tracing exactly as in
        :func:`~repro.index.tctree.build_tc_tree`.
        """
        return cls(
            build_tc_tree(
                network, max_length=max_length, workers=workers,
                backend=backend, trace=trace,
            )
        )

    # ------------------------------------------------------------------
    def query(
        self,
        pattern: Iterable[int] | None = None,
        alpha: float = 0.0,
    ) -> QueryAnswer:
        """Answer ``(q, α_q)``; see :func:`repro.index.query.query_tc_tree`."""
        return query_tc_tree(self.tree, pattern=pattern, alpha=alpha)

    def communities(
        self,
        pattern: Iterable[int] | None = None,
        alpha: float = 0.0,
        min_size: int = 3,
    ) -> list[ThemeCommunity]:
        """Theme communities matching a query, largest-first."""
        return [
            c
            for c in self.query(pattern, alpha).communities()
            if c.size >= min_size
        ]

    @property
    def num_indexed_trusses(self) -> int:
        return self.tree.num_nodes

    def alpha_range(self) -> tuple[float, float]:
        """The non-trivial query range ``[0, α*)`` over all themes."""
        return (0.0, self.tree.max_alpha())

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        nodes = []
        for node in self.tree.iter_nodes():
            decomposition = node.decomposition
            assert decomposition is not None  # non-root nodes always have one
            nodes.append(
                {
                    "pattern": list(node.pattern),
                    "frequencies": {
                        str(v): f
                        for v, f in sorted(decomposition.frequencies.items())
                    },
                    "levels": [
                        [level.alpha, [list(e) for e in level.removed_edges]]
                        for level in decomposition.levels
                    ],
                }
            )
        return {
            "format": _FORMAT,
            "version": _VERSION,
            "num_items": self.tree.num_items,
            "nodes": nodes,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "ThemeCommunityWarehouse":
        if document.get("format") != _FORMAT:
            raise TCIndexError(
                f"not a {_FORMAT} document: format={document.get('format')!r}"
            )
        if document.get("version") != _VERSION:
            raise TCIndexError(
                f"unsupported version {document.get('version')!r}"
            )
        root = TCNode(None, (), None)
        nodes_by_pattern: dict[Pattern, TCNode] = {}
        for entry in document["nodes"]:
            pattern: Pattern = tuple(entry["pattern"])
            if not pattern:
                raise TCIndexError("node with empty pattern")
            if pattern in nodes_by_pattern:
                # A duplicate entry would add_child twice and silently
                # build a malformed tree (two siblings with one item).
                raise TCIndexError(f"duplicate node for pattern {pattern}")
            decomposition = TrussDecomposition(
                pattern=pattern,
                levels=[
                    DecompositionLevel(
                        alpha, [(int(u), int(v)) for u, v in edges]
                    )
                    for alpha, edges in entry["levels"]
                ],
                frequencies={
                    int(v): f for v, f in entry["frequencies"].items()
                },
            )
            node = TCNode(pattern[-1], pattern, decomposition)
            nodes_by_pattern[pattern] = node
            parent_pattern = pattern[:-1]
            parent = (
                root if not parent_pattern
                else nodes_by_pattern.get(parent_pattern)
            )
            if parent is None:
                raise TCIndexError(
                    f"node {pattern} appears before its parent "
                    f"{parent_pattern}"
                )
            parent.add_child(node)
        return cls(TCTree(root, num_items=int(document["num_items"])))

    def save(self, path: str | Path) -> None:
        """Write the JSON interchange document."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)

    def save_snapshot(self, path: str | Path) -> int:
        """Write the binary serving snapshot; returns its byte size.

        See :mod:`repro.serve.snapshot` for the format. Prefer this for
        anything the query engine or ``repro serve`` will load.
        """
        from repro.serve.snapshot import write_snapshot

        return write_snapshot(self.tree, path)

    @classmethod
    def load(cls, path: str | Path) -> "ThemeCommunityWarehouse":
        """Load either persistence format (sniffed by magic bytes).

        Binary snapshots are fully materialized here; use
        :class:`repro.serve.engine.IndexedWarehouse` to query one lazily.
        """
        from repro.serve.snapshot import TCTreeSnapshot, is_snapshot_file

        path = Path(path)
        if is_snapshot_file(path):
            with TCTreeSnapshot.open(path) as snapshot:
                return snapshot.materialize()
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise TCIndexError(f"invalid JSON in {path}: {exc}") from exc
        except UnicodeDecodeError as exc:
            raise TCIndexError(
                f"{path} is neither a snapshot nor a JSON document"
            ) from exc
        return cls.from_dict(document)
