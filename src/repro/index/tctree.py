"""TC-Tree construction (Algorithm 4).

The TC-Tree is a set-enumeration tree over the item universe in which
every materialized node stores the decomposed maximal pattern truss
``L_p`` of its pattern. Construction is breadth-first:

1. Layer 1: for every item with a non-empty ``C*_{s}(0)``, decompose and
   attach under the root (the paper parallelizes this layer).
2. For a popped node ``n_f``, each *later* sibling ``n_b``
   (``s_{n_f} ≺ s_{n_b}``) proposes child pattern ``p_f ∪ {s_{n_b}}``;
   the child's truss is computed inside ``C*_{p_f}(0) ∩ C*_{p_b}(0)``
   (Proposition 5.3) and kept only when non-empty (Proposition 5.2
   justifies pruning the whole subtree otherwise).

``workers > 1`` selects a parallel build: ``backend="process"`` (the
default) fans layer-1 items and whole enumeration subtrees across a
process pool (:mod:`repro.index.parallel` — real speedup on a GIL-bound
engine), while ``backend="thread"`` keeps the historical thread pool over
layer 1 only. The serial path is the parity oracle: both parallel
backends must reproduce its tree exactly.

During the build each frontier node keeps its ``C*_p(0)`` carrier alive
for the intersection step; the carriers are released once the node's
children are built, so steady-state memory is the sum of the ``L_p``
lists, as in the paper. Carriers are kept in CSR form whenever the labels
allow it, so sibling intersections are sorted-array merges rather than
Python set intersections, and the child decomposition runs end-to-end on
the CSR engine.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator
from concurrent.futures import ThreadPoolExecutor

from repro._ordering import EMPTY_PATTERN, Pattern
from repro.errors import TCIndexError
from repro.graphs.csr import CSRGraph, GraphLike
from repro.index.decomposition import (
    MaskedCarrier,
    TrussDecomposition,
    decompose_network_pattern,
    warm_network_triangles,
)
from repro.index.tcnode import TCNode
from repro.network.dbnetwork import DatabaseNetwork
from repro.network.theme import intersect_graphs
from repro.obs.trace import Tracer, span, tracing


class TCTree:
    """A built TC-Tree: the queryable index of all maximal pattern trusses."""

    #: Tree-model tag; the serving layer dispatches snapshot payloads on
    #: it (``"edge"`` on :class:`repro.edgenet.index.EdgeTCTree`).
    kind = "vertex"

    def __init__(self, root: TCNode, num_items: int) -> None:
        self.root = root
        self.num_items = num_items

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Indexed nodes (excluding the root) = #maximal pattern trusses."""
        return sum(1 for _ in self.iter_nodes())

    @property
    def depth(self) -> int:
        """Longest indexed pattern length."""
        return self.root.depth_below

    def iter_nodes(self) -> Iterator[TCNode]:
        """All non-root nodes, depth-first."""
        for child in self.root.children:
            yield from child.iter_subtree()

    def nodes_at_depth(self, depth: int) -> list[TCNode]:
        """All nodes whose pattern has length ``depth`` (depth >= 1)."""
        return [n for n in self.iter_nodes() if len(n.pattern) == depth]

    def patterns(self) -> list[Pattern]:
        return sorted(node.pattern for node in self.iter_nodes())

    def find_node(self, pattern: Pattern) -> TCNode | None:
        """Locate the node of ``pattern``, or None when not indexed."""
        node = self.root
        for item in pattern:
            node = next(
                (c for c in node.children if c.item == item), None
            )  # type: ignore[assignment]
            if node is None:
                return None
        return node if node is not self.root else None

    def max_alpha(self) -> float:
        """The global non-trivial α range upper bound over all themes."""
        return max(
            (n.decomposition.max_alpha for n in self.iter_nodes()
             if n.decomposition is not None),
            default=0.0,
        )

    def __repr__(self) -> str:
        return f"TCTree(nodes={self.num_nodes}, depth={self.depth})"


def _carrier_of(decomposition: TrussDecomposition) -> GraphLike:
    """The ``C*_p(0)`` frontier carrier, in the size-appropriate form.

    The CSR engine captures the carrier during decomposition; taking it
    here transfers ownership to the frontier bookkeeping (released once
    the node's children are built). Released or legacy-path carriers are
    rebuilt from the levels — tiny ones as adjacency-set graphs.
    """
    return decomposition.frontier_carrier()


def _expand_frontier(
    network: DatabaseNetwork,
    queue: deque[TCNode],
    truss_graphs: dict[int, GraphLike],
    parent_of: dict[int, TCNode],
    max_length: int | None = None,
    reuse: dict[Pattern, TrussDecomposition] | None = None,
    decompose=decompose_network_pattern,
    node_factory=TCNode,
) -> None:
    """Run the BFS child-generation loop of Algorithm 4 to completion.

    ``queue`` seeds the frontier; ``truss_graphs`` maps ``id(node)`` to
    the node's live ``C*_p(0)`` carrier and ``parent_of`` maps it to the
    node whose ``children`` list supplies the pairing siblings. The serial
    build seeds all of layer 1; the process-parallel subtree workers seed
    a single layer-1 node whose siblings may arrive carrier-less — those
    carriers are rebuilt lazily and memoized back into ``truss_graphs``
    (released, like every carrier, when their node is popped).

    The loop is model-agnostic: ``decompose`` mines a child pattern inside
    a carrier (``decompose_network_pattern`` for vertex database networks,
    ``decompose_edge_network_pattern`` for edge ones — both accept
    ``(network, pattern, carrier=..., capture_carrier=...)``) and
    ``node_factory`` builds the matching node type. Everything else —
    sibling pairing, masked-carrier intersections, lazy materialization,
    carrier lifecycle — is identical in the two models.
    """
    with span("build.frontier", seeds=len(queue)):
        _frontier_loop(
            network, queue, truss_graphs, parent_of,
            max_length, reuse, decompose, node_factory,
        )


def _frontier_loop(
    network, queue, truss_graphs, parent_of,
    max_length, reuse, decompose, node_factory,
) -> None:
    reuse = reuse or {}
    while queue:
        node_f = queue.popleft()
        if max_length is not None and len(node_f.pattern) >= max_length:
            truss_graphs.pop(id(node_f), None)
            parent_of.pop(id(node_f), None)
            # The capture was never needed: a max-depth node pairs with
            # nobody, so release it instead of letting it ride along in
            # the finished tree (and in worker result pickles).
            if node_f.decomposition is not None:
                node_f.decomposition.carrier0 = None
            continue
        parent = parent_of[id(node_f)]
        # Carriers materialize lazily on first pairing: a node with no
        # later siblings never builds one at all.
        graph_f = truss_graphs.get(id(node_f))
        for node_b in parent.children:
            if node_b.item <= node_f.item:  # type: ignore[operator]
                continue  # need s_{n_f} ≺ s_{n_b}
            if graph_f is None:
                graph_f = _carrier_of(node_f.decomposition)  # type: ignore[arg-type]
            graph_b = truss_graphs.get(id(node_b))
            if graph_b is None:
                # Sibling carrier not materialized — rebuild it once and
                # memoize it so every later node_f pairing with this
                # sibling reuses it instead of paying the O(m) rebuild
                # again; it is released by the same pop-time lifecycle as
                # captured carriers.
                graph_b = _carrier_of(node_b.decomposition)  # type: ignore[arg-type]
                truss_graphs[id(node_b)] = graph_b
            if isinstance(graph_f, CSRGraph) and isinstance(
                graph_b, CSRGraph
            ):
                # Carrier-projection fast path: keep the Proposition 5.3
                # intersection as (base, mask) — materialized only if the
                # child decomposition actually needs the subgraph, and
                # then as a single projection that derives its triangle
                # index from the parent chain.
                base, mask, count = graph_f.intersect_mask(graph_b)
                if count == 0:
                    continue
                carrier: "GraphLike | MaskedCarrier" = MaskedCarrier(
                    base, mask, count
                )
            else:
                carrier = intersect_graphs(graph_f, graph_b)
                if carrier.num_edges == 0:
                    continue
            child_pattern = node_f.pattern + (node_b.item,)  # type: ignore[operator]
            decomposition = reuse.get(child_pattern)
            if decomposition is None:
                decomposition = decompose(
                    network, child_pattern, carrier=carrier,
                    capture_carrier=True,
                )
            if decomposition.is_empty():
                continue
            child = node_factory(node_b.item, child_pattern, decomposition)
            node_f.add_child(child)
            parent_of[id(child)] = node_f
            queue.append(child)
        truss_graphs.pop(id(node_f), None)
        parent_of.pop(id(node_f), None)
        if node_f.decomposition is not None:
            node_f.decomposition.carrier0 = None  # release unused capture


def build_tc_tree(
    network: DatabaseNetwork,
    max_length: int | None = None,
    workers: int = 1,
    reuse: dict[Pattern, TrussDecomposition] | None = None,
    backend: str = "process",
    trace: Tracer | None = None,
) -> TCTree:
    """Build the TC-Tree of ``network`` (Algorithm 4).

    ``max_length`` optionally caps indexed pattern length. ``workers > 1``
    parallelizes the build: ``backend="process"`` (default) fans layer-1
    items and their enumeration subtrees across a process pool
    (:mod:`repro.index.parallel`), ``backend="thread"`` uses the
    historical GIL-bound thread pool over layer 1 only, and
    ``backend="serial"`` forces the single-process path regardless of
    ``workers``. ``reuse`` optionally maps patterns to decompositions
    known to still be valid (the incremental maintenance path — see
    :mod:`repro.index.updates`); matching patterns skip recomputation
    entirely. ``trace`` optionally installs a
    :class:`~repro.obs.trace.Tracer` for the duration of the build, so
    the phase spans (warm/layer1/frontier, or phase A/B on the process
    backend) land in it ready for export.
    """
    if trace is not None:
        with tracing(trace):
            with span(
                "build.tc_tree", backend=backend, workers=workers
            ) as sp:
                tree = build_tc_tree(
                    network, max_length=max_length, workers=workers,
                    reuse=reuse, backend=backend,
                )
                sp.set_attr("nodes", tree.num_nodes)
                return tree
    if backend not in ("process", "thread", "serial"):
        raise TCIndexError(f"unknown build backend {backend!r}")
    items = network.item_universe()
    if workers > 1 and len(items) > 1 and backend == "process":
        from repro.index.parallel import build_tc_tree_process

        return build_tc_tree_process(
            network, max_length=max_length, workers=workers, reuse=reuse
        )
    root = TCNode(None, EMPTY_PATTERN, None)
    reuse = reuse or {}
    # One network-triangle enumeration, amortized across every layer-1
    # theme subgraph that derives its index from it (projection path).
    with span("build.warm_triangles", items=len(items)):
        warm_network_triangles(network, items)

    def first_layer(item: int) -> TrussDecomposition:
        cached = reuse.get((item,))
        if cached is not None:
            return cached
        return decompose_network_pattern(
            network, (item,), capture_carrier=True
        )

    with span("build.layer1", items=len(items), backend=backend):
        if workers > 1 and len(items) > 1 and backend == "thread":
            with ThreadPoolExecutor(max_workers=workers) as pool:
                decompositions = list(pool.map(first_layer, items))
        else:
            decompositions = [first_layer(item) for item in items]

    # Frontier bookkeeping: the C*_p(0) carrier of every node whose
    # children are still to be built (CSR when labels permit). Carriers
    # are materialized lazily by the frontier loop.
    truss_graphs: dict[int, GraphLike] = {}
    queue: deque[TCNode] = deque()
    for item, decomposition in zip(items, decompositions):
        if decomposition.is_empty():
            continue
        node = TCNode(item, (item,), decomposition)
        root.add_child(node)
        queue.append(node)

    parent_of: dict[int, TCNode] = {
        id(child): root for child in root.children
    }

    _expand_frontier(
        network, queue, truss_graphs, parent_of,
        max_length=max_length, reuse=reuse,
    )

    return TCTree(root, num_items=len(items))
