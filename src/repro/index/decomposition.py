"""Maximal-pattern-truss decomposition (Section 6.1).

Theorem 6.1: ``C*_p(α)`` only shrinks when ``α`` crosses the minimum edge
cohesion of the current truss. The truss of a theme network can therefore
be decomposed along the ascending threshold sequence
``α_0 = 0, α_k = min edge cohesion of C*_p(α_{k-1})`` into *disjoint*
removed-edge sets ``R_p(α_k) = E*_p(α_{k-1}) \\ E*_p(α_k)``.

The decomposition stores exactly the edges of ``C*_p(0)`` (no blow-up) and
reconstructs any ``C*_p(α)`` by Equation 1::

    E*_p(α) = ∪_{α_k > α} R_p(α_k)

so a TC-Tree node answers arbitrary-threshold queries without re-mining.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._ordering import Pattern
from repro.core.cohesion import FrequencyMap
from repro.core.mptd import (
    COHESION_TOLERANCE,
    maximal_pattern_truss,
    peel_to_threshold,
)
from repro.core.truss import PatternTruss
from repro.graphs.graph import Edge, Graph
from repro.network.dbnetwork import DatabaseNetwork
from repro.network.theme import induce_theme_network, theme_network_within


@dataclass
class DecompositionLevel:
    """One node of the linked list ``L_p``: threshold + removed edges."""

    alpha: float
    removed_edges: list[Edge]


@dataclass
class TrussDecomposition:
    """The linked list ``L_p`` plus the data needed to rebuild trusses.

    ``levels[k]`` holds ``(α_{k+1}, R_p(α_{k+1}))`` in ascending threshold
    order. ``frequencies`` are the pattern frequencies of the vertices of
    ``C*_p(0)`` (needed to materialize :class:`PatternTruss` objects and to
    continue decomposing on updates).
    """

    pattern: Pattern
    levels: list[DecompositionLevel] = field(default_factory=list)
    frequencies: FrequencyMap = field(default_factory=dict)

    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return not self.levels

    @property
    def num_edges(self) -> int:
        """Edges of ``C*_p(0)`` — L_p stores each exactly once."""
        return sum(len(level.removed_edges) for level in self.levels)

    @property
    def max_alpha(self) -> float:
        """``α*_p``: the least α for which ``C*_p(α)`` is empty.

        The non-trivial query range of this theme network is
        ``[0, max_alpha)``; read from the last list node (Section 6.1).
        """
        if not self.levels:
            return 0.0
        return self.levels[-1].alpha

    def thresholds(self) -> list[float]:
        """The ascending sequence ``α_1 < α_2 < ... < α_h``."""
        return [level.alpha for level in self.levels]

    # ------------------------------------------------------------------
    def edges_at(self, alpha: float) -> list[Edge]:
        """``E*_p(α)`` by Equation 1: union of suffix removed sets."""
        bound = alpha + COHESION_TOLERANCE
        edges: list[Edge] = []
        for level in self.levels:
            # Same tolerance as MPTD peeling so reconstruction agrees with
            # direct mining at exact-boundary thresholds.
            if level.alpha > bound:
                edges.extend(level.removed_edges)
        return edges

    def truss_at(self, alpha: float) -> PatternTruss:
        """Materialize ``C*_p(α)`` as a :class:`PatternTruss`."""
        graph = Graph()
        for u, v in self.edges_at(alpha):
            graph.add_edge(u, v)
        return PatternTruss(self.pattern, graph, self.frequencies, alpha)

    def __repr__(self) -> str:
        return (
            f"TrussDecomposition(pattern={self.pattern}, "
            f"levels={len(self.levels)}, edges={self.num_edges})"
        )


def decompose_truss(
    pattern: Pattern,
    truss_graph: Graph,
    frequencies: FrequencyMap,
    cohesion: dict[Edge, float],
) -> TrussDecomposition:
    """Decompose ``C*_p(0)`` into ``L_p`` by iterated peeling.

    ``truss_graph`` and ``cohesion`` must come from an MPTD run at α = 0;
    both are consumed (mutated to empty) — pass copies to keep them.

    Each round reads the current minimum cohesion β, peels every edge with
    cohesion <= β (cascading), and records the removed set under threshold
    β. Theorem 6.1 guarantees the recorded sets are exactly the
    ``R_p(α_k)``.
    """
    decomposition = TrussDecomposition(
        pattern=pattern,
        frequencies={
            v: frequencies[v] for v in truss_graph if v in frequencies
        },
    )
    while cohesion:
        beta = min(cohesion.values())
        removed: list[Edge] = []
        peel_to_threshold(
            truss_graph, frequencies, beta, cohesion, removed_sink=removed
        )
        decomposition.levels.append(DecompositionLevel(beta, removed))
    return decomposition


def decompose_network_pattern(
    network: DatabaseNetwork,
    pattern: Pattern,
    carrier: Graph | None = None,
) -> TrussDecomposition:
    """Induce ``G_p``, run MPTD at α = 0, and decompose — one call.

    ``carrier`` optionally restricts the induction to a known superset of
    the truss (Proposition 5.3), which is how the TC-Tree builds children
    inside parent intersections.
    """
    if carrier is None:
        graph, frequencies = induce_theme_network(network, pattern)
    else:
        graph, frequencies = theme_network_within(network, pattern, carrier)
    truss_graph, cohesion = maximal_pattern_truss(graph, frequencies, 0.0)
    return decompose_truss(pattern, truss_graph, frequencies, cohesion)
