"""Maximal-pattern-truss decomposition (Section 6.1).

Theorem 6.1: ``C*_p(α)`` only shrinks when ``α`` crosses the minimum edge
cohesion of the current truss. The truss of a theme network can therefore
be decomposed along the ascending threshold sequence
``α_0 = 0, α_k = min edge cohesion of C*_p(α_{k-1})`` into *disjoint*
removed-edge sets ``R_p(α_k) = E*_p(α_{k-1}) \\ E*_p(α_k)``.

The decomposition stores exactly the edges of ``C*_p(0)`` (no blow-up) and
reconstructs any ``C*_p(α)`` by Equation 1::

    E*_p(α) = ∪_{α_k > α} R_p(α_k)

so a TC-Tree node answers arbitrary-threshold queries without re-mining.

Dense-int theme networks decompose on the CSR engine: triangles are
enumerated once, the per-level minimum comes from a lazy heap, and every
peel round is flat-array bookkeeping — the legacy path pays a full
``min(cohesion.values())`` scan per level plus set surgery per edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._ordering import Pattern
from repro.core.cohesion import FrequencyMap
from repro.core.mptd import (
    COHESION_TOLERANCE,
    _maximal_pattern_truss_legacy,
    maximal_pattern_truss,
    peel_to_threshold,
)
from repro.core.truss import PatternTruss
from repro.errors import GraphError
from repro.graphs.csr import CSRGraph, GraphLike, as_csr, as_graph
from repro.graphs.graph import Edge, Graph
from repro.graphs.support import CSR_MIN_EDGES, decompose_cohesion
from repro.network.dbnetwork import DatabaseNetwork
from repro.network.theme import (
    induce_theme_network,
    theme_frequencies,
    theme_network_within,
)



#: A TC-Tree child decomposes over the whole network CSR (sharing its
#: cached triangle index) only when its carrier is both a large share of
#: the network and large in absolute terms — re-enumerating a small
#: carrier is cheaper than flat passes over a big network's triangles.
CSR_NET_REUSE_MIN_EDGES = 1024


@dataclass
class DecompositionLevel:
    """One node of the linked list ``L_p``: threshold + removed edges."""

    alpha: float
    removed_edges: list[Edge]


@dataclass
class TrussDecomposition:
    """The linked list ``L_p`` plus the data needed to rebuild trusses.

    ``levels[k]`` holds ``(α_{k+1}, R_p(α_{k+1}))`` in ascending threshold
    order. ``frequencies`` are the pattern frequencies of the vertices of
    ``C*_p(0)`` (needed to materialize :class:`PatternTruss` objects and to
    continue decomposing on updates).
    """

    pattern: Pattern
    levels: list[DecompositionLevel] = field(default_factory=list)
    frequencies: FrequencyMap = field(default_factory=dict)
    #: ``C*_p(0)`` captured by the CSR engine: either an already-built
    #: CSRGraph (nothing was peeled) or the canonical-sorted alive edge
    #: list, materialized lazily — leaf nodes of the TC-Tree never pay
    #: the build. Excluded from equality and repr.
    carrier0: CSRGraph | list[Edge] | None = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return not self.levels

    @property
    def num_edges(self) -> int:
        """Edges of ``C*_p(0)`` — L_p stores each exactly once."""
        return sum(len(level.removed_edges) for level in self.levels)

    @property
    def max_alpha(self) -> float:
        """``α*_p``: the least α for which ``C*_p(α)`` is empty.

        The non-trivial query range of this theme network is
        ``[0, max_alpha)``; read from the last list node (Section 6.1).
        """
        if not self.levels:
            return 0.0
        return self.levels[-1].alpha

    def thresholds(self) -> list[float]:
        """The ascending sequence ``α_1 < α_2 < ... < α_h``."""
        return [level.alpha for level in self.levels]

    # ------------------------------------------------------------------
    def edges_at(self, alpha: float) -> list[Edge]:
        """``E*_p(α)`` by Equation 1: union of suffix removed sets."""
        bound = alpha + COHESION_TOLERANCE
        edges: list[Edge] = []
        for level in self.levels:
            # Same tolerance as MPTD peeling so reconstruction agrees with
            # direct mining at exact-boundary thresholds.
            if level.alpha > bound:
                edges.extend(level.removed_edges)
        return edges

    def truss_at(self, alpha: float) -> PatternTruss:
        """Materialize ``C*_p(α)`` as a :class:`PatternTruss`."""
        graph = Graph()
        for u, v in self.edges_at(alpha):
            graph.add_edge(u, v)
        return PatternTruss(self.pattern, graph, self.frequencies, alpha)

    def csr_at(self, alpha: float) -> CSRGraph | None:
        """``C*_p(α)`` as a CSR carrier, or None for unsortable labels.

        This is what the TC-Tree keeps per frontier node so sibling
        intersections are array merges rather than set intersections.
        """
        try:
            return CSRGraph.from_edges(self.edges_at(alpha))
        except GraphError:
            return None

    def take_carrier(self) -> CSRGraph | None:
        """Hand over the captured ``C*_p(0)`` carrier (cleared on take).

        The TC-Tree frees frontier carriers once a node's children are
        built; clearing here keeps steady-state memory at the sum of the
        ``L_p`` lists, as in the paper.
        """
        carrier = self.carrier0
        self.carrier0 = None
        if carrier is None or isinstance(carrier, CSRGraph):
            return carrier
        return CSRGraph._from_canonical_edges(carrier)

    def frontier_carrier(self) -> "Graph | CSRGraph":
        """``C*_p(0)`` in the representation the TC-Tree should keep.

        Prefers the carrier captured by the CSR engine; tiny trusses
        (below the engine cutover) stay as adjacency-set graphs — CSR
        construction overhead dwarfs any merge win at that size — and
        anything larger is rebuilt in CSR form from the levels.
        """
        carrier = self.take_carrier()
        if carrier is not None:
            return carrier
        if self.num_edges < CSR_MIN_EDGES:
            return self.truss_at(0.0).graph
        csr = self.csr_at(0.0)
        if csr is not None:
            return csr
        return self.truss_at(0.0).graph

    def __getstate__(self):
        """Pickle protocol of the process-parallel build: flatten a live
        CSR ``carrier0`` to its canonical edge list so workers ship
        levels + frequencies + flat edges, never CSR objects (the receiver
        rebuilds lazily via :meth:`take_carrier`).

        The flat list duplicates edges the levels already carry, but
        deliberately so: on the fork path the parent receives it once
        (phase A result) and every subtree worker then inherits it
        copy-on-write, where dropping it would cost each worker an
        O(m log m) from-levels rebuild per sibling carrier it touches.
        """
        state = self.__dict__.copy()
        carrier = state.get("carrier0")
        if isinstance(carrier, CSRGraph):
            state["carrier0"] = carrier.edges()
        return state

    def __repr__(self) -> str:
        return (
            f"TrussDecomposition(pattern={self.pattern}, "
            f"levels={len(self.levels)}, edges={self.num_edges})"
        )


def decompose_truss(
    pattern: Pattern,
    truss_graph: Graph,
    frequencies: FrequencyMap,
    cohesion: dict[Edge, float],
) -> TrussDecomposition:
    """Decompose ``C*_p(0)`` into ``L_p`` by iterated peeling.

    ``truss_graph`` and ``cohesion`` must come from an MPTD run at α = 0;
    both are consumed (mutated to empty) — pass copies to keep them.

    Each round reads the current minimum cohesion β, peels every edge with
    cohesion <= β (cascading), and records the removed set under threshold
    β. Theorem 6.1 guarantees the recorded sets are exactly the
    ``R_p(α_k)``.
    """
    decomposition = TrussDecomposition(
        pattern=pattern,
        frequencies={
            v: frequencies[v] for v in truss_graph if v in frequencies
        },
    )
    while cohesion:
        beta = min(cohesion.values())
        removed: list[Edge] = []
        peel_to_threshold(
            truss_graph, frequencies, beta, cohesion, removed_sink=removed
        )
        decomposition.levels.append(DecompositionLevel(beta, removed))
    return decomposition


def decompose_theme(
    pattern: Pattern,
    graph: GraphLike,
    frequencies: FrequencyMap,
    engine: str = "auto",
    capture_carrier: bool = False,
) -> TrussDecomposition:
    """MPTD at α = 0 plus full decomposition of a theme network.

    ``engine`` selects the implementation: ``"auto"`` routes dense-int
    graphs through the CSR fast path, ``"csr"`` forces it (raises
    :class:`GraphError` when ineligible), ``"legacy"`` forces the
    adjacency-set path (the parity-test oracle). ``capture_carrier``
    additionally stashes the ``C*_p(0)`` CSR carrier on the result (the
    TC-Tree build wants it; plain decompositions skip the cost).
    """
    if engine not in ("auto", "csr", "legacy"):
        raise GraphError(f"unknown decomposition engine {engine!r}")
    use_csr = engine != "legacy"
    if use_csr and engine == "auto" and graph.num_edges < CSR_MIN_EDGES:
        # Tiny themes: the flat-engine fixed costs (triangle index, heap,
        # array construction) exceed the dict-of-sets loop's whole
        # runtime — decide before paying for any conversion.
        use_csr = False
    csr = as_csr(graph) if use_csr else None
    if csr is None:
        if engine == "csr":
            raise GraphError("graph is not CSR-eligible (non-int labels)")
        truss_graph, cohesion = _maximal_pattern_truss_legacy(
            as_graph(graph), frequencies, 0.0
        )
        return decompose_truss(pattern, truss_graph, frequencies, cohesion)
    return _decompose_theme_csr(pattern, csr, frequencies, capture_carrier)


def _decompose_theme_csr(
    pattern: Pattern,
    csr: CSRGraph,
    frequencies: FrequencyMap,
    capture_carrier: bool = False,
) -> TrussDecomposition:
    """CSR-native decomposition: one engine call, then label conversion."""
    labels = csr.labels
    freq = [frequencies.get(label, 0.0) for label in labels]
    # The engine runs Phase 1, the α = 0 peel (removals belong to no
    # level), and the level rounds in one call; ``alive`` flags C*_p(0).
    alive, levels = decompose_cohesion(csr, freq)
    edge_u = csr.edge_u
    edge_v = csr.edge_v
    alive_count = sum(alive)
    surviving: set = set()
    alive_edges: list[Edge] = []
    for eid in range(len(alive)):
        if alive[eid]:
            u = labels[edge_u[eid]]
            v = labels[edge_v[eid]]
            surviving.add(u)
            surviving.add(v)
            alive_edges.append((u, v))
    carrier0: CSRGraph | list[Edge] | None = None
    if capture_carrier:
        # C*_p(0) as a CSR carrier, for free: when nothing was peeled the
        # input graph (sans isolated vertices) *is* the carrier; otherwise
        # keep the canonical-sorted alive edge list and let
        # :meth:`TrussDecomposition.take_carrier` build lazily.
        if alive_count == csr.num_edges and not csr.has_isolated_vertices():
            carrier0 = csr
        else:
            carrier0 = alive_edges
    decomposition = TrussDecomposition(
        pattern=pattern,
        frequencies={
            v: frequencies[v] for v in sorted(surviving) if v in frequencies
        },
        carrier0=carrier0,
    )
    for beta, removed in levels:
        decomposition.levels.append(
            DecompositionLevel(
                beta,
                [(labels[edge_u[e]], labels[edge_v[e]]) for e in removed],
            )
        )
    return decomposition


def decompose_network_pattern(
    network: DatabaseNetwork,
    pattern: Pattern,
    carrier: GraphLike | None = None,
    engine: str = "auto",
    capture_carrier: bool = False,
) -> TrussDecomposition:
    """Induce ``G_p``, run MPTD at α = 0, and decompose — one call.

    ``carrier`` optionally restricts the induction to a known superset of
    the truss (Proposition 5.3), which is how the TC-Tree builds children
    inside parent intersections; a CSR carrier keeps the whole round trip
    on the fast path.
    """
    if carrier is None:
        csr_net = network.csr_graph() if engine != "legacy" else None
        if csr_net is not None:
            frequencies = theme_frequencies(network, pattern)
            graph: GraphLike = _restrict_for_decomposition(
                csr_net, frequencies
            )
        else:
            graph, frequencies = induce_theme_network(network, pattern)
    elif isinstance(carrier, CSRGraph) and engine != "legacy":
        frequencies = theme_frequencies(network, pattern, candidates=carrier)
        csr_net = network.csr_graph()
        if (
            csr_net is not None
            and carrier.num_edges >= CSR_NET_REUSE_MIN_EDGES
            and 3 * carrier.num_edges >= csr_net.num_edges
        ):
            # The carrier spans most of the network: decompose over the
            # network CSR itself and let the α = 0 peel prune. Vertices
            # outside the carrier get frequency 0, which by the
            # monotonicity argument of Proposition 5.3 leaves C*_p and
            # its levels unchanged — and the network CSR's cached
            # triangle index is shared by every node of the build.
            graph = csr_net
        else:
            graph = _restrict_for_decomposition(carrier, frequencies)
    else:
        graph, frequencies = theme_network_within(network, pattern, carrier)
    return decompose_theme(
        pattern, graph, frequencies,
        engine=engine, capture_carrier=capture_carrier,
    )


def covers_most_vertices(num_positive: int, num_vertices: int) -> bool:
    """The ≥90% frequency-coverage cutoff: decompose over the unfiltered
    network CSR instead of building a subgraph. One predicate shared by
    :func:`_restrict_for_decomposition` and the fork-path cache warming
    (:func:`repro.index.parallel._warm_shared_caches`) so tuning it never
    desynchronizes the two."""
    return 10 * num_positive >= 9 * num_vertices


def _restrict_for_decomposition(
    csr: CSRGraph, frequencies: FrequencyMap
) -> GraphLike:
    """The graph to decompose for a frequency-positive vertex set.

    A vertex with ``f_v(p) = 0`` contributes weight 0 to every triangle
    through it, so each of its edges has cohesion 0 and dies in the α = 0
    peel without ever appearing in a level — decomposing the *unfiltered*
    graph with zero-filled frequencies is mathematically identical to
    decomposing the vertex-induced theme subgraph. When most vertices are
    frequency-positive we therefore skip the subgraph build entirely and
    let the peel do the filtering. A sparser theme gets one filter pass,
    and the surviving edge count picks the representation: CSR for the
    engine, adjacency sets below the :data:`CSR_MIN_EDGES` cutover.
    """
    if covers_most_vertices(len(frequencies), csr.num_vertices):
        return csr
    kept_edges, kept_labels = csr.induced_edges(frequencies.keys())
    if len(kept_edges) >= CSR_MIN_EDGES:
        return CSRGraph._from_canonical_edges(kept_edges, vertices=kept_labels)
    graph = Graph()
    for label in kept_labels:
        graph.add_vertex(label)
    for u, v in kept_edges:
        graph.add_edge(u, v)
    return graph


__all__ = [
    "DecompositionLevel",
    "TrussDecomposition",
    "decompose_truss",
    "decompose_theme",
    "decompose_network_pattern",
    "maximal_pattern_truss",
]
