"""Maximal-pattern-truss decomposition (Section 6.1).

Theorem 6.1: ``C*_p(α)`` only shrinks when ``α`` crosses the minimum edge
cohesion of the current truss. The truss of a theme network can therefore
be decomposed along the ascending threshold sequence
``α_0 = 0, α_k = min edge cohesion of C*_p(α_{k-1})`` into *disjoint*
removed-edge sets ``R_p(α_k) = E*_p(α_{k-1}) \\ E*_p(α_k)``.

The decomposition stores exactly the edges of ``C*_p(0)`` (no blow-up) and
reconstructs any ``C*_p(α)`` by Equation 1::

    E*_p(α) = ∪_{α_k > α} R_p(α_k)

so a TC-Tree node answers arbitrary-threshold queries without re-mining.

Dense-int theme networks decompose on the CSR engine: triangles are
enumerated once, the per-level minimum comes from a lazy heap, and every
peel round is flat-array bookkeeping — the legacy path pays a full
``min(cohesion.values())`` scan per level plus set surgery per edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import compress

from repro._ordering import Pattern
from repro.core.cohesion import FrequencyMap
from repro.core.mptd import (
    COHESION_TOLERANCE,
    _maximal_pattern_truss_legacy,
    maximal_pattern_truss,
    peel_to_threshold,
)
from repro.core.truss import PatternTruss
from repro.engine.registry import record_route
from repro.errors import GraphError
from repro.graphs.csr import CSRGraph, GraphLike, as_csr, as_graph
from repro.graphs.graph import Edge, Graph
from repro.graphs.support import (
    CSR_MIN_EDGES,
    decompose_cohesion,
    derivable,
    projection_enabled,
    triangle_index,
)
from repro.network.dbnetwork import DatabaseNetwork
from repro.network.theme import (
    induce_theme_network,
    theme_frequencies,
    theme_network_within,
)



#: A TC-Tree child decomposes over the whole network CSR (sharing its
#: cached triangle index) only when its carrier is both a large share of
#: the network and large in absolute terms — re-enumerating a small
#: carrier is cheaper than flat passes over a big network's triangles.
CSR_NET_REUSE_MIN_EDGES = 1024


@dataclass
class DecompositionLevel:
    """One node of the linked list ``L_p``: threshold + removed edges."""

    alpha: float
    removed_edges: list[Edge]


class MaskedCarrier:
    """A child carrier kept as (base CSR graph, edge-survival mask).

    The Proposition 5.3 intersection ``C*_f(0) ∩ C*_b(0)`` arrives from
    :meth:`CSRGraph.intersect_mask` without ever being materialized: the
    frequency probes only need the surviving endpoints, the network-reuse
    cutover only needs the edge count, and the restricted decomposition
    graph is built by **one** projection of the base under the AND of the
    intersection mask and the frequency mask — instead of carrier
    materialization followed by a second subgraph build.
    """

    __slots__ = ("base", "mask", "num_edges", "_vertex_ids")

    def __init__(self, base: CSRGraph, mask: bytearray, num_edges: int):
        self.base = base
        self.mask = mask
        self.num_edges = num_edges
        self._vertex_ids: set[int] | None = None

    def vertex_ids(self) -> set[int]:
        """Internal ids (in base space) of surviving-edge endpoints."""
        ids = self._vertex_ids
        if ids is None:
            mask = self.mask
            ids = set(compress(self.base.edge_u, mask))
            ids.update(compress(self.base.edge_v, mask))
            self._vertex_ids = ids
        return ids

    @property
    def num_vertices(self) -> int:
        return len(self.vertex_ids())

    def vertices(self) -> list:
        """Surviving endpoint labels (the frequency-probe candidates)."""
        labels = self.base.labels
        return [labels[i] for i in self.vertex_ids()]

    def materialize(self) -> CSRGraph:
        return self.base.project(self.mask)


class _PendingProjection:
    """A captured ``C*_p(0)`` carrier as (decomposed CSR, alive mask).

    The projection itself is deferred to
    :meth:`TrussDecomposition.take_carrier`, so nodes whose carrier is
    never requested pay nothing; when it *is* materialized the result
    carries projection provenance back to the decomposed graph — whose
    triangle index is warm from the decomposition that just ran — so the
    child build derives triangle indexes instead of re-enumerating.
    """

    __slots__ = ("csr", "alive")

    def __init__(self, csr: CSRGraph, alive: bytearray) -> None:
        self.csr = csr
        self.alive = alive

    def materialize(self) -> CSRGraph:
        return self.csr.project(self.alive)

    def edges(self) -> list[Edge]:
        """Canonical-sorted alive edge list (the pickle exchange shape)."""
        csr = self.csr
        labels = csr.labels
        edge_u = csr.edge_u
        edge_v = csr.edge_v
        alive = self.alive
        return [
            (labels[edge_u[e]], labels[edge_v[e]])
            for e in range(len(alive))
            if alive[e]
        ]


class CarrierProtocol:
    """Shared ``C*_p(0)`` carrier lifecycle of both decomposition models.

    The vertex :class:`TrussDecomposition` and the edge
    :class:`~repro.edgenet.decomposition.EdgeTrussDecomposition` exchange
    carriers with the TC-Tree frontier and the process pool identically:
    a captured carrier materializes lazily (:meth:`take_carrier`), the
    frontier picks a size-appropriate representation
    (:meth:`frontier_carrier`), and pickling flattens a live CSR capture
    to its canonical edge list (:meth:`__getstate__`). Keeping the
    protocol in one place means a lifecycle fix cannot silently diverge
    between the models. Subclasses supply the engine cutover and the
    adjacency-set fallback; they must define ``carrier0``, ``num_edges``,
    and ``edges_at``.
    """

    def _engine_cutover(self) -> int:
        """Edge count below which carriers stay adjacency-set graphs."""
        raise NotImplementedError

    def _graph0(self) -> Graph:
        """``C*_p(0)`` as an adjacency-set graph (the small fallback)."""
        raise NotImplementedError

    def csr_at(self, alpha: float) -> CSRGraph | None:
        """``C*_p(α)`` as a CSR carrier, or None for unsortable labels.

        This is what the TC-Tree keeps per frontier node so sibling
        intersections are array merges rather than set intersections.
        """
        try:
            return CSRGraph.from_edges(self.edges_at(alpha))
        except GraphError:
            return None

    def take_carrier(self) -> CSRGraph | None:
        """Hand over the captured ``C*_p(0)`` carrier (cleared on take).

        The TC-Tree frees frontier carriers once a node's children are
        built; clearing here keeps steady-state memory at the sum of the
        ``L_p`` lists, as in the paper.
        """
        carrier = self.carrier0
        self.carrier0 = None
        if carrier is None or isinstance(carrier, CSRGraph):
            return carrier
        if isinstance(carrier, _PendingProjection):
            return carrier.materialize()
        return CSRGraph._from_canonical_edges(carrier)

    def frontier_carrier(self) -> "Graph | CSRGraph":
        """``C*_p(0)`` in the representation the TC-Tree should keep.

        Prefers the carrier captured by the CSR engine; tiny trusses
        (below the engine cutover) stay as adjacency-set graphs — CSR
        construction overhead dwarfs any merge win at that size — and
        anything larger is rebuilt in CSR form from the levels.
        """
        carrier = self.take_carrier()
        if carrier is not None:
            return carrier
        if self.num_edges < self._engine_cutover():
            return self._graph0()
        csr = self.csr_at(0.0)
        if csr is not None:
            return csr
        return self._graph0()

    def __getstate__(self):
        """Pickle protocol of the process-parallel build: flatten a live
        CSR ``carrier0`` to its canonical edge list so workers ship
        levels + frequencies + flat edges, never CSR objects (the receiver
        rebuilds lazily via :meth:`take_carrier`).

        The flat list duplicates edges the levels already carry, but
        deliberately so: on the fork path the parent receives it once
        (phase A result) and every subtree worker then inherits it
        copy-on-write, where dropping it would cost each worker an
        O(m log m) from-levels rebuild per sibling carrier it touches.
        """
        state = self.__dict__.copy()
        carrier = state.get("carrier0")
        if isinstance(carrier, (CSRGraph, _PendingProjection)):
            state["carrier0"] = carrier.edges()
        return state


@dataclass
class TrussDecomposition(CarrierProtocol):
    """The linked list ``L_p`` plus the data needed to rebuild trusses.

    ``levels[k]`` holds ``(α_{k+1}, R_p(α_{k+1}))`` in ascending threshold
    order. ``frequencies`` are the pattern frequencies of the vertices of
    ``C*_p(0)`` (needed to materialize :class:`PatternTruss` objects and to
    continue decomposing on updates).
    """

    pattern: Pattern
    levels: list[DecompositionLevel] = field(default_factory=list)
    frequencies: FrequencyMap = field(default_factory=dict)
    #: ``C*_p(0)`` captured by the CSR engine: an already-built CSRGraph
    #: (nothing was peeled), a pending projection of the decomposed graph
    #: (projection fast path), or the canonical-sorted alive edge list
    #: (oracle path) — materialized lazily, so leaf nodes of the TC-Tree
    #: never pay the build. Excluded from equality and repr.
    carrier0: CSRGraph | list[Edge] | _PendingProjection | None = field(
        default=None, repr=False, compare=False
    )
    #: How this decomposition was computed — ``"<graph choice>+<engine>"``
    #: (e.g. ``"carrier-projected+csr"``, ``"net-reuse+csr"``,
    #: ``"net-small+legacy"``), or just the engine when
    #: :func:`decompose_theme` was called directly. Diagnostic only: the
    #: cutover boundary tests assert on it; excluded from equality.
    route: str | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return not self.levels

    @property
    def num_edges(self) -> int:
        """Edges of ``C*_p(0)`` — L_p stores each exactly once."""
        return sum(len(level.removed_edges) for level in self.levels)

    @property
    def max_alpha(self) -> float:
        """``α*_p``: the least α for which ``C*_p(α)`` is empty.

        The non-trivial query range of this theme network is
        ``[0, max_alpha)``; read from the last list node (Section 6.1).
        """
        if not self.levels:
            return 0.0
        return self.levels[-1].alpha

    def thresholds(self) -> list[float]:
        """The ascending sequence ``α_1 < α_2 < ... < α_h``."""
        return [level.alpha for level in self.levels]

    # ------------------------------------------------------------------
    def edges_at(self, alpha: float) -> list[Edge]:
        """``E*_p(α)`` by Equation 1: union of suffix removed sets."""
        bound = alpha + COHESION_TOLERANCE
        edges: list[Edge] = []
        for level in self.levels:
            # Same tolerance as MPTD peeling so reconstruction agrees with
            # direct mining at exact-boundary thresholds.
            if level.alpha > bound:
                edges.extend(level.removed_edges)
        return edges

    def truss_at(self, alpha: float) -> PatternTruss:
        """Materialize ``C*_p(α)`` as a :class:`PatternTruss`."""
        graph = Graph()
        for u, v in self.edges_at(alpha):
            graph.add_edge(u, v)
        return PatternTruss(self.pattern, graph, self.frequencies, alpha)

    def _engine_cutover(self) -> int:
        # Read the module global at call time so tests (and tuning) that
        # patch ``decomposition.CSR_MIN_EDGES`` take effect immediately.
        return CSR_MIN_EDGES

    def _graph0(self) -> Graph:
        return self.truss_at(0.0).graph

    def __repr__(self) -> str:
        return (
            f"TrussDecomposition(pattern={self.pattern}, "
            f"levels={len(self.levels)}, edges={self.num_edges})"
        )


def decompose_truss(
    pattern: Pattern,
    truss_graph: Graph,
    frequencies: FrequencyMap,
    cohesion: dict[Edge, float],
) -> TrussDecomposition:
    """Decompose ``C*_p(0)`` into ``L_p`` by iterated peeling.

    ``truss_graph`` and ``cohesion`` must come from an MPTD run at α = 0;
    both are consumed (mutated to empty) — pass copies to keep them.

    Each round reads the current minimum cohesion β, peels every edge with
    cohesion <= β (cascading), and records the removed set under threshold
    β. Theorem 6.1 guarantees the recorded sets are exactly the
    ``R_p(α_k)``.
    """
    decomposition = TrussDecomposition(
        pattern=pattern,
        frequencies={
            v: frequencies[v] for v in truss_graph if v in frequencies
        },
    )
    while cohesion:
        beta = min(cohesion.values())
        removed: list[Edge] = []
        peel_to_threshold(
            truss_graph, frequencies, beta, cohesion, removed_sink=removed
        )
        decomposition.levels.append(DecompositionLevel(beta, removed))
    return decomposition


def decompose_theme(
    pattern: Pattern,
    graph: GraphLike,
    frequencies: FrequencyMap,
    engine: str = "auto",
    capture_carrier: bool = False,
) -> TrussDecomposition:
    """MPTD at α = 0 plus full decomposition of a theme network.

    ``engine`` selects the implementation: ``"auto"`` routes dense-int
    graphs through the CSR fast path, ``"csr"`` forces it (raises
    :class:`GraphError` when ineligible), ``"legacy"`` forces the
    adjacency-set path (the parity-test oracle). ``capture_carrier``
    additionally stashes the ``C*_p(0)`` CSR carrier on the result (the
    TC-Tree build wants it; plain decompositions skip the cost).
    """
    if engine not in ("auto", "csr", "legacy"):
        raise GraphError(f"unknown decomposition engine {engine!r}")
    use_csr = engine != "legacy"
    if use_csr and engine == "auto" and graph.num_edges < CSR_MIN_EDGES:
        # Tiny themes: the flat-engine fixed costs (triangle index, heap,
        # array construction) exceed the dict-of-sets loop's whole
        # runtime — decide before paying for any conversion.
        use_csr = False
    csr = as_csr(graph) if use_csr else None
    if csr is None:
        if engine == "csr":
            raise GraphError("graph is not CSR-eligible (non-int labels)")
        truss_graph, cohesion = _maximal_pattern_truss_legacy(
            as_graph(graph), frequencies, 0.0
        )
        decomposition = decompose_truss(
            pattern, truss_graph, frequencies, cohesion
        )
        decomposition.route = "legacy"
        return decomposition
    decomposition = _decompose_theme_csr(
        pattern, csr, frequencies, capture_carrier
    )
    decomposition.route = "csr"
    return decomposition


def _decompose_theme_csr(
    pattern: Pattern,
    csr: CSRGraph,
    frequencies: FrequencyMap,
    capture_carrier: bool = False,
) -> TrussDecomposition:
    """CSR-native decomposition: one engine call, then label conversion."""
    labels = csr.labels
    freq = [frequencies.get(label, 0.0) for label in labels]
    # The engine runs Phase 1, the α = 0 peel (removals belong to no
    # level), and the level rounds in one call; ``alive`` flags C*_p(0).
    alive, levels = decompose_cohesion(csr, freq)
    edge_u = csr.edge_u
    edge_v = csr.edge_v
    alive_count = sum(alive)
    # Surviving endpoints via compress/map pipelines.
    gl = labels.__getitem__
    surviving = set(map(gl, compress(edge_u, alive)))
    surviving.update(map(gl, compress(edge_v, alive)))
    carrier0: CSRGraph | list[Edge] | _PendingProjection | None = None
    if capture_carrier:
        # C*_p(0) as a CSR carrier, for free: when nothing was peeled the
        # input graph (sans isolated vertices) *is* the carrier; otherwise
        # defer to :meth:`TrussDecomposition.take_carrier`. The capture
        # keeps (graph, alive mask) so the materialized carrier carries
        # provenance back to the decomposed graph — whether a later
        # triangle index is then *derived* from that provenance or
        # re-enumerated is decided (flag-gated) at build time, keeping
        # capture itself identical on both sides of the parity oracle.
        if alive_count == csr.num_edges and not csr.has_isolated_vertices():
            carrier0 = csr
        else:
            carrier0 = _PendingProjection(csr, alive)
    decomposition = TrussDecomposition(
        pattern=pattern,
        frequencies={
            v: frequencies[v] for v in sorted(surviving) if v in frequencies
        },
        carrier0=carrier0,
    )
    ge_u = edge_u.__getitem__
    ge_v = edge_v.__getitem__
    for beta, removed in levels:
        decomposition.levels.append(
            DecompositionLevel(
                beta,
                list(zip(
                    map(gl, map(ge_u, removed)),
                    map(gl, map(ge_v, removed)),
                )),
            )
        )
    return decomposition


def decompose_network_pattern(
    network: DatabaseNetwork,
    pattern: Pattern,
    carrier: GraphLike | None = None,
    engine: str = "auto",
    capture_carrier: bool = False,
) -> TrussDecomposition:
    """Induce ``G_p``, run MPTD at α = 0, and decompose — one call.

    ``carrier`` optionally restricts the induction to a known superset of
    the truss (Proposition 5.3), which is how the TC-Tree builds children
    inside parent intersections; a CSR carrier keeps the whole round trip
    on the fast path — and, since carriers arrive as projections of a
    parent whose triangle index is warm, the child decomposition derives
    its index instead of re-enumerating.
    """
    if carrier is None:
        csr_net = network.csr_graph() if engine != "legacy" else None
        if csr_net is not None:
            frequencies = theme_frequencies(network, pattern)
            graph: GraphLike
            graph, graph_route = _restrict_for_decomposition(
                csr_net, frequencies
            )
            graph_route = "net-" + graph_route
        else:
            graph, frequencies = induce_theme_network(network, pattern)
            graph_route = "induced"
    elif (
        isinstance(carrier, (CSRGraph, MaskedCarrier))
        and engine != "legacy"
    ):
        masked = isinstance(carrier, MaskedCarrier)
        frequencies = theme_frequencies(
            network, pattern,
            candidates=carrier.vertices() if masked else carrier,
        )
        csr_net = network.csr_graph()
        derivation_base = carrier.base if masked else carrier
        # NOTE: the route choice must NOT depend on the projection
        # switch — the switch only picks derive-vs-re-enumerate for
        # triangle indexes (provably element-identical), so keeping
        # routes fixed is what makes the projection on/off parity
        # bit-exact by construction rather than by float luck.
        if csr_net is None:
            reuse_net = False
        elif derivable(derivation_base):
            reuse_net = _prefer_network_reuse(
                carrier.num_edges, derivation_base, csr_net
            )
        else:
            reuse_net = 3 * carrier.num_edges >= csr_net.num_edges
        if (
            csr_net is not None
            and carrier.num_edges >= CSR_NET_REUSE_MIN_EDGES
            and reuse_net
        ):
            # The carrier spans most of the network: decompose over the
            # network CSR itself and let the α = 0 peel prune. Vertices
            # outside the carrier get frequency 0, which by the
            # monotonicity argument of Proposition 5.3 leaves C*_p and
            # its levels unchanged — and the network CSR's cached
            # triangle index is shared by every node of the build.
            # (Below this cutover the projected carrier wins: deriving
            # its index costs one filter pass, while re-peeling the
            # whole network costs a flat pass over *all* its triangles
            # per child.)
            graph = csr_net
            graph_route = "net-reuse"
        elif masked:
            graph, graph_route = _restrict_for_decomposition(
                carrier.base, frequencies, carrier=carrier
            )
            graph_route = "carrier-" + graph_route
        else:
            graph, graph_route = _restrict_for_decomposition(
                carrier, frequencies
            )
            graph_route = "carrier-" + graph_route
    else:
        if isinstance(carrier, MaskedCarrier):
            carrier = carrier.materialize()
        graph, frequencies = theme_network_within(network, pattern, carrier)
        graph_route = "within"
    decomposition = decompose_theme(
        pattern, graph, frequencies,
        engine=engine, capture_carrier=capture_carrier,
    )
    decomposition.route = f"{graph_route}+{decomposition.route}"
    record_route("vertex", decomposition.route)
    return decomposition


def _prefer_network_reuse(
    carrier_edges: int, base: CSRGraph, csr_net: CSRGraph
) -> bool:
    """Net-reuse vs carrier projection, for a derivable carrier.

    Decomposing over the network CSR pays a Phase-1 pass over *all* its
    triangles plus the α = 0 peel of every non-carrier edge (each dying
    edge cascades through its triangles) but builds no index; the
    projected carrier pays the derived-index build over its own
    (smaller) triangle set. Measured on the dense benchmark family,
    projection wins essentially everywhere the carrier is a strict
    subset — reuse only when the carrier *is* nearly the network, where
    projecting buys nothing and the build cost is pure overhead. Either
    choice yields bit-identical decompositions (the Proposition 5.3
    zero-frequency argument), so this is purely a cost heuristic.
    """
    return 10 * carrier_edges >= 9 * csr_net.num_edges


def warm_network_triangles(
    network: DatabaseNetwork, items: list[int]
) -> bool:
    """Pre-enumerate the network CSR's triangle index when layer 1 will
    amortize it; returns True when warming happened.

    With projection on, every layer-1 theme graph that is a projection of
    the network CSR *derives* its triangle index from the network's — so
    one up-front enumeration replaces one per item. The expected cost of
    enumerating item ``s``'s theme subgraph scales like ``share_s²`` of
    the network enumeration (both endpoints of an edge must support the
    item), so warming pays off as soon as ``Σ share_s² ≥ 1``. With
    projection off only the covers-most regime reuses the network index
    (those decompositions run over the network CSR itself — the PR 2
    fork-warming predicate).
    """
    csr = network.csr_graph()
    if (
        csr is None
        or csr.num_edges < CSR_NET_REUSE_MIN_EDGES
        or csr.num_vertices == 0
    ):
        return False
    if csr._tri is not None:
        return True
    n = csr.num_vertices
    if projection_enabled():
        load = 0.0
        for item in items:
            share = len(network.vertices_containing_item(item)) / n
            load += share * share
            if load >= 1.0:
                triangle_index(csr)
                return True
        return False
    for item in items:
        if covers_most_vertices(
            len(network.vertices_containing_item(item)), n
        ):
            triangle_index(csr)
            return True
    return False


def covers_most_vertices(num_positive: int, num_vertices: int) -> bool:
    """The ≥90% frequency-coverage cutoff: decompose over the unfiltered
    network CSR instead of building a subgraph. One predicate shared by
    :func:`_restrict_for_decomposition` and the projection-off branch of
    :func:`warm_network_triangles` so tuning it never desynchronizes the
    two."""
    return 10 * num_positive >= 9 * num_vertices


def _restrict_for_decomposition(
    csr: CSRGraph,
    frequencies: FrequencyMap,
    carrier: MaskedCarrier | None = None,
) -> tuple[GraphLike, str]:
    """The graph to decompose for a frequency-positive vertex set, plus
    the route tag recorded on the decomposition.

    A vertex with ``f_v(p) = 0`` contributes weight 0 to every triangle
    through it, so each of its edges has cohesion 0 and dies in the α = 0
    peel without ever appearing in a level — decomposing the *unfiltered*
    graph with zero-filled frequencies is mathematically identical to
    decomposing the vertex-induced theme subgraph. When most vertices are
    frequency-positive we therefore skip the subgraph build entirely and
    let the peel do the filtering (``"full"``). A sparser theme gets one
    filter pass, and the surviving edge count picks the representation: a
    :meth:`CSRGraph.project` for the engine (``"projected"`` — provenance
    intact, so its triangle index derives from ``csr``'s cached one), or
    adjacency sets below the :data:`CSR_MIN_EDGES` cutover (``"small"``).

    With ``carrier`` (an unmaterialized intersection over ``csr``), its
    edge mask simply ANDs into the frequency mask, so the decomposition
    graph is a **single** projection of the base — same edges, same
    vertex set, bit-identical decompositions to materialize-then-filter
    at a fraction of the construction cost.
    """
    num_vertices = (
        carrier.num_vertices if carrier is not None else csr.num_vertices
    )
    if covers_most_vertices(len(frequencies), num_vertices):
        if carrier is not None:
            return carrier.materialize(), "full"
        return csr, "full"
    index = csr._index
    keep = bytearray(csr.num_vertices)
    for label in frequencies:
        i = index.get(label)
        if i is not None:
            keep[i] = 1
    edge_u = csr.edge_u
    edge_v = csr.edge_v
    m = len(edge_u)
    # An edge survives iff both endpoints are frequency-positive (and it
    # is in the carrier, when one is given): byte maps ANDed as big
    # ints — C speed end to end.
    at = keep.__getitem__
    if m:
        mask_int = (
            int.from_bytes(bytes(map(at, edge_u)), "little")
            & int.from_bytes(bytes(map(at, edge_v)), "little")
        )
        if carrier is not None:
            mask_int &= int.from_bytes(bytes(carrier.mask), "little")
        mask = mask_int.to_bytes(m, "little")
    else:
        mask = b""
    kept_count = sum(mask)
    if kept_count >= CSR_MIN_EDGES:
        return csr.project(mask), "projected"
    labels = csr.labels
    graph = Graph()
    for i in range(len(keep)):
        if keep[i]:
            graph.add_vertex(labels[i])
    for e in compress(range(m), mask):
        graph.add_edge(labels[edge_u[e]], labels[edge_v[e]])
    return graph, "small"


__all__ = [
    "DecompositionLevel",
    "TrussDecomposition",
    "decompose_truss",
    "decompose_theme",
    "decompose_network_pattern",
    "maximal_pattern_truss",
    "warm_network_triangles",
]
