"""TC-Tree statistics.

Table 3 reports size-level quantities per index; this module computes a
fuller profile — nodes per depth, edges stored, decomposition-level
distribution, an estimate of serialized size — useful both for reporting
and for capacity planning before indexing a large network.

Two size estimates are reported: the JSON interchange document
(approximate — JSON length depends on how floats print) and the binary
serving snapshot (exact — the format of :mod:`repro.serve.snapshot` is
fully determined by the counts collected here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.index.tctree import TCTree

#: Calibrated per-record JSON character costs (compact ``json.dump``):
#: node envelope ``{"pattern": ..., "frequencies": ..., "levels": ...}``,
#: one frequency entry ``"123": 0.123456789, ``, one level envelope
#: ``[0.123456789, [...]], `` and one edge ``[12, 34], ``. Floats print
#: shortest-round-trip, so real documents land within a small factor.
_JSON_DOCUMENT_OVERHEAD = 70
_JSON_NODE_OVERHEAD = 44
_JSON_PATTERN_ITEM = 5
_JSON_FREQUENCY_ENTRY = 26
_JSON_LEVEL_OVERHEAD = 22
_JSON_EDGE = 10


@dataclass
class TCTreeStatistics:
    """Size/shape profile of a built TC-Tree."""

    num_nodes: int
    depth: int
    nodes_per_depth: dict[int, int] = field(default_factory=dict)
    total_edges_stored: int = 0
    total_decomposition_levels: int = 0
    total_frequency_entries: int = 0
    total_pattern_items: int = 0
    max_alpha: float = 0.0
    #: Tree model ("vertex" or "edge") — edge snapshot payloads store
    #: frequency entries as endpoint pairs, so the size formula differs.
    kind: str = "vertex"

    @property
    def average_levels_per_node(self) -> float:
        if self.num_nodes == 0:
            return 0.0
        return self.total_decomposition_levels / self.num_nodes

    @property
    def average_edges_per_node(self) -> float:
        if self.num_nodes == 0:
            return 0.0
        return self.total_edges_stored / self.num_nodes

    # ------------------------------------------------------------------
    @property
    def estimated_json_bytes(self) -> int:
        """Approximate size of the JSON warehouse document."""
        return (
            _JSON_DOCUMENT_OVERHEAD
            + self.num_nodes * _JSON_NODE_OVERHEAD
            + self.total_pattern_items * _JSON_PATTERN_ITEM
            + self.total_frequency_entries * _JSON_FREQUENCY_ENTRY
            + self.total_decomposition_levels * _JSON_LEVEL_OVERHEAD
            + self.total_edges_stored * _JSON_EDGE
        )

    @property
    def estimated_snapshot_bytes(self) -> int:
        """Exact size of the binary serving snapshot."""
        from repro.serve.snapshot import estimate_snapshot_bytes

        return estimate_snapshot_bytes(
            self.num_nodes,
            self.total_decomposition_levels,
            self.total_edges_stored,
            self.total_frequency_entries,
            kind=self.kind,
        )

    def estimated_bytes(self) -> dict[str, int]:
        """Serialized-size estimates per persistence format."""
        return {
            "json": self.estimated_json_bytes,
            "snapshot": self.estimated_snapshot_bytes,
        }

    def as_row(self) -> dict[str, float]:
        return {
            "nodes": self.num_nodes,
            "depth": self.depth,
            "edges_stored": self.total_edges_stored,
            "levels": self.total_decomposition_levels,
            "levels/node": round(self.average_levels_per_node, 3),
            "alpha*": round(self.max_alpha, 6),
            "est_json_KiB": round(self.estimated_json_bytes / 1024, 1),
            "est_snap_KiB": round(
                self.estimated_snapshot_bytes / 1024, 1
            ),
        }


def tc_tree_statistics(tree: TCTree) -> TCTreeStatistics:
    """Profile ``tree`` in one pass over its nodes (both tree models)."""
    stats = TCTreeStatistics(
        num_nodes=0,
        depth=tree.depth,
        kind=getattr(tree, "kind", "vertex"),
    )
    for node in tree.iter_nodes():
        stats.num_nodes += 1
        depth = len(node.pattern)
        stats.nodes_per_depth[depth] = (
            stats.nodes_per_depth.get(depth, 0) + 1
        )
        stats.total_pattern_items += depth
        decomposition = node.decomposition
        if decomposition is not None:
            stats.total_edges_stored += decomposition.num_edges
            stats.total_decomposition_levels += len(decomposition.levels)
            stats.total_frequency_entries += len(
                decomposition.frequencies
            )
            stats.max_alpha = max(stats.max_alpha, decomposition.max_alpha)
    return stats
