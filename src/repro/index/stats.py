"""TC-Tree statistics.

Table 3 reports size-level quantities per index; this module computes a
fuller profile — nodes per depth, edges stored, decomposition-level
distribution, an estimate of serialized size — useful both for reporting
and for capacity planning before indexing a large network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.index.tctree import TCTree


@dataclass
class TCTreeStatistics:
    """Size/shape profile of a built TC-Tree."""

    num_nodes: int
    depth: int
    nodes_per_depth: dict[int, int] = field(default_factory=dict)
    total_edges_stored: int = 0
    total_decomposition_levels: int = 0
    max_alpha: float = 0.0

    @property
    def average_levels_per_node(self) -> float:
        if self.num_nodes == 0:
            return 0.0
        return self.total_decomposition_levels / self.num_nodes

    @property
    def average_edges_per_node(self) -> float:
        if self.num_nodes == 0:
            return 0.0
        return self.total_edges_stored / self.num_nodes

    def as_row(self) -> dict[str, float]:
        return {
            "nodes": self.num_nodes,
            "depth": self.depth,
            "edges_stored": self.total_edges_stored,
            "levels": self.total_decomposition_levels,
            "levels/node": round(self.average_levels_per_node, 3),
            "alpha*": round(self.max_alpha, 6),
        }


def tc_tree_statistics(tree: TCTree) -> TCTreeStatistics:
    """Profile ``tree`` in one pass over its nodes."""
    stats = TCTreeStatistics(num_nodes=0, depth=tree.depth)
    for node in tree.iter_nodes():
        stats.num_nodes += 1
        depth = len(node.pattern)
        stats.nodes_per_depth[depth] = (
            stats.nodes_per_depth.get(depth, 0) + 1
        )
        decomposition = node.decomposition
        if decomposition is not None:
            stats.total_edges_stored += decomposition.num_edges
            stats.total_decomposition_levels += len(decomposition.levels)
            stats.max_alpha = max(stats.max_alpha, decomposition.max_alpha)
    return stats
