"""Theme-community indexing and query answering (Section 6 of the paper).

- :mod:`repro.index.decomposition` — maximal-pattern-truss decomposition
  into the linked list ``L_p`` (Theorem 6.1) and reconstruction by
  Equation 1;
- :mod:`repro.index.tcnode` / :mod:`repro.index.tctree` — the TC-Tree, a
  set-enumeration tree over patterns whose nodes store ``L_p``
  (Algorithm 4);
- :mod:`repro.index.parallel` — process-parallel construction: layer-1
  items and whole enumeration subtrees fanned across a process pool with
  a compact picklable task/result protocol;
- :mod:`repro.index.query` — query answering (Algorithm 5), including the
  paper's two query modes QBA (by threshold) and QBP (by pattern);
- :mod:`repro.index.warehouse` — the persistent "data warehouse of maximal
  pattern trusses" facade with save/load.
"""

from repro.index.decomposition import TrussDecomposition, decompose_network_pattern, decompose_truss
from repro.index.parallel import build_tc_tree_process
from repro.index.query import QueryAnswer, query_by_alpha, query_by_pattern, query_tc_tree
from repro.index.tcnode import TCNode
from repro.index.tctree import TCTree, build_tc_tree
from repro.index.warehouse import ThemeCommunityWarehouse

__all__ = [
    "TrussDecomposition",
    "decompose_truss",
    "decompose_network_pattern",
    "TCNode",
    "TCTree",
    "build_tc_tree",
    "build_tc_tree_process",
    "QueryAnswer",
    "query_tc_tree",
    "query_by_alpha",
    "query_by_pattern",
    "ThemeCommunityWarehouse",
]
