"""Shared-memory exchange of CSR carriers for the process-parallel build.

PR 2's exchange protocol ships ``C*_s(0)`` carriers between processes by
pickling their canonical edge lists — every layer-1 task result carries
``O(m)`` Python tuples through a pipe, and every phase-B worker pays an
``O(m log m)`` rebuild per carrier it touches. This module replaces that
with one flat int64 :mod:`multiprocessing.shared_memory` segment per
phase-A chunk: the producing worker writes the carriers' raw CSR arrays
(labels, indptr, indices, edge_ids, edge_u, edge_v) into the segment and
returns only a tiny picklable *handle* (segment name + table of
contents); consumers attach and wrap zero-copy ``memoryview`` casts in
:class:`~repro.graphs.csr.CSRGraph` objects. The result-pickling term
tracked by ``benchmarks/bench_parallel_build.py`` drops to the handle
size, and attached carriers are backed by one kernel mapping shared by
every worker instead of per-process copies.

Lifecycle: the worker that creates a segment closes its own mapping
immediately after writing (the segment persists); the orchestrator owns
unlinking and does so in a ``finally`` once the pool is done
(:func:`unlink_handle`). Attached mappings live as long as the graphs
built from them — the memoryviews pin the mapping — and are dropped with
the worker process.

Segment layout: one int64 run per graph at ``offset`` words::

    labels    int64[n]      sorted vertex labels
    indptr    int64[n + 1]
    indices   int64[2 m]
    edge_ids  int64[2 m]
    edge_u    int64[m]
    edge_v    int64[m]

The handle is ``{"name": <segment>, "toc": {key: (offset, n, m)}}``.
"""

from __future__ import annotations

from array import array

from repro.errors import TCIndexError
from repro.graphs.csr import INDEX_TYPECODE, CSRGraph

try:  # pragma: no cover - import guard exercised only on exotic builds
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]

#: Whether the platform offers POSIX/Windows shared memory at all.
HAS_SHARED_MEMORY = shared_memory is not None

#: Mappings whose close() found live exported views (graphs still using
#: the buffer). Parking them here keeps ``SharedMemory.__del__`` from
#: firing mid-GC with exports alive (a BufferError warning); the OS
#: reclaims the mappings at process exit.
_PENDING_CLOSE: list = []

#: int64 words per graph: 2n + 1 + 6m (see module docstring layout).


def _graph_words(n: int, m: int) -> int:
    return 2 * n + 1 + 6 * m


def _as_words(values) -> array:
    if isinstance(values, array):
        return values
    return array(INDEX_TYPECODE, values)


class SharedCarrierStore:
    """A set of CSR graphs packed into one shared-memory segment."""

    def __init__(self, shm, toc: dict, owner: bool) -> None:
        self._shm = shm
        self._toc = toc
        self._owner = owner

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, graphs: dict[int, CSRGraph], name: str | None = None
    ) -> "SharedCarrierStore":
        """Pack ``graphs`` (non-empty) into a fresh segment.

        ``name`` optionally fixes the segment name — the parallel build
        pre-assigns names so the orchestrator can unlink segments whose
        creating task never got to report a handle (aborted pools).
        """
        if shared_memory is None:  # pragma: no cover
            raise TCIndexError("multiprocessing.shared_memory unavailable")
        toc: dict[int, tuple[int, int, int]] = {}
        total = 0
        for key, graph in graphs.items():
            n = graph.num_vertices
            m = graph.num_edges
            toc[key] = (total, n, m)
            total += _graph_words(n, m)
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(total * 8, 1)
        )
        words = memoryview(shm.buf).cast(INDEX_TYPECODE)
        try:
            for key, graph in graphs.items():
                offset, n, m = toc[key]
                cursor = offset
                for section, length in (
                    (graph.labels, n),
                    (graph.indptr, n + 1),
                    (graph.indices, 2 * m),
                    (graph.edge_ids, 2 * m),
                    (graph.edge_u, m),
                    (graph.edge_v, m),
                ):
                    words[cursor:cursor + length] = _as_words(section)
                    cursor += length
        finally:
            words.release()
        return cls(shm, toc, owner=True)

    def handle(self) -> dict:
        """The picklable attachment token."""
        return {"name": self._shm.name, "toc": self._toc}

    @classmethod
    def attach(cls, handle: dict) -> "SharedCarrierStore":
        """Attach to a segment created elsewhere (read-only use)."""
        if shared_memory is None:  # pragma: no cover
            raise TCIndexError("multiprocessing.shared_memory unavailable")
        shm = shared_memory.SharedMemory(name=handle["name"])
        return cls(shm, handle["toc"], owner=False)

    # ------------------------------------------------------------------
    def keys(self):
        return self._toc.keys()

    def graph(self, key: int) -> CSRGraph:
        """``key``'s graph as zero-copy views over the segment.

        The returned graph's flat arrays are ``memoryview`` casts into
        the mapping (labels are materialized — the label index wants a
        real tuple); they pin the mapping alive, and
        :meth:`CSRGraph.__getstate__` copies them into plain arrays if
        such a graph is ever pickled onward.
        """
        offset, n, m = self._toc[key]
        words = memoryview(self._shm.buf).cast(INDEX_TYPECODE)
        cursor = offset
        sections = []
        for length in (n, n + 1, 2 * m, 2 * m, m, m):
            sections.append(words[cursor:cursor + length])
            cursor += length
        graph = CSRGraph(tuple(sections[0]), *sections[1:])
        # The graph keeps the store (and so the mapping) alive: the
        # segment can only finalize after every graph built from it.
        graph._buffer_owner = self
        return graph

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unmap this process's view (the segment itself persists).

        When graphs built by :meth:`graph` still export views into the
        mapping it cannot be unmapped now — it is parked instead and the
        OS reclaims it with the process.
        """
        try:
            self._shm.close()
        except BufferError:
            _PENDING_CLOSE.append(self._shm)

    def unlink(self) -> None:
        """Remove the segment (creator side, after consumers finished)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def unlink_handle(handle: dict) -> None:
    """Orchestrator-side cleanup of a worker-created segment."""
    if shared_memory is None:  # pragma: no cover
        return
    try:
        shm = shared_memory.SharedMemory(name=handle["name"])
    except FileNotFoundError:
        return
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - raced cleanup
        pass
    finally:
        shm.close()


__all__ = [
    "HAS_SHARED_MEMORY",
    "SharedCarrierStore",
    "unlink_handle",
]
