"""TC-Tree query answering (Algorithm 5).

A query is a pair ``(q, α_q)``: the answer is every non-empty
``C*_p(α_q)`` with ``p ⊆ q``. Traversal is breadth-first with two prunes:

- an item outside ``q`` prunes the whole subtree (no descendant pattern
  can be a sub-pattern of ``q``);
- an empty ``C*_p(α_q)`` prunes the subtree (Proposition 5.2 — no
  super-pattern can survive a threshold its sub-pattern failed).

The paper evaluates two modes (Figure 5): QBA fixes ``q = S`` and sweeps
``α_q``; QBP fixes ``α_q = 0`` and sweeps the query pattern length.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro._ordering import Pattern, make_pattern
from repro.core.communities import ThemeCommunity, extract_theme_communities
from repro.core.truss import PatternTruss
from repro.errors import TCIndexError
from repro.index.tctree import TCTree


@dataclass
class QueryAnswer:
    """Result of one TC-Tree query."""

    query_pattern: Pattern | None  # None means q = S (all items)
    alpha: float
    trusses: list[PatternTruss] = field(default_factory=list)
    retrieved_nodes: int = 0  # RN in Figure 5
    visited_nodes: int = 0  # nodes touched, including pruned ones
    #: Serving generation the answer was computed against (stamped by
    #: :class:`~repro.serve.engine.IndexedWarehouse`; ``None`` on direct
    #: tree queries). Every truss in the answer comes from this one
    #: generation — the hot-swap tier's no-torn-reads witness.
    generation: int | None = None

    @property
    def num_trusses(self) -> int:
        return len(self.trusses)

    def patterns(self) -> list[Pattern]:
        return sorted(t.pattern for t in self.trusses)

    def communities(self) -> list[ThemeCommunity]:
        """Theme communities of all retrieved trusses (Definition 3.5)."""
        return extract_theme_communities(self.trusses)

    def to_payload(self) -> dict:
        """JSON-serializable form (the serving layer's wire format)."""
        payload: dict = {
            "query_pattern": (
                None if self.query_pattern is None
                else list(self.query_pattern)
            ),
            "alpha": self.alpha,
            "retrieved_nodes": self.retrieved_nodes,
            "visited_nodes": self.visited_nodes,
            "num_trusses": self.num_trusses,
            "trusses": [
                {
                    "pattern": list(truss.pattern),
                    "num_vertices": truss.num_vertices,
                    "num_edges": truss.num_edges,
                    "communities": [
                        sorted(component)
                        for component in truss.communities()
                    ],
                }
                for truss in self.trusses
            ],
        }
        if self.generation is not None:
            payload["generation"] = self.generation
        return payload


def query_tc_tree(
    tree: TCTree,
    pattern: Iterable[int] | None = None,
    alpha: float = 0.0,
) -> QueryAnswer:
    """Answer query ``(q, α_q)`` on a TC-Tree (Algorithm 5).

    ``pattern=None`` queries with ``q = S`` (every item allowed).
    """
    if alpha < 0.0:
        raise TCIndexError(f"alpha must be >= 0, got {alpha}")
    query_pattern = None if pattern is None else make_pattern(pattern)
    query_items = None if query_pattern is None else set(query_pattern)
    answer = QueryAnswer(query_pattern=query_pattern, alpha=alpha)

    queue = deque([tree.root])
    while queue:
        node_f = queue.popleft()
        for child in node_f.children:
            # A touched node counts as visited even when the item prune
            # discards it — the Figure 5 RN/VN accounting measures nodes
            # touched, including pruned ones.
            answer.visited_nodes += 1
            if query_items is not None and child.item not in query_items:
                continue  # prune subtree: s_{n_c} ∉ q
            truss = child.decomposition.truss_at(alpha)  # type: ignore[union-attr]
            if truss.is_empty():
                continue  # prune subtree: Proposition 5.2
            answer.trusses.append(truss)
            answer.retrieved_nodes += 1
            queue.append(child)
    return answer


def query_by_alpha(tree: TCTree, alpha: float) -> QueryAnswer:
    """QBA: all themes, threshold ``α_q`` (Figure 5 a-d)."""
    return query_tc_tree(tree, pattern=None, alpha=alpha)


def query_by_pattern(
    tree: TCTree, pattern: Iterable[int]
) -> QueryAnswer:
    """QBP: sub-patterns of ``q``, threshold 0 (Figure 5 e-h)."""
    return query_tc_tree(tree, pattern=pattern, alpha=0.0)
