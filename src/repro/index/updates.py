"""Incremental TC-Tree maintenance under transaction-stream deltas.

Re-indexing from scratch after every change wastes almost all of the
build: a transaction delta against one vertex (or edge) can only change
the theme networks of patterns drawn from that target's items — every
other database's frequencies are untouched, so every other theme network
(and its maximal pattern truss) is bit-for-bit identical. This is the
Proposition 5.3 locality argument run in reverse: the carrier of a
pattern is built from layer-1 intersections, so a pattern avoiding every
affected item has an unchanged carrier chain all the way down.

:class:`Delta` describes one transaction-level change — ``insert``,
``delete``, or ``modify`` against a vertex (int target) or an edge
(canonical pair target). :func:`apply_deltas` validates a whole stream
up front (atomicity: a bad delta raises :class:`TCIndexError` before the
network is touched), applies it, and rebuilds only the affected
subtrees by handing the surviving decompositions to the builder's
``reuse`` hook. The eager full rebuild stays available as the parity
oracle (``mode="full"``), and ``mode="auto"`` routes between the two
through the registry's cutover machinery — when nearly the whole item
universe is affected, scanning the old tree for reusable work costs more
than it saves.

Caveat: because inserts and deletes change the frequency denominator,
*all* patterns over a target's items (old and new) are treated as
affected, not just the patterns inside the changed transactions.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from repro._ordering import Pattern
from repro.engine import registry
from repro.errors import TCIndexError
from repro.graphs.graph import edge_key
from repro.index.decomposition import TrussDecomposition
from repro.index.tctree import TCTree, build_tc_tree
from repro.network.dbnetwork import DatabaseNetwork
from repro.txdb.database import TransactionDatabase

#: ``mode="auto"`` cutover: when the affected items cover at least this
#: fraction of the item universe, route to a full rebuild — almost
#: nothing is reusable, so the old-tree scan and reuse-dict probing are
#: pure overhead. Swept by ``repro bench tune-cutovers`` (report-only: a
#: ratio, not a rewritable integer constant).
MAINT_FULL_REBUILD_FRACTION = 0.95

INSERT = "insert"
DELETE = "delete"
MODIFY = "modify"
_OPS = (INSERT, DELETE, MODIFY)


@dataclass(frozen=True)
class Delta:
    """One transaction-level change against a vertex or edge database.

    ``target`` is a vertex id (vertex model) or an endpoint pair (edge
    model; canonicalized through :func:`~repro.graphs.graph.edge_key`).
    ``items`` carries the new transaction for insert/modify; ``tid`` the
    stable transaction id for delete/modify (the id
    :meth:`~repro.txdb.database.TransactionDatabase.add_transaction`
    returned when the transaction was inserted).
    """

    op: str
    target: int | tuple[int, int]
    items: tuple[int, ...] | None = None
    tid: int | None = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise TCIndexError(
                f"unknown delta op {self.op!r} (expected one of {_OPS})"
            )
        if isinstance(self.target, Sequence):
            if len(self.target) != 2:
                raise TCIndexError(
                    f"edge delta target must be a pair, got {self.target!r}"
                )
            object.__setattr__(self, "target", edge_key(*self.target))
        if self.op in (INSERT, MODIFY):
            if not self.items:
                raise TCIndexError(
                    f"{self.op} delta requires a non-empty transaction"
                )
            object.__setattr__(
                self, "items", tuple(sorted(frozenset(self.items)))
            )
        elif self.items is not None:
            raise TCIndexError("delete deltas carry no transaction items")
        if self.op in (DELETE, MODIFY):
            if self.tid is None:
                raise TCIndexError(f"{self.op} delta requires a tid")
        elif self.tid is not None:
            raise TCIndexError("insert deltas are assigned a fresh tid")

    # -- constructors ---------------------------------------------------
    @classmethod
    def insert(
        cls, target: int | tuple[int, int], items: Iterable[int]
    ) -> Delta:
        return cls(INSERT, target, items=tuple(items))

    @classmethod
    def delete(cls, target: int | tuple[int, int], tid: int) -> Delta:
        return cls(DELETE, target, tid=tid)

    @classmethod
    def modify(
        cls, target: int | tuple[int, int], tid: int, items: Iterable[int]
    ) -> Delta:
        return cls(MODIFY, target, items=tuple(items), tid=tid)

    # -- wire shape -----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"op": self.op, "target": self.target}
        if isinstance(self.target, tuple):
            doc["target"] = list(self.target)
        if self.items is not None:
            doc["items"] = list(self.items)
        if self.tid is not None:
            doc["tid"] = self.tid
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> Delta:
        try:
            op = doc["op"]
            target = doc["target"]
        except (TypeError, KeyError) as exc:
            raise TCIndexError(
                f"malformed delta document {doc!r}: missing {exc}"
            ) from None
        if isinstance(target, list):
            target = tuple(target)
        items = doc.get("items")
        return cls(
            op,
            target,
            items=tuple(items) if items is not None else None,
            tid=doc.get("tid"),
        )


@dataclass(frozen=True)
class MaintenanceResult:
    """What :func:`apply_deltas` did: the refreshed tree plus the route
    and reuse accounting the bench/obs layers report."""

    tree: TCTree
    route: str
    affected_items: frozenset[int] = frozenset()
    affected_fraction: float = 0.0
    reuse_candidates: int = 0
    reused: int = 0


def affected_items(
    network: DatabaseNetwork,
    vertex: int,
    new_transactions: Iterable[Iterable[int]],
) -> set[int]:
    """Items whose theme networks may change when ``vertex`` is updated.

    The union of the vertex's current items (their frequencies drop as the
    denominator grows) and the incoming items (they may newly appear).
    ``new_transactions`` may be any iterable — including a single-pass
    generator of generators; it is consumed exactly once.
    """
    items: set[int] = set()
    database = network.databases.get(vertex)
    if database is not None:
        items |= database.items()
    for transaction in new_transactions:
        items.update(transaction)
    return items


def reusable_decompositions(
    tree: TCTree, affected: set[int]
) -> dict[Pattern, TrussDecomposition]:
    """Decompositions of the old tree still valid after the update —
    exactly those whose pattern avoids every affected item."""
    reusable: dict[Pattern, TrussDecomposition] = {}
    for node in tree.iter_nodes():
        if node.decomposition is None:
            continue
        if not affected.intersection(node.pattern):
            reusable[node.pattern] = node.decomposition
    return reusable


def clone_tree(tree: TCTree) -> TCTree:
    """A structurally fresh tree sharing the (immutable-in-practice)
    decompositions — new node objects, same ``L_p`` lists. Dispatches
    through the model registry, so it works for every tree kind."""
    spec = registry.model_for_tree(tree)
    node_cls = spec.node_cls

    def clone(node):
        copy = node_cls(node.item, node.pattern, node.decomposition)
        for child in node.children:
            copy.add_child(clone(child))
        return copy

    return spec.make_tree(clone(tree.root), tree.num_items)


# Back-compat alias (pre-delta name, vertex-only call sites).
_clone_tree = clone_tree


def _check_target(network, target) -> None:
    if isinstance(target, tuple):
        if not network.graph.has_edge(*target):
            raise TCIndexError(f"edge {target!r} not in network")
    elif target not in network.graph:
        raise TCIndexError(f"vertex {target!r} not in network")


def validate_deltas(network, deltas: Sequence[Delta]) -> None:
    """Raise :class:`TCIndexError` unless the whole stream can apply.

    Runs before any mutation so :func:`apply_deltas` is atomic: every
    target must exist in the network topology (a delta never creates
    vertices or edges — topology changes invalidate triangle structure
    and need a rebuild, not maintenance), and every delete/modify tid
    must be live at its point in the stream (simulated, so a delete may
    legally name a tid inserted earlier in the same stream).
    """
    simulated: dict[Any, list] = {}
    for position, delta in enumerate(deltas):
        if not isinstance(delta, Delta):
            raise TCIndexError(
                f"delta {position} is {type(delta).__name__!r}, not Delta"
            )
        _check_target(network, delta.target)
        state = simulated.get(delta.target)
        if state is None:
            database = network.databases.get(delta.target)
            state = simulated[delta.target] = (
                [database.tids(), database.next_tid]
                if database is not None
                else [set(), 0]
            )
        live, next_tid = state
        if delta.op == INSERT:
            live.add(next_tid)
            state[1] = next_tid + 1
        elif delta.tid not in live:
            raise TCIndexError(
                f"delta {position}: unknown transaction id {delta.tid!r} "
                f"on target {delta.target!r}"
            )
        elif delta.op == DELETE:
            live.discard(delta.tid)


def _apply_one(network, delta: Delta) -> None:
    database = network.databases.get(delta.target)
    if database is None:
        database = TransactionDatabase()
        network.databases[delta.target] = database
    if delta.op == INSERT:
        database.add_transaction(delta.items)
    elif delta.op == DELETE:
        database.remove_transaction(delta.tid)
    else:
        database.replace_transaction(delta.tid, delta.items)


def _rebuild(tree, network, max_length, workers, backend, reuse):
    if tree.kind == "edge":
        from repro.edgenet.index import build_edge_tc_tree

        return build_edge_tc_tree(
            network, max_length=max_length, workers=workers,
            backend=backend, reuse=reuse,
        )
    return build_tc_tree(
        network, max_length=max_length, workers=workers, reuse=reuse,
        backend=backend,
    )


def apply_deltas(
    network,
    tree: TCTree,
    deltas: Iterable[Delta],
    *,
    mode: str = "auto",
    max_length: int | None = None,
    workers: int = 1,
    backend: str = "serial",
) -> MaintenanceResult:
    """Apply a transaction-delta stream and refresh the TC-Tree.

    Works for both models: a vertex tree over a
    :class:`~repro.network.dbnetwork.DatabaseNetwork` and an edge tree
    over an :class:`~repro.edgenet.network.EdgeDatabaseNetwork` (delta
    targets are vertex ids resp. canonical edge pairs).

    The whole stream is validated first and applied atomically —
    ``network`` is only mutated once every delta is known to be
    applicable. ``tree`` is left untouched; a new tree is returned (an
    empty stream returns a structurally fresh clone), so readers may keep
    querying the old tree while the new one is built — the hot-swap
    serving tier depends on exactly this.

    ``mode`` selects the maintenance route: ``"incremental"`` reuses
    every decomposition whose pattern avoids the affected items,
    ``"full"`` is the eager from-scratch parity oracle, and ``"auto"``
    picks by affected fraction against ``MAINT_FULL_REBUILD_FRACTION``
    (the route taken is observable via the ``repro_engine_route_total``
    counter, tags ``maintain-incremental``/``maintain-full``).
    """
    if mode not in ("auto", "incremental", "full"):
        raise TCIndexError(f"unknown maintenance mode {mode!r}")
    deltas = list(deltas)
    validate_deltas(network, deltas)
    if not deltas:
        return MaintenanceResult(tree=clone_tree(tree), route="noop")

    affected: set[int] = set()
    for delta in deltas:
        database = network.databases.get(delta.target)
        if database is not None:
            affected |= database.items()
        if delta.items:
            affected.update(delta.items)
        _apply_one(network, delta)

    universe = set(network.item_universe())
    fraction = (
        len(affected & universe) / len(universe) if universe else 1.0
    )
    if mode == "auto":
        route = (
            "full"
            if fraction >= MAINT_FULL_REBUILD_FRACTION
            else "incremental"
        )
    else:
        route = mode

    reuse = (
        reusable_decompositions(tree, affected)
        if route == "incremental"
        else None
    )
    new_tree = _rebuild(tree, network, max_length, workers, backend, reuse)

    spec = registry.model_for_tree(tree)
    registry.record_route(spec.name, f"maintain-{route}")
    reused = 0
    if reuse:
        for node in new_tree.iter_nodes():
            if (
                node.decomposition is not None
                and reuse.get(node.pattern) is node.decomposition
            ):
                reused += 1
    return MaintenanceResult(
        tree=new_tree,
        route=route,
        affected_items=frozenset(affected),
        affected_fraction=fraction,
        reuse_candidates=len(reuse) if reuse else 0,
        reused=reused,
    )


def update_vertex_database(
    network: DatabaseNetwork,
    tree: TCTree,
    vertex: int,
    new_transactions: Iterable[Iterable[int]],
    max_length: int | None = None,
    workers: int = 1,
    backend: str = "process",
) -> TCTree:
    """Append transactions to one vertex and return the refreshed TC-Tree.

    The pre-delta entry point, kept as a thin wrapper over
    :func:`apply_deltas` with insert-only deltas and the incremental
    route forced (its callers already know the update is small).
    ``network`` is mutated; ``tree`` is left untouched and a new tree is
    returned — callers may keep querying the old tree independently, even
    when the update turns out to be empty.

    ``new_transactions`` may be any iterable of iterables (it is
    materialized once up front, so single-pass generators are safe);
    ``workers``/``backend`` select the rebuild parallelism exactly as in
    :func:`~repro.index.tctree.build_tc_tree`.
    """
    if vertex not in network.graph:
        raise TCIndexError(f"vertex {vertex!r} not in network")
    # Materialize before anything iterates: a generator input would
    # otherwise be silently exhausted by the first pass.
    transactions = [list(t) for t in new_transactions]
    result = apply_deltas(
        network,
        tree,
        [Delta.insert(vertex, t) for t in transactions],
        mode="incremental",
        max_length=max_length,
        workers=workers,
        backend=backend,
    )
    return result.tree
