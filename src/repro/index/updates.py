"""Incremental TC-Tree maintenance under vertex-database updates.

Re-indexing from scratch after every new transaction wastes almost all of
the build: appending transactions to one vertex can only change the theme
networks of patterns drawn from that vertex's items (every other vertex's
frequencies are untouched, so every other theme network — and its maximal
pattern truss — is bit-for-bit identical).

``update_vertex_database`` applies the data change and rebuilds the index
reusing every decomposition whose pattern avoids the affected items. This
is the "online index update" direction the truss-search literature
explores (Huang et al., 2014), adapted to the TC-Tree.

Caveat: because appending transactions grows the frequency denominator,
*all* patterns over the vertex's items (old and new) are treated as
affected, not just the patterns inside the new transactions.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro._ordering import Pattern
from repro.errors import TCIndexError
from repro.index.decomposition import TrussDecomposition
from repro.index.tcnode import TCNode
from repro.index.tctree import TCTree, build_tc_tree
from repro.network.dbnetwork import DatabaseNetwork
from repro.txdb.database import TransactionDatabase


def affected_items(
    network: DatabaseNetwork,
    vertex: int,
    new_transactions: Iterable[Iterable[int]],
) -> set[int]:
    """Items whose theme networks may change when ``vertex`` is updated.

    The union of the vertex's current items (their frequencies drop as the
    denominator grows) and the incoming items (they may newly appear).
    ``new_transactions`` may be any iterable — including a single-pass
    generator of generators; it is consumed exactly once.
    """
    items: set[int] = set()
    database = network.databases.get(vertex)
    if database is not None:
        items |= database.items()
    for transaction in new_transactions:
        items.update(transaction)
    return items


def reusable_decompositions(
    tree: TCTree, affected: set[int]
) -> dict[Pattern, TrussDecomposition]:
    """Decompositions of the old tree still valid after the update —
    exactly those whose pattern avoids every affected item."""
    reusable: dict[Pattern, TrussDecomposition] = {}
    for node in tree.iter_nodes():
        if node.decomposition is None:
            continue
        if not affected.intersection(node.pattern):
            reusable[node.pattern] = node.decomposition
    return reusable


def _clone_tree(tree: TCTree) -> TCTree:
    """A structurally fresh tree sharing the (immutable-in-practice)
    decompositions — new :class:`TCNode` objects, same ``L_p`` lists."""

    def clone(node: TCNode) -> TCNode:
        copy = TCNode(node.item, node.pattern, node.decomposition)
        for child in node.children:
            copy.add_child(clone(child))
        return copy

    return TCTree(clone(tree.root), num_items=tree.num_items)


def update_vertex_database(
    network: DatabaseNetwork,
    tree: TCTree,
    vertex: int,
    new_transactions: Iterable[Iterable[int]],
    max_length: int | None = None,
    workers: int = 1,
    backend: str = "process",
) -> TCTree:
    """Append transactions to one vertex and return the refreshed TC-Tree.

    ``network`` is mutated (the transactions are appended); ``tree`` is
    left untouched and a new tree is returned — callers may keep querying
    the old tree independently, even when the update turns out to be
    empty. Unaffected subproblems are reused, so the cost is proportional
    to the work involving the updated vertex's items only.

    ``new_transactions`` may be any iterable of iterables (it is
    materialized once up front, so single-pass generators are safe);
    ``workers``/``backend`` select the rebuild parallelism exactly as in
    :func:`~repro.index.tctree.build_tc_tree`.
    """
    if vertex not in network.graph:
        raise TCIndexError(f"vertex {vertex!r} not in network")
    # Materialize before anything iterates: affected_items and the append
    # loop below both need a pass, and a generator input would otherwise
    # be silently exhausted by the first (losing the transactions).
    transactions = [list(t) for t in new_transactions]
    if not transactions:
        return _clone_tree(tree)

    affected = affected_items(network, vertex, transactions)
    reuse = reusable_decompositions(tree, affected)

    database = network.databases.get(vertex)
    if database is None:
        database = TransactionDatabase()
        network.databases[vertex] = database
    for transaction in transactions:
        database.add_transaction(transaction)

    return build_tc_tree(
        network, max_length=max_length, workers=workers, reuse=reuse,
        backend=backend,
    )
