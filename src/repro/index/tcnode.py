"""TC-Tree node (Section 6.2).

Each node represents a pattern — the union of the items stored on the path
from the root — and stores the decomposed maximal pattern truss ``L_p`` of
that pattern. Nodes with empty decompositions are never materialized
(Proposition 5.2 prunes their whole subtrees).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro._ordering import Pattern
from repro.index.decomposition import TrussDecomposition


class TCNode:
    """One node of a TC-Tree.

    ``item`` is the item appended at this node (``None`` for the root);
    ``pattern`` the full pattern it represents; ``decomposition`` its
    ``L_p`` (``None`` only for the root).
    """

    __slots__ = ("item", "pattern", "decomposition", "children")

    def __init__(
        self,
        item: int | None,
        pattern: Pattern,
        decomposition: TrussDecomposition | None,
    ) -> None:
        self.item = item
        self.pattern = pattern
        self.decomposition = decomposition
        self.children: list[TCNode] = []

    def add_child(self, child: "TCNode") -> None:
        """Append a child; children are kept sorted by item (order ≺)."""
        self.children.append(child)
        if len(self.children) > 1 and self.children[-2].item > child.item:  # type: ignore[operator]
            self.children.sort(key=lambda n: n.item)  # type: ignore[arg-type, return-value]

    def iter_subtree(self) -> Iterator["TCNode"]:
        """This node and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    @property
    def depth_below(self) -> int:
        """Height of the subtree rooted here (leaf = 0)."""
        if not self.children:
            return 0
        return 1 + max(child.depth_below for child in self.children)

    def __repr__(self) -> str:
        return (
            f"TCNode(item={self.item}, pattern={self.pattern}, "
            f"children={len(self.children)})"
        )
