"""Process-parallel TC-Tree construction.

The paper parallelizes the first TC-Tree layer because layer-1
decompositions are independent; beyond layer 1, each enumeration subtree
rooted at a layer-1 node is *also* independent — by Proposition 5.3 every
descendant pattern ``{s_i, ...}`` is mined inside intersections of the
layer-1 carriers ``C*_{s_j}(0)`` with ``s_j ⪰ s_i``, which are shared
read-only inputs. Threads cannot exploit either property on a pure-Python
peeling engine (the GIL serializes the hot loops), so this module fans
both phases across a :class:`~concurrent.futures.ProcessPoolExecutor`:

Phase A
    Layer-1 items are grouped into cost-balanced chunks and each worker
    decomposes its chunk against the network shipped once per worker via
    the pool initializer.
Phase B
    Each layer-1 item owns the enumeration subtree of all patterns whose
    smallest item it is. Workers receive the full layer-1 decomposition
    map once (second pool initializer) and build whole subtrees, returning
    finished :class:`~repro.index.tcnode.TCNode` trees.

The exchange format is deliberately compact: ``CSRGraph`` pickles as its
flat arrays only (label index and cached triangle index are rebuilt or
dropped), and ``TrussDecomposition.__getstate__`` flattens a live CSR
``carrier0`` into its canonical edge list, so workers ship levels +
frequencies + flat edge lists rather than live CSR objects.

On fork platforms the *inbound* half of the protocol is free: worker
state (network, layer-1 map, reuse table) is published in module globals
immediately before the pool forks, so children inherit it copy-on-write —
including the network CSR and its triangle index, which the parent warms
once so no worker re-enumerates triangles. Spawn platforms fall back to
shipping the same state through the pool initializer.

Chunking is adaptive: per-item cost is estimated from ``C*_s(0)`` edge
counts (degree mass before layer 1 exists), and items are packed
largest-first onto the least-loaded chunk, so one hub item lands alone in
its own chunk instead of serializing the pool behind a uniform split.

The serial path in :func:`repro.index.tctree.build_tc_tree` is preserved
bit-for-bit and acts as the parity oracle for this module's tests.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from heapq import heapify, heappop, heappush

from repro._ordering import EMPTY_PATTERN, Pattern
from repro.graphs.csr import GraphLike
from repro.graphs.support import CSR_MIN_EDGES, triangle_index
from repro.index.decomposition import (
    TrussDecomposition,
    covers_most_vertices,
    decompose_network_pattern,
)
from repro.index.tcnode import TCNode
from repro.index.tctree import (
    TCTree,
    _carrier_of,
    _expand_frontier,
    build_tc_tree,
)
from repro.network.dbnetwork import DatabaseNetwork

#: Chunks per worker: oversubscription lets the pool rebalance when cost
#: estimates are off, at the price of a little extra task overhead.
CHUNKS_PER_WORKER = 4

# ---------------------------------------------------------------------------
# adaptive chunking
# ---------------------------------------------------------------------------


def adaptive_chunks(
    items: list[int],
    costs: dict[int, float],
    workers: int,
    chunks_per_worker: int = CHUNKS_PER_WORKER,
) -> list[list[int]]:
    """Pack ``items`` into at most ``workers * chunks_per_worker`` chunks.

    Greedy LPT scheduling: items are placed heaviest-first onto the
    currently lightest chunk, so a hub item (one huge ``C*_s(0)``) fills a
    chunk by itself and the remaining items spread over the rest of the
    pool instead of queuing behind it. Every item appears in exactly one
    chunk; chunks are returned and internally sorted in ascending item
    order (deterministic, and matching the serial enumeration order).
    """
    if not items:
        return []
    n_chunks = max(1, min(len(items), workers * chunks_per_worker))
    # Heaviest first; ties broken by item id for determinism.
    order = sorted(items, key=lambda i: (-costs.get(i, 0.0), i))
    heap: list[tuple[float, int]] = [(0.0, k) for k in range(n_chunks)]
    heapify(heap)
    bins: list[list[int]] = [[] for _ in range(n_chunks)]
    for item in order:
        load, k = heappop(heap)
        bins[k].append(item)
        heappush(heap, (load + max(costs.get(item, 0.0), 1.0), k))
    chunks = [sorted(b) for b in bins if b]
    chunks.sort(key=lambda c: c[0])
    return chunks


def _layer1_costs(network: DatabaseNetwork, items: list[int]) -> dict[int, float]:
    """Pre-layer-1 cost proxy: degree mass of the item's supporting vertices.

    ``C*_s(0)`` is unknown before phase A runs, but it lives inside the
    subgraph induced by the vertices whose databases mention ``s`` — the
    sum of their degrees bounds that subgraph's edge count.
    """
    degree = network.graph.degree
    costs: dict[int, float] = {}
    for item in items:
        costs[item] = float(
            sum(degree(v) for v in network.vertices_containing_item(item))
        )
    return costs


# ---------------------------------------------------------------------------
# worker-side state and task functions
# ---------------------------------------------------------------------------

#: Worker state: {"network": ..., "layer1": ..., "reuse": ...}. On fork
#: platforms the parent publishes it here right before creating the pool
#: (children inherit it copy-on-write, caches included); on spawn
#: platforms :func:`_init_worker` fills it from the pickled initializer
#: payload.
_WORKER_STATE: dict = {}
#: Per-process memo of materialized layer-1 carriers (item -> C*_s(0));
#: shared across the subtree chunks a worker executes so each sibling
#: carrier is built at most once per process.
_WORKER_CARRIERS: dict[int, GraphLike] = {}
#: Serializes fork-path pools across threads: :data:`_WORKER_STATE` is a
#: module global, so two concurrent builds in one parent process would
#: otherwise clobber each other's state between publish and fork.
_STATE_LOCK = threading.Lock()


def _init_worker(payload: bytes) -> None:
    global _WORKER_STATE
    _WORKER_STATE = pickle.loads(payload)
    _WORKER_CARRIERS.clear()


def _layer1_chunk(items: list[int]) -> list[TrussDecomposition]:
    """Phase A task: decompose one chunk of single-item patterns."""
    network = _WORKER_STATE["network"]
    return [
        decompose_network_pattern(network, (item,), capture_carrier=True)
        for item in items
    ]


def _subtree_chunk(task: tuple[list[int], int | None]) -> list[TCNode]:
    """Phase B task: build the enumeration subtrees of one chunk of roots."""
    roots, max_length = task
    members = set(roots)
    reuse = {
        pattern: decomposition
        for pattern, decomposition in _WORKER_STATE["reuse"].items()
        if pattern[0] in members
    }
    return build_subtree_chunk(
        _WORKER_STATE["network"],
        _WORKER_STATE["layer1"],
        roots,
        max_length=max_length,
        reuse=reuse,
        carrier_cache=_WORKER_CARRIERS,
    )


def build_subtree_chunk(
    network: DatabaseNetwork,
    layer1: dict[int, TrussDecomposition],
    roots: list[int],
    max_length: int | None = None,
    reuse: dict[Pattern, TrussDecomposition] | None = None,
    carrier_cache: dict[int, GraphLike] | None = None,
) -> list[TCNode]:
    """Build the enumeration subtree rooted at each item of ``roots``.

    ``layer1`` maps every item with a non-empty decomposition to it; the
    subtree of root ``i`` pairs against the layer-1 siblings ``j > i``, so
    a synthetic root holding *all* layer-1 nodes drives the shared
    :func:`~repro.index.tctree._expand_frontier` loop. Sibling carriers
    start unmaterialized and are rebuilt lazily (and memoized) by that
    loop; ``carrier_cache`` optionally persists them across chunk calls in
    one worker process.

    Returns the layer-1 :class:`TCNode` of each root (in ascending item
    order) with its completed subtree attached.
    """
    items = sorted(layer1)
    root = TCNode(None, EMPTY_PATTERN, None)
    nodes: dict[int, TCNode] = {}
    for item in items:
        node = TCNode(item, (item,), layer1[item])
        root.add_child(node)
        nodes[item] = node
    truss_graphs: dict[int, GraphLike] = {}
    if carrier_cache:
        for item, carrier in carrier_cache.items():
            if item in nodes:
                truss_graphs[id(nodes[item])] = carrier
    parent_of: dict[int, TCNode] = {}
    built: list[TCNode] = []
    for item in sorted(roots):
        node = nodes[item]
        parent_of[id(node)] = root
        if id(node) not in truss_graphs:
            truss_graphs[id(node)] = _carrier_of(node.decomposition)
        if carrier_cache is not None:
            # Persist before the frontier loop releases it: a later chunk
            # in this process may pair an earlier root against this item.
            carrier_cache[item] = truss_graphs[id(node)]
        queue: deque[TCNode] = deque([node])
        _expand_frontier(
            network, queue, truss_graphs, parent_of,
            max_length=max_length, reuse=reuse,
        )
        built.append(node)
    if carrier_cache is not None:
        for item, node in nodes.items():
            carrier = truss_graphs.get(id(node))
            if carrier is not None:
                carrier_cache[item] = carrier
    return built


# ---------------------------------------------------------------------------
# the orchestrator
# ---------------------------------------------------------------------------


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork: workers inherit the parent's state copy-on-write (no
    network pickling, shared warm caches) and start in milliseconds;
    other platforms fall back to their default context."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class _worker_pool:
    """A ProcessPoolExecutor whose workers see ``state`` as
    :data:`_WORKER_STATE` — inherited through fork when possible, shipped
    through the pool initializer otherwise.

    On the fork path the parent's own global is published *before* the
    executor is constructed — the stdlib makes no contract about whether
    fork workers launch at construction or at first submit, and either
    way they must inherit the state — and restored on exit. A module
    lock is held for the pool's whole lifetime so concurrent builds from
    different threads cannot clobber each other's published state.
    """

    def __init__(
        self,
        ctx: multiprocessing.context.BaseContext,
        workers: int,
        state: dict,
    ) -> None:
        self._fork = ctx.get_start_method() == "fork"
        if self._fork:
            global _WORKER_STATE
            _STATE_LOCK.acquire()
            _WORKER_STATE = state
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=workers, mp_context=ctx
                )
            except BaseException:
                _WORKER_STATE = {}
                _STATE_LOCK.release()
                raise
        else:
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(
                    pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL),
                ),
            )

    def __enter__(self) -> ProcessPoolExecutor:
        return self._pool

    def __exit__(self, *exc_info) -> None:
        try:
            self._pool.shutdown()
        finally:
            if self._fork:
                global _WORKER_STATE
                _WORKER_STATE = {}
                _STATE_LOCK.release()


def _warm_shared_caches(network: DatabaseNetwork, items: list[int]) -> None:
    """Build the caches forked workers should inherit instead of redoing.

    The network CSR is always warmed. Its triangle index is warmed only
    when some item's support covers most vertices — the regime where
    layer-1 decompositions run over the network CSR itself (the shared
    :func:`covers_most_vertices` predicate is exactly the one
    ``_restrict_for_decomposition`` applies) and every worker would
    otherwise re-enumerate the same triangles.
    """
    csr = network.csr_graph()
    if csr is None or csr.num_edges < CSR_MIN_EDGES:
        return
    for item in items:
        if covers_most_vertices(
            len(network.vertices_containing_item(item)), csr.num_vertices
        ):
            triangle_index(csr)
            return


def build_tc_tree_process(
    network: DatabaseNetwork,
    max_length: int | None = None,
    workers: int = 2,
    reuse: dict[Pattern, TrussDecomposition] | None = None,
) -> TCTree:
    """Build the TC-Tree with a process pool (two fan-out phases).

    Produces a tree identical to the serial
    :func:`~repro.index.tctree.build_tc_tree` (the parity suite asserts
    patterns, levels, thresholds, and frequencies all match). Reused
    decompositions for layer-1 patterns keep object identity; deeper
    reused decompositions cross a process boundary and come back as equal
    copies.
    """
    items = network.item_universe()
    reuse = reuse or {}
    if workers <= 1 or len(items) < 2:
        return build_tc_tree(
            network, max_length=max_length, workers=1, reuse=reuse,
            backend="serial",
        )

    ctx = _pool_context()
    if ctx.get_start_method() == "fork":
        _warm_shared_caches(network, items)

    # ----------------------------------------------------------- phase A
    layer1: dict[int, TrussDecomposition] = {
        item: reuse[(item,)] for item in items if (item,) in reuse
    }
    todo = [item for item in items if item not in layer1]
    if todo:
        chunks = adaptive_chunks(todo, _layer1_costs(network, todo), workers)
        with _worker_pool(
            ctx, min(workers, len(chunks)), {"network": network}
        ) as pool:
            for chunk, decompositions in zip(
                chunks, pool.map(_layer1_chunk, chunks)
            ):
                for item, decomposition in zip(chunk, decompositions):
                    layer1[item] = decomposition
    layer1 = {
        item: decomposition
        for item, decomposition in layer1.items()
        if not decomposition.is_empty()
    }

    root = TCNode(None, EMPTY_PATTERN, None)
    nodes: dict[int, TCNode] = {}
    for item in sorted(layer1):
        node = TCNode(item, (item,), layer1[item])
        root.add_child(node)
        nodes[item] = node

    # ----------------------------------------------------------- phase B
    # A single surviving layer-1 item has no pairing siblings, so its
    # subtree is itself — nothing to fan out.
    if len(layer1) >= 2 and (max_length is None or max_length > 1):
        costs = {
            item: float(decomposition.num_edges)
            for item, decomposition in layer1.items()
        }
        chunks = adaptive_chunks(sorted(layer1), costs, workers)
        deep_reuse = {
            pattern: decomposition
            for pattern, decomposition in reuse.items()
            if len(pattern) >= 2
        }
        state = {"network": network, "layer1": layer1, "reuse": deep_reuse}
        tasks = [(chunk, max_length) for chunk in chunks]
        with _worker_pool(ctx, min(workers, len(chunks)), state) as pool:
            for built in pool.map(_subtree_chunk, tasks):
                for subtree_root in built:
                    # Graft the worker-built subtree onto the parent-side
                    # layer-1 node (which holds the original decomposition
                    # object — reuse identity is preserved at layer 1).
                    nodes[subtree_root.item].children = subtree_root.children

    # The serial build consumes every captured carrier while expanding;
    # here the workers consumed their (copy-on-write / shipped) copies, so
    # drop the parent-side ones for the same steady-state memory: the sum
    # of the L_p lists, as in the paper.
    for decomposition in layer1.values():
        decomposition.carrier0 = None

    return TCTree(root, num_items=len(items))


__all__ = [
    "adaptive_chunks",
    "build_subtree_chunk",
    "build_tc_tree_process",
    "CHUNKS_PER_WORKER",
]
