"""Process-parallel TC-Tree construction.

The paper parallelizes the first TC-Tree layer because layer-1
decompositions are independent; beyond layer 1, each enumeration subtree
rooted at a layer-1 node is *also* independent — by Proposition 5.3 every
descendant pattern ``{s_i, ...}`` is mined inside intersections of the
layer-1 carriers ``C*_{s_j}(0)`` with ``s_j ⪰ s_i``, which are shared
read-only inputs. Threads cannot exploit either property on a pure-Python
peeling engine (the GIL serializes the hot loops), so this module fans
both phases across a :class:`~concurrent.futures.ProcessPoolExecutor`:

Phase A
    Layer-1 items are grouped into cost-balanced chunks and each worker
    decomposes its chunk against the network shipped once per worker via
    the pool initializer.
Phase B
    Each layer-1 item owns the enumeration subtree of all patterns whose
    smallest item it is. Workers receive the full layer-1 decomposition
    map once (second pool initializer) and build whole subtrees, returning
    finished :class:`~repro.index.tcnode.TCNode` trees.

The exchange format is deliberately compact: ``CSRGraph`` pickles as its
flat arrays only (label index and cached triangle index are rebuilt or
dropped), and ``TrussDecomposition.__getstate__`` flattens a live CSR
``carrier0`` into its canonical edge list, so workers ship levels +
frequencies + flat edge lists rather than live CSR objects. With carrier
sharing on (the default where :mod:`multiprocessing.shared_memory`
exists), the layer-1 carriers skip pickling entirely: phase-A workers
write their chunk's ``C*_s(0)`` CSR arrays into one shared segment and
return only a handle, and phase-B workers attach zero-copy
(:mod:`repro.index.shm`) — cutting the phase-A result-pickling term the
parallel benchmark tracks.

On fork platforms the *inbound* half of the protocol is free: worker
state (network, layer-1 map, reuse table) is published in module globals
immediately before the pool forks, so children inherit it copy-on-write —
including the network CSR and its triangle index, which the parent warms
once so no worker re-enumerates triangles. Spawn platforms fall back to
shipping the same state through the pool initializer.

Chunking is adaptive: per-item cost is estimated from ``C*_s(0)`` edge
counts (degree mass before layer 1 exists), and items are packed
largest-first onto the least-loaded chunk, so one hub item lands alone in
its own chunk instead of serializing the pool behind a uniform split.

The serial path in :func:`repro.index.tctree.build_tc_tree` is preserved
bit-for-bit and acts as the parity oracle for this module's tests.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import uuid
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from heapq import heapify, heappop, heappush

from repro._ordering import EMPTY_PATTERN, Pattern
from repro.engine.registry import get_model
from repro.errors import TCIndexError
from repro.graphs.csr import CSRGraph, GraphLike
from repro.index.decomposition import (
    TrussDecomposition,
    decompose_network_pattern,
    warm_network_triangles,
)
from repro.index.shm import (
    HAS_SHARED_MEMORY,
    SharedCarrierStore,
    unlink_handle,
)
from repro.index.tcnode import TCNode
from repro.index.tctree import TCTree, _carrier_of, _expand_frontier
from repro.network.dbnetwork import DatabaseNetwork
from repro.obs.metrics import MetricsSnapshot, default_registry
from repro.obs.trace import span

#: Chunks per worker: oversubscription lets the pool rebalance when cost
#: estimates are off, at the price of a little extra task overhead.
CHUNKS_PER_WORKER = 4


# The orchestrator and the worker task functions are model-agnostic —
# everything tree-model-specific (how to decompose a pattern, which
# node/tree classes to build, how to estimate layer-1 costs, what to
# pre-warm before forking) resolves through repro.engine.registry. The
# registry resolves model factories lazily, which preserves the import
# discipline the old local dict encoded by hand: repro.edgenet.index
# itself calls into this module, so the edge spec must not be imported
# until a build actually asks for it.

# ---------------------------------------------------------------------------
# adaptive chunking
# ---------------------------------------------------------------------------


def adaptive_chunks(
    items: list[int],
    costs: dict[int, float],
    workers: int,
    chunks_per_worker: int = CHUNKS_PER_WORKER,
) -> list[list[int]]:
    """Pack ``items`` into at most ``workers * chunks_per_worker`` chunks.

    Greedy LPT scheduling: items are placed heaviest-first onto the
    currently lightest chunk, so a hub item (one huge ``C*_s(0)``) fills a
    chunk by itself and the remaining items spread over the rest of the
    pool instead of queuing behind it. Every item appears in exactly one
    chunk; chunks are returned and internally sorted in ascending item
    order (deterministic, and matching the serial enumeration order).
    """
    if not items:
        return []
    n_chunks = max(1, min(len(items), workers * chunks_per_worker))
    # Heaviest first; ties broken by item id for determinism.
    order = sorted(items, key=lambda i: (-costs.get(i, 0.0), i))
    heap: list[tuple[float, int]] = [(0.0, k) for k in range(n_chunks)]
    heapify(heap)
    bins: list[list[int]] = [[] for _ in range(n_chunks)]
    for item in order:
        load, k = heappop(heap)
        bins[k].append(item)
        heappush(heap, (load + max(costs.get(item, 0.0), 1.0), k))
    chunks = [sorted(b) for b in bins if b]
    chunks.sort(key=lambda c: c[0])
    return chunks


def _layer1_costs(network: DatabaseNetwork, items: list[int]) -> dict[int, float]:
    """Pre-layer-1 cost proxy: degree mass of the item's supporting vertices.

    ``C*_s(0)`` is unknown before phase A runs, but it lives inside the
    subgraph induced by the vertices whose databases mention ``s`` — the
    sum of their degrees bounds that subgraph's edge count.
    """
    degree = network.graph.degree
    costs: dict[int, float] = {}
    for item in items:
        costs[item] = float(
            sum(degree(v) for v in network.vertices_containing_item(item))
        )
    return costs


# ---------------------------------------------------------------------------
# worker-side state and task functions
# ---------------------------------------------------------------------------

#: Worker state: {"network": ..., "layer1": ..., "reuse": ...}. On fork
#: platforms the parent publishes it here right before creating the pool
#: (children inherit it copy-on-write, caches included); on spawn
#: platforms :func:`_init_worker` fills it from the pickled initializer
#: payload.
_WORKER_STATE: dict = {}  # guarded-by: _STATE_LOCK
#: Per-process memo of materialized layer-1 carriers (item -> C*_s(0));
#: shared across the subtree chunks a worker executes so each sibling
#: carrier is built at most once per process.
_WORKER_CARRIERS: dict[int, GraphLike] = {}
#: Shared-memory stores this worker has attached (phase B). Held so the
#: mappings outlive the graphs built from them; reset per pool.
_WORKER_SHM: list[SharedCarrierStore] = []
#: Serializes fork-path pools across threads: :data:`_WORKER_STATE` is a
#: module global, so two concurrent builds in one parent process would
#: otherwise clobber each other's state between publish and fork.
_STATE_LOCK = threading.Lock()


def _init_worker(payload: bytes) -> None:
    global _WORKER_STATE
    # Worker process: the state dict is process-private here, the
    # parent-side lock does not apply.
    # repro-lint: disable=lock-discipline
    _WORKER_STATE = pickle.loads(payload)
    _WORKER_CARRIERS.clear()
    _WORKER_SHM.clear()


def _metrics_before() -> MetricsSnapshot:
    """Snapshot the worker's registry at task entry.

    Fork workers inherit the parent's counter values copy-on-write (and
    one worker runs many chunks), so a task's own contribution is the
    *delta* between its entry and exit snapshots — absolute snapshots
    would double-count everything inherited or accumulated by earlier
    chunks when the orchestrator merges task results.
    """
    return default_registry().snapshot()


def _metrics_delta(before: MetricsSnapshot) -> MetricsSnapshot:
    return default_registry().snapshot().delta(before)


def _layer1_chunk(
    task: tuple[list[int], str | None],
) -> tuple[list[TrussDecomposition], dict | None, MetricsSnapshot]:
    """Phase A task: decompose one chunk of single-item patterns.

    With carrier sharing on, the chunk's captured ``C*_s(0)`` CSR
    carriers are written to one shared-memory segment (under the
    orchestrator-chosen ``segment_name``, so the orchestrator can clean
    up even when the pool aborts before this task's result is consumed)
    and the task returns ``(decompositions, handle, metrics delta)`` —
    the decompositions travel back through the result pipe *without*
    their carrier edge lists, which is the result-pickling term
    ``bench_parallel_build.py`` tracks. The orchestrator owns the
    segment's unlink and folds the metrics delta into its own registry.
    """
    items, segment_name = task
    before = _metrics_before()
    network = _WORKER_STATE["network"]  # repro-lint: disable=lock-discipline
    decompose = get_model(
        _WORKER_STATE.get("model", "vertex")  # repro-lint: disable=lock-discipline
    ).decompose
    decompositions = [
        decompose(network, (item,), capture_carrier=True)
        for item in items
    ]
    handle = None
    if segment_name is not None:
        carriers: dict[int, CSRGraph] = {}
        for item, decomposition in zip(items, decompositions):
            carrier = decomposition.take_carrier()
            if not isinstance(carrier, CSRGraph) or not carrier.num_edges:
                continue
            labels = carrier.labels
            if labels[0] < -(2 ** 63) or labels[-1] >= 2 ** 63:
                # Labels outside int64 cannot ride the flat segment —
                # hand the carrier back so it ships over the PR 2
                # pickled-edge-list protocol instead.
                decomposition.carrier0 = carrier
                continue
            carriers[item] = carrier
        if carriers:
            store = SharedCarrierStore.create(carriers, name=segment_name)
            handle = store.handle()
            store.close()
    return decompositions, handle, _metrics_delta(before)


def _attach_shared_carriers() -> None:
    """Attach every phase-A segment once per worker process and seed the
    carrier memo with zero-copy graphs."""
    handles = _WORKER_STATE.get(  # repro-lint: disable=lock-discipline
        "carrier_handles"
    )
    if not handles or _WORKER_SHM:
        return
    for handle in handles:
        store = SharedCarrierStore.attach(handle)
        _WORKER_SHM.append(store)
        for key in store.keys():
            _WORKER_CARRIERS.setdefault(key, store.graph(key))


def _release_chunk_caches() -> None:
    """Per-chunk teardown of derived state pinned by the carrier memo.

    Expanding a chunk builds (or derives) triangle indexes on the memoized
    carriers and leaves projection back-references to the decomposition
    graphs they were filtered from — state that would otherwise accumulate
    in the worker across every chunk it executes. Dropping it caps worker
    memory at one chunk's working set; the fork-inherited *network* index
    lives on `_WORKER_STATE["network"]`'s CSR (copy-on-write, shared) and
    is deliberately untouched.
    """
    for carrier in _WORKER_CARRIERS.values():
        if isinstance(carrier, CSRGraph):
            carrier._tri = None
            carrier.release_projection()


def _subtree_chunk(
    task: tuple[list[int], int | None],
) -> tuple[list[TCNode], MetricsSnapshot]:
    """Phase B task: build the enumeration subtrees of one chunk of roots."""
    roots, max_length = task
    before = _metrics_before()
    _attach_shared_carriers()
    members = set(roots)
    reuse = {
        pattern: decomposition
        # repro-lint: disable=lock-discipline
        for pattern, decomposition in _WORKER_STATE["reuse"].items()
        if pattern[0] in members
    }
    spec = get_model(
        _WORKER_STATE.get("model", "vertex")  # repro-lint: disable=lock-discipline
    )
    try:
        built = build_subtree_chunk(
            _WORKER_STATE["network"],  # repro-lint: disable=lock-discipline
            _WORKER_STATE["layer1"],  # repro-lint: disable=lock-discipline
            roots,
            max_length=max_length,
            reuse=reuse,
            carrier_cache=_WORKER_CARRIERS,
            decompose=spec.decompose,
            node_factory=spec.node_cls,
        )
        return built, _metrics_delta(before)
    finally:
        _release_chunk_caches()


def build_subtree_chunk(
    network: DatabaseNetwork,
    layer1: dict[int, TrussDecomposition],
    roots: list[int],
    max_length: int | None = None,
    reuse: dict[Pattern, TrussDecomposition] | None = None,
    carrier_cache: dict[int, GraphLike] | None = None,
    decompose=decompose_network_pattern,
    node_factory=TCNode,
) -> list[TCNode]:
    """Build the enumeration subtree rooted at each item of ``roots``.

    ``layer1`` maps every item with a non-empty decomposition to it; the
    subtree of root ``i`` pairs against the layer-1 siblings ``j > i``, so
    a synthetic root holding *all* layer-1 nodes drives the shared
    :func:`~repro.index.tctree._expand_frontier` loop. Sibling carriers
    start unmaterialized and are rebuilt lazily (and memoized) by that
    loop; ``carrier_cache`` optionally persists them across chunk calls in
    one worker process.

    Returns the layer-1 :class:`TCNode` of each root (in ascending item
    order) with its completed subtree attached.
    """
    items = sorted(layer1)
    root = node_factory(None, EMPTY_PATTERN, None)
    nodes: dict[int, TCNode] = {}
    for item in items:
        node = node_factory(item, (item,), layer1[item])
        root.add_child(node)
        nodes[item] = node
    truss_graphs: dict[int, GraphLike] = {}
    if carrier_cache:
        for item, carrier in carrier_cache.items():
            if item in nodes:
                truss_graphs[id(nodes[item])] = carrier
    parent_of: dict[int, TCNode] = {}
    built: list[TCNode] = []
    for item in sorted(roots):
        node = nodes[item]
        parent_of[id(node)] = root
        if id(node) not in truss_graphs:
            truss_graphs[id(node)] = _carrier_of(node.decomposition)
        if carrier_cache is not None:
            # Persist before the frontier loop releases it: a later chunk
            # in this process may pair an earlier root against this item.
            carrier_cache[item] = truss_graphs[id(node)]
        queue: deque[TCNode] = deque([node])
        _expand_frontier(
            network, queue, truss_graphs, parent_of,
            max_length=max_length, reuse=reuse,
            decompose=decompose, node_factory=node_factory,
        )
        built.append(node)
    if carrier_cache is not None:
        for item, node in nodes.items():
            carrier = truss_graphs.get(id(node))
            if carrier is not None:
                carrier_cache[item] = carrier
    return built


# ---------------------------------------------------------------------------
# the orchestrator
# ---------------------------------------------------------------------------


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork: workers inherit the parent's state copy-on-write (no
    network pickling, shared warm caches) and start in milliseconds;
    other platforms fall back to their default context."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class _worker_pool:
    """A ProcessPoolExecutor whose workers see ``state`` as
    :data:`_WORKER_STATE` — inherited through fork when possible, shipped
    through the pool initializer otherwise.

    On the fork path the parent's own global is published *before* the
    executor is constructed — the stdlib makes no contract about whether
    fork workers launch at construction or at first submit, and either
    way they must inherit the state — and restored on exit. A module
    lock is held for the pool's whole lifetime so concurrent builds from
    different threads cannot clobber each other's published state.
    """

    def __init__(
        self,
        ctx: multiprocessing.context.BaseContext,
        workers: int,
        state: dict,
    ) -> None:
        self._fork = ctx.get_start_method() == "fork"
        if self._fork:
            global _WORKER_STATE
            # Manual acquire: the lock spans the pool's lifetime
            # (released in __exit__), not a lexical with-block.
            _STATE_LOCK.acquire()
            _WORKER_STATE = state  # repro-lint: disable=lock-discipline
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=workers, mp_context=ctx
                )
            except BaseException:
                _WORKER_STATE = {}  # repro-lint: disable=lock-discipline
                _STATE_LOCK.release()
                raise
        else:
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(
                    pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL),
                ),
            )

    def __enter__(self) -> ProcessPoolExecutor:
        return self._pool

    def __exit__(self, *exc_info) -> None:
        try:
            self._pool.shutdown()
        finally:
            if self._fork:
                global _WORKER_STATE
                # Held since __init__ (manual acquire/release pair).
                _WORKER_STATE = {}  # repro-lint: disable=lock-discipline
                _STATE_LOCK.release()


def _warm_shared_caches(network: DatabaseNetwork, items: list[int]) -> None:
    """Build the caches forked workers should inherit instead of redoing.

    The network CSR is always warmed (the ``csr_graph()`` call caches
    it); its triangle index is warmed by the shared
    :func:`~repro.index.decomposition.warm_network_triangles` predicate —
    with projection on, any layer-1 theme subgraph that projects off the
    network CSR derives its index from the inherited one, so no worker
    re-enumerates the same triangles.
    """
    network.csr_graph()
    warm_network_triangles(network, items)


def build_tc_tree_process(
    network: DatabaseNetwork,
    max_length: int | None = None,
    workers: int = 2,
    reuse: dict[Pattern, TrussDecomposition] | None = None,
    share_carriers: bool | None = None,
    model: str = "vertex",
) -> TCTree:
    """Build the TC-Tree with a process pool (two fan-out phases).

    Produces a tree identical to the serial
    :func:`~repro.index.tctree.build_tc_tree` (the parity suite asserts
    patterns, levels, thresholds, and frequencies all match). Reused
    decompositions for layer-1 patterns keep object identity; deeper
    reused decompositions cross a process boundary and come back as equal
    copies.

    ``share_carriers`` (default: on wherever
    :mod:`multiprocessing.shared_memory` exists) exchanges the layer-1
    ``C*_s(0)`` carriers through shared-memory segments instead of
    pickled edge lists: phase-A workers export their chunk's carriers and
    return a handle, phase-B workers attach and wrap the flat arrays
    zero-copy. The orchestrator unlinks every segment when the build
    finishes, success or not.

    ``model`` names a registered tree model: ``"vertex"`` (the default —
    vertex database networks, :class:`TCTree`) or ``"edge"`` (edge
    database networks, :class:`~repro.edgenet.index.EdgeTCTree`). Both
    ride the same chunking, pool, carrier-memo, and shared-memory
    machinery; the decompose call and node/tree classes resolve through
    :func:`repro.engine.registry.get_model`.
    """
    spec = get_model(model)
    if not spec.is_tree_model:
        raise TCIndexError(
            f"model {model!r} is not a tree model; "
            "it cannot drive a TC-Tree build"
        )
    items = network.item_universe()
    reuse = reuse or {}
    # POSIX-only default: on Windows a named segment is destroyed when
    # its last open handle closes, and the phase-A creator closes its
    # handle before phase B attaches.
    shm_usable = HAS_SHARED_MEMORY and os.name == "posix"
    if share_carriers is None:
        share_carriers = shm_usable
    else:
        share_carriers = bool(share_carriers) and shm_usable
    if workers <= 1 or len(items) < 2:
        return spec.serial_build(network, max_length, reuse)

    ctx = _pool_context()
    if ctx.get_start_method() == "fork":
        with span("build.warm_triangles", items=len(items)):
            spec.warm(network, items)
    if share_carriers:
        # Start the resource tracker in the parent *before* the pool
        # forks: workers then inherit it and their segment registrations
        # land in the same tracker the parent's unlinks unregister from —
        # otherwise every worker spawns its own tracker, which warns
        # about "leaked" (already-unlinked) segments at shutdown.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker is best-effort
            pass

    carrier_handles: list[dict] = []
    segment_names: list[str] = []
    try:
        # ------------------------------------------------------- phase A
        layer1: dict[int, TrussDecomposition] = {
            item: reuse[(item,)] for item in items if (item,) in reuse
        }
        todo = [item for item in items if item not in layer1]
        if todo:
            chunks = adaptive_chunks(
                todo, spec.layer1_costs(network, todo), workers
            )
            # Exporting carriers only pays off when phase B will attach
            # them — with max_length=1 there are no children to build.
            if share_carriers and (max_length is None or max_length > 1):
                # Orchestrator-assigned names: cleanup below can unlink
                # every *possible* segment even when the pool aborts
                # before a creating task reports back.
                token = uuid.uuid4().hex[:12]
                segment_names = [
                    f"rp{token}a{k}" for k in range(len(chunks))
                ]
                tasks = list(zip(chunks, segment_names))
            else:
                tasks = [(chunk, None) for chunk in chunks]
            state = {"network": network, "model": model}
            with span(
                "build.phaseA", chunks=len(chunks), items=len(todo)
            ), _worker_pool(
                ctx, min(workers, len(chunks)), state
            ) as pool:
                for chunk, (decompositions, handle, delta) in zip(
                    chunks, pool.map(_layer1_chunk, tasks)
                ):
                    if handle is not None:
                        carrier_handles.append(handle)
                    default_registry().merge(delta)
                    for item, decomposition in zip(chunk, decompositions):
                        layer1[item] = decomposition
        layer1 = {
            item: decomposition
            for item, decomposition in layer1.items()
            if not decomposition.is_empty()
        }

        node_cls = spec.node_cls
        root = node_cls(None, EMPTY_PATTERN, None)
        nodes: dict[int, TCNode] = {}
        for item in sorted(layer1):
            node = node_cls(item, (item,), layer1[item])
            root.add_child(node)
            nodes[item] = node

        # ------------------------------------------------------- phase B
        # A single surviving layer-1 item has no pairing siblings, so its
        # subtree is itself — nothing to fan out.
        if len(layer1) >= 2 and (max_length is None or max_length > 1):
            costs = {
                item: float(decomposition.num_edges)
                for item, decomposition in layer1.items()
            }
            chunks = adaptive_chunks(sorted(layer1), costs, workers)
            deep_reuse = {
                pattern: decomposition
                for pattern, decomposition in reuse.items()
                if len(pattern) >= 2
            }
            state = {
                "network": network,
                "layer1": layer1,
                "reuse": deep_reuse,
                "carrier_handles": carrier_handles,
                "model": model,
            }
            tasks = [(chunk, max_length) for chunk in chunks]
            with span(
                "build.phaseB", chunks=len(chunks), roots=len(layer1)
            ), _worker_pool(
                ctx, min(workers, len(chunks)), state
            ) as pool:
                for built, delta in pool.map(_subtree_chunk, tasks):
                    default_registry().merge(delta)
                    for subtree_root in built:
                        # Graft the worker-built subtree onto the
                        # parent-side layer-1 node (which holds the
                        # original decomposition object — reuse identity
                        # is preserved at layer 1).
                        nodes[subtree_root.item].children = (
                            subtree_root.children
                        )
    finally:
        # Every candidate name, not just reported handles — a pool abort
        # can leave segments whose creating task never returned.
        for name in segment_names:
            unlink_handle({"name": name})

    # The serial build consumes every captured carrier while expanding;
    # here the workers consumed their (copy-on-write / shipped / shared)
    # copies, so drop the parent-side ones for the same steady-state
    # memory: the sum of the L_p lists, as in the paper.
    for decomposition in layer1.values():
        decomposition.carrier0 = None

    return spec.make_tree(root, len(items))


__all__ = [
    "adaptive_chunks",
    "build_subtree_chunk",
    "build_tc_tree_process",
    "CHUNKS_PER_WORKER",
]
