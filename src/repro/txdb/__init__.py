"""Transaction-database substrate.

Every vertex of a database network carries a transaction database — a
multiset of itemsets (Section 3.1). This package provides that container
with a vertical (item → transaction-id set) index so pattern frequencies
``f_i(p)`` are set intersections, plus per-database pattern enumeration used
by the TCS baseline's pre-filter.
"""

from repro.txdb.database import TransactionDatabase
from repro.txdb.enumerate import enumerate_frequent_patterns

__all__ = ["TransactionDatabase", "enumerate_frequent_patterns"]
