"""Per-database frequent-pattern enumeration.

The TCS baseline (Section 4.2) pre-filters candidate patterns: a pattern
survives when its frequency exceeds ``ε`` in at least one vertex database.
This module enumerates all patterns with frequency > ε in a single database
by depth-first extension over the vertical index, which is exactly Eclat-
style tid-set intersection.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro._ordering import Pattern
from repro.errors import MiningError
from repro.txdb.database import TransactionDatabase


def enumerate_frequent_patterns(
    database: TransactionDatabase,
    epsilon: float,
    max_length: int | None = None,
) -> Iterator[Pattern]:
    """Yield every pattern ``p`` with ``frequency(p) > epsilon``.

    ``epsilon`` is a strict lower bound, matching the paper's
    ``f_i(p) > ε`` candidate condition. ``max_length`` optionally caps the
    pattern length (useful to bound the exponential enumeration on dense
    databases).

    Patterns are yielded in canonical order within each DFS branch; the
    caller typically accumulates them into a set across vertices.
    """
    if epsilon < 0.0:
        raise MiningError(f"epsilon must be >= 0, got {epsilon}")
    total = database.num_transactions
    if total == 0:
        return
    min_count = epsilon * total  # strict: need support_count > min_count

    # Vertical representation of frequent single items, canonical item order.
    item_tids = [
        (item, database.support_set((item,)))
        for item in sorted(database.items())
    ]
    item_tids = [(i, t) for i, t in item_tids if len(t) > min_count]

    def extend(prefix: Pattern, prefix_tids: set[int], start: int) -> Iterator[Pattern]:
        for pos in range(start, len(item_tids)):
            item, tids = item_tids[pos]
            new_tids = prefix_tids & tids if prefix else tids
            if len(new_tids) <= min_count:
                continue
            pattern = prefix + (item,)
            yield pattern
            if max_length is None or len(pattern) < max_length:
                yield from extend(pattern, new_tids, pos + 1)

    yield from extend((), set(), 0)
