"""The transaction database attached to a vertex.

Frequencies are the workhorse of the whole system: every edge-cohesion
computation asks for ``f_i(p)`` for some vertex *i* and pattern *p*. The
database therefore keeps a vertical index (item → set of transaction ids)
and memoizes pattern frequencies. A pattern's tid-set is the intersection
of its items' tid-sets, intersected smallest-first.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro._ordering import Pattern, make_pattern
from repro.errors import DatabaseError


class TransactionDatabase:
    """A multiset of transactions over integer item ids.

    Transactions are stored as frozensets; duplicates are allowed and
    counted separately (the paper's databases are multisets — a user may
    check in to the same set of places on many days).
    """

    __slots__ = ("_transactions", "_tids", "_freq_cache", "_next_tid")

    def __init__(self, transactions: Iterable[Iterable[int]] = ()) -> None:
        # Keyed by tid so ids stay stable across removals (the live-index
        # tier deletes and replaces transactions by tid). Insertion order
        # is tid order, so iteration stays deterministic.
        self._transactions: dict[int, frozenset[int]] = {}
        self._tids: dict[int, set[int]] = {}
        self._freq_cache: dict[Pattern, float] = {}
        self._next_tid = 0
        for t in transactions:
            self.add_transaction(t)

    # ------------------------------------------------------------------
    # construction and mutation
    # ------------------------------------------------------------------
    def add_transaction(self, items: Iterable[int]) -> int:
        """Append one transaction (empty transactions are rejected) and
        return its tid. Tids are never recycled, even after removals."""
        transaction = frozenset(items)
        if not transaction:
            raise DatabaseError("empty transactions are not allowed")
        tid = self._next_tid
        self._next_tid = tid + 1
        self._transactions[tid] = transaction
        for item in transaction:
            self._tids.setdefault(item, set()).add(tid)
        self._freq_cache.clear()
        return tid

    def remove_transaction(self, tid: int) -> frozenset[int]:
        """Delete one transaction by tid and return its items."""
        transaction = self._transactions.pop(tid, None)
        if transaction is None:
            raise DatabaseError(f"unknown transaction id {tid!r}")
        for item in transaction:
            tids = self._tids[item]
            tids.discard(tid)
            if not tids:
                del self._tids[item]
        self._freq_cache.clear()
        return transaction

    def replace_transaction(self, tid: int, items: Iterable[int]) -> None:
        """Overwrite the transaction stored under ``tid`` in place."""
        transaction = frozenset(items)
        if not transaction:
            raise DatabaseError("empty transactions are not allowed")
        if tid not in self._transactions:
            raise DatabaseError(f"unknown transaction id {tid!r}")
        self.remove_transaction(tid)
        self._transactions[tid] = transaction
        for item in transaction:
            self._tids.setdefault(item, set()).add(tid)
        self._freq_cache.clear()

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[frozenset[int]]:
        return iter(self._transactions.values())

    def __bool__(self) -> bool:
        return bool(self._transactions)

    @property
    def num_transactions(self) -> int:
        return len(self._transactions)

    @property
    def total_items(self) -> int:
        """Total item occurrences over all transactions (Table 2 statistic)."""
        return sum(len(t) for t in self._transactions.values())

    def items(self) -> set[int]:
        """The distinct items appearing in this database."""
        return set(self._tids)

    def contains_item(self, item: int) -> bool:
        return item in self._tids

    def transactions(self) -> list[frozenset[int]]:
        return list(self._transactions.values())

    def transaction(self, tid: int) -> frozenset[int]:
        """The transaction stored under ``tid``."""
        try:
            return self._transactions[tid]
        except KeyError:
            raise DatabaseError(f"unknown transaction id {tid!r}") from None

    def tids(self) -> set[int]:
        """The live transaction ids."""
        return set(self._transactions)

    @property
    def next_tid(self) -> int:
        """The tid the next :meth:`add_transaction` will assign."""
        return self._next_tid

    # ------------------------------------------------------------------
    # frequencies
    # ------------------------------------------------------------------
    def support_set(self, pattern: Pattern) -> set[int]:
        """Transaction ids containing every item of ``pattern``.

        The empty pattern is contained in every transaction.
        """
        if not pattern:
            return set(self._transactions)
        tid_sets = []
        for item in pattern:
            tids = self._tids.get(item)
            if not tids:
                return set()
            tid_sets.append(tids)
        tid_sets.sort(key=len)
        result = set(tid_sets[0])
        for tids in tid_sets[1:]:
            result &= tids
            if not result:
                break
        return result

    def support_count(self, pattern: Iterable[int]) -> int:
        """Number of transactions containing ``pattern``."""
        return len(self.support_set(make_pattern(pattern)))

    def frequency(self, pattern: Iterable[int]) -> float:
        """``f_i(p)``: the fraction of transactions containing ``pattern``.

        Returns 0.0 for an empty database. Memoized — the mining algorithms
        re-ask for the same (vertex, pattern) pair many times while peeling.
        """
        if not self._transactions:
            return 0.0
        canonical = make_pattern(pattern)
        cached = self._freq_cache.get(canonical)
        if cached is None:
            cached = len(self.support_set(canonical)) / len(self._transactions)
            self._freq_cache[canonical] = cached
        return cached

    def item_frequency(self, item: int) -> float:
        """Fast path for single-item frequency."""
        if not self._transactions:
            return 0.0
        tids = self._tids.get(item)
        if not tids:
            return 0.0
        return len(tids) / len(self._transactions)

    def __repr__(self) -> str:
        return (
            f"TransactionDatabase(transactions={len(self._transactions)}, "
            f"items={len(self._tids)})"
        )
