"""Experiment harness reproducing the paper's evaluation (Section 7).

- :mod:`repro.bench.metrics` — wall-clock and peak-memory measurement;
- :mod:`repro.bench.runner` — one measured mining / indexing / query run;
- :mod:`repro.bench.experiments` — the per-table / per-figure drivers;
- :mod:`repro.bench.reporting` — ASCII tables and series matching the
  paper's plots.
"""

from repro.bench.metrics import MeasuredRun, measure_memory, measure_time
from repro.bench.runner import run_indexing, run_mining, run_query
from repro.bench.reporting import format_series, format_table

__all__ = [
    "MeasuredRun",
    "measure_time",
    "measure_memory",
    "run_mining",
    "run_indexing",
    "run_query",
    "format_table",
    "format_series",
]
