"""Experiment harness reproducing the paper's evaluation (Section 7).

- :mod:`repro.bench.metrics` — wall-clock and peak-memory measurement;
- :mod:`repro.bench.runner` — one measured mining / indexing / query run;
- :mod:`repro.bench.experiments` — the per-table / per-figure drivers;
- :mod:`repro.bench.reporting` — ASCII tables and series matching the
  paper's plots;
- :mod:`repro.bench.fleet` — the config-driven experiment fleet, record
  schema, ``BENCH_<area>.json`` trajectories, and the CI trend gate;
- :mod:`repro.bench.tuning` — measured sweeps and crossover fits for
  the engine cutover constants.
"""

from repro.bench.fleet import (
    env_fingerprint,
    load_fleet_config,
    run_fleet,
    summarize_records,
)
from repro.bench.metrics import MeasuredRun, measure_memory, measure_time
from repro.bench.runner import run_indexing, run_mining, run_query
from repro.bench.reporting import format_series, format_table

__all__ = [
    "MeasuredRun",
    "measure_time",
    "measure_memory",
    "run_mining",
    "run_indexing",
    "run_query",
    "format_table",
    "format_series",
    "env_fingerprint",
    "load_fleet_config",
    "run_fleet",
    "summarize_records",
]
