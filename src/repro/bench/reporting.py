"""Plain-text reporting for experiment results.

The paper presents results as tables (Tables 2-4) and log-scale line plots
(Figures 3-5). Benchmarks run headless, so we render tables as aligned
ASCII and series as one row per x-value — enough to read off orderings,
slopes, and crossovers, which is what the reproduction checks.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows of dicts as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
        for row in rows[1:]:
            for key in row:
                if key not in columns:
                    columns.append(key)
    cells = [
        [_format_value(row.get(col, "")) for col in columns] for row in rows
    ]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for line in cells:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(line, widths)))
    return "\n".join(lines)


def format_series(
    x_name: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """Render named series over shared x-values (one figure panel)."""
    rows = []
    for i, x in enumerate(x_values):
        row: dict[str, object] = {x_name: x}
        for name, values in series.items():
            row[name] = values[i] if i < len(values) else ""
        rows.append(row)
    return format_table(rows, title=title)
