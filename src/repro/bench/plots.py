"""ASCII line plots for benchmark series.

The paper's figures are log-scale line plots; benchmarks run headless, so
this renders the same series as terminal charts — enough to eyeball
slopes and crossovers next to the numeric tables in
``benchmarks/reports/``.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

_MARKERS = "ox+*#@%&"


def _log_positions(
    values: Sequence[float], cells: int, log: bool
) -> list[int | None]:
    """Map values to integer cell positions (None for non-positive on a
    log axis)."""
    finite = [
        v for v in values if v is not None and (v > 0 or not log)
    ]
    if not finite:
        return [None] * len(values)
    if log:
        low = math.log10(min(finite))
        high = math.log10(max(finite))
    else:
        low = min(finite)
        high = max(finite)
    span = high - low or 1.0

    positions: list[int | None] = []
    for v in values:
        if v is None or (log and v <= 0):
            positions.append(None)
            continue
        x = math.log10(v) if log else v
        positions.append(
            min(cells - 1, max(0, round((x - low) / span * (cells - 1))))
        )
    return positions


def ascii_plot(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    log_y: bool = True,
    title: str | None = None,
) -> str:
    """Render named y-series over shared x-values as an ASCII chart.

    ``log_y`` mirrors the paper's log-scale axes; zero/negative points are
    skipped on a log axis (the paper notes it "could not draw zero" in
    log-scale figures either).
    """
    columns = _log_positions(list(x_values), width, log=False)
    grid = [[" "] * width for _ in range(height)]

    all_y = [
        v
        for values in series.values()
        for v in values
        if v is not None and (v > 0 or not log_y)
    ]
    legend = []
    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} = {name}")
        if not all_y:
            continue
        rows = _log_positions(
            [
                v if (v is None or v > 0 or not log_y) else None
                for v in values
            ],
            height,
            log=log_y,
        )
        # Re-scale rows against the global y range, not per-series.
        if log_y:
            low = math.log10(min(all_y))
            high = math.log10(max(all_y))
        else:
            low = min(all_y)
            high = max(all_y)
        span = high - low or 1.0
        for col, v in zip(columns, values):
            if col is None or v is None or (log_y and v <= 0):
                continue
            y = math.log10(v) if log_y else v
            row = round((y - low) / span * (height - 1))
            row = min(height - 1, max(0, row))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(
        f"  x: {min(x_values)} .. {max(x_values)}   "
        f"y({'log' if log_y else 'lin'}): "
        + (f"{min(all_y):.3g} .. {max(all_y):.3g}" if all_y else "(empty)")
    )
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)
