"""Single measured runs of mining, indexing, and querying.

These wrap the library entry points with the measurements the paper's
figures report: Time Cost + NP/NV/NE for mining (Figures 3-4), indexing
time + peak memory + #nodes for Table 3, and query time + retrieved nodes
for Figure 5.
"""

from __future__ import annotations

import time
from collections.abc import Iterable

from repro.bench.metrics import MeasuredRun, measure_memory, measure_time
from repro.core.finder import ThemeCommunityFinder
from repro.index.query import query_tc_tree
from repro.index.tctree import TCTree, build_tc_tree
from repro.network.dbnetwork import DatabaseNetwork


def run_mining(
    network: DatabaseNetwork,
    method: str,
    alpha: float,
    epsilon: float = 0.1,
    max_length: int | None = None,
) -> MeasuredRun:
    """One mining run; metrics are NP / NV / NE plus the per-truss means."""
    label = method if method != "tcs" else f"tcs(eps={epsilon})"
    run = MeasuredRun(label=label)
    finder = ThemeCommunityFinder(network)
    with measure_time(run):
        result = finder.find(
            alpha, method=method, epsilon=epsilon, max_length=max_length
        )
    run.metrics.update(result.metrics())
    run.metrics["alpha"] = alpha
    return run


def run_indexing(
    network: DatabaseNetwork,
    max_length: int | None = None,
    workers: int = 1,
    backend: str = "thread",
) -> tuple[MeasuredRun, TCTree]:
    """Build a TC-Tree, measuring time, peak memory, and #nodes (Table 3).

    ``backend`` defaults to ``"thread"`` (not the library's ``"process"``
    default): tracemalloc cannot see child-process allocations, so the
    Table 3 peak-memory column is only meaningful for an in-process
    build. Pass ``backend="process"`` explicitly to time the pool —
    and read ``peak_bytes`` as parent-side memory only.
    """
    run = MeasuredRun(label="tc-tree build")
    with measure_memory(run), measure_time(run):
        tree = build_tc_tree(
            network, max_length=max_length, workers=workers, backend=backend
        )
    run.metrics["nodes"] = tree.num_nodes
    run.metrics["depth"] = tree.depth
    return run, tree


def run_query(
    tree: TCTree,
    pattern: Iterable[int] | None = None,
    alpha: float = 0.0,
    repeats: int = 1,
) -> MeasuredRun:
    """One query, averaged over ``repeats`` runs (the paper averages 1000).

    Metrics: retrieved nodes (RN in Figure 5) and visited nodes.
    """
    label = "QBA" if pattern is None else "QBP"
    run = MeasuredRun(label=label)
    answer = None
    start = time.perf_counter()
    for _ in range(max(1, repeats)):
        answer = query_tc_tree(tree, pattern=pattern, alpha=alpha)
    run.seconds = (time.perf_counter() - start) / max(1, repeats)
    assert answer is not None
    run.metrics["retrieved_nodes"] = answer.retrieved_nodes
    run.metrics["visited_nodes"] = answer.visited_nodes
    run.metrics["alpha"] = alpha
    if pattern is not None:
        run.metrics["pattern_length"] = len(tuple(pattern))
    return run
