"""Config-driven experiment fleet with a tracked perf trajectory.

The fleet turns the 17 ad-hoc benchmark drivers into one experiment
harness with one comparable output schema:

- ``benchmarks/fleet.yaml`` maps experiment ids to
  ``{area, driver module, params, profile overrides, run_id}``;
- :func:`run_fleet` runs only the experiments whose ``run_id`` is empty
  (``--dry-run`` / ``--only`` / ``--force`` supported), executes
  independent experiments in parallel, normalizes every result into one
  record schema ``{exp_id, git_sha, timestamp, medians, reps, env
  fingerprint}``, and writes the run ids back into the config as
  experiments complete (the SimCash ``run_missing_experiments`` idiom);
- :func:`summarize_records` folds records into per-area
  ``BENCH_<area>.json`` trajectory files at the repo root, keyed by git
  sha so the trend line is diffable in review;
- :func:`compare_to_baseline` is the CI regression gate: fresh smoke
  medians against the best of the last three committed entries, with a
  configurable failure threshold.

Every driver referenced by the config exposes a uniform
``run(config: dict) -> {"medians": {...}, "reps": n, "meta": {...}}``
entry point; only metrics whose name ends in ``_s`` (wall-clock
seconds) participate in the regression gate — counts and ratios ride
along as context.
"""

from __future__ import annotations

import importlib
import json
import math
import os
import platform
import statistics
import subprocess
import sys
import time
import uuid
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Mapping

import yaml

from repro.errors import BenchConfigError

#: The trajectory areas; one committed ``BENCH_<area>.json`` each.
AREAS = ("core", "parallel", "serving", "edgenet", "search")

RECORD_SCHEMA = "repro-bench-record/v1"
TRAJECTORY_SCHEMA = "repro-bench-trajectory/v1"

#: Default location of the per-run record files (gitignored — the
#: committed artifacts are the ``BENCH_*.json`` trajectories).
DEFAULT_RECORDS_DIR = "benchmarks/records"


# ---------------------------------------------------------------------------
# Config parsing / validation


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment of the fleet config."""

    exp_id: str
    area: str
    driver: str
    run_id: str = ""
    params: Mapping[str, object] = field(default_factory=dict)
    profile_params: Mapping[str, Mapping[str, object]] = field(
        default_factory=dict
    )


@dataclass
class FleetConfig:
    """A parsed ``fleet.yaml``: defaults, profiles, experiments."""

    path: Path
    defaults: dict[str, object]
    profiles: dict[str, str]
    experiments: dict[str, ExperimentSpec]

    @property
    def root(self) -> Path:
        """The repo root the drivers import relative to (the config
        conventionally lives at ``<root>/benchmarks/fleet.yaml``)."""
        return self.path.resolve().parent.parent


class _StrictLoader(yaml.SafeLoader):
    """SafeLoader that rejects duplicate mapping keys (a duplicated
    experiment id would otherwise silently drop the first definition)."""


def _strict_mapping(loader: _StrictLoader, node: yaml.Node) -> dict:
    mapping: dict = {}
    for key_node, value_node in node.value:
        key = loader.construct_object(key_node, deep=True)
        if key in mapping:
            raise BenchConfigError(
                f"duplicate key {key!r} at line {key_node.start_mark.line + 1}"
            )
        mapping[key] = loader.construct_object(value_node, deep=True)
    return mapping


_StrictLoader.add_constructor(
    yaml.resolver.BaseResolver.DEFAULT_MAPPING_TAG, _strict_mapping
)


def _require_mapping(value: object, what: str) -> dict:
    if value is None:
        return {}
    if not isinstance(value, dict):
        raise BenchConfigError(f"{what} must be a mapping, got {type(value).__name__}")
    return value


def load_fleet_config(path: str | Path) -> FleetConfig:
    """Parse and validate a fleet config; raises :class:`BenchConfigError`."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise BenchConfigError(f"cannot read fleet config {path}: {exc}") from exc
    try:
        doc = yaml.load(text, Loader=_StrictLoader)
    except yaml.YAMLError as exc:
        raise BenchConfigError(f"invalid YAML in {path}: {exc}") from exc
    doc = _require_mapping(doc, "fleet config")
    defaults = _require_mapping(doc.get("defaults"), "defaults")
    profiles_raw = _require_mapping(doc.get("profiles"), "profiles")
    profiles = {}
    for name, description in profiles_raw.items():
        if not isinstance(name, str) or not name:
            raise BenchConfigError(f"profile name must be a string, got {name!r}")
        profiles[name] = "" if description is None else str(description)
    experiments_raw = _require_mapping(doc.get("experiments"), "experiments")
    if not experiments_raw:
        raise BenchConfigError(f"{path} defines no experiments")
    experiments: dict[str, ExperimentSpec] = {}
    for exp_id, body in experiments_raw.items():
        if not isinstance(exp_id, str) or not exp_id or exp_id != exp_id.strip():
            raise BenchConfigError(f"invalid experiment id {exp_id!r}")
        body = _require_mapping(body, f"experiment {exp_id!r}")
        unknown = set(body) - {"area", "driver", "run_id", "params", "profiles"}
        if unknown:
            raise BenchConfigError(
                f"experiment {exp_id!r} has unknown keys {sorted(unknown)}"
            )
        area = body.get("area")
        if area not in AREAS:
            raise BenchConfigError(
                f"experiment {exp_id!r}: area must be one of {AREAS}, got {area!r}"
            )
        driver = body.get("driver")
        if not isinstance(driver, str) or "." not in driver:
            raise BenchConfigError(
                f"experiment {exp_id!r}: driver must be a dotted module path, "
                f"got {driver!r}"
            )
        run_id = body.get("run_id", "")
        if run_id is None:
            run_id = ""
        if not isinstance(run_id, str):
            raise BenchConfigError(
                f"experiment {exp_id!r}: run_id must be a string, got {run_id!r}"
            )
        params = _require_mapping(body.get("params"), f"{exp_id!r} params")
        overrides_raw = _require_mapping(
            body.get("profiles"), f"{exp_id!r} profiles"
        )
        overrides: dict[str, Mapping[str, object]] = {}
        for profile_name, override in overrides_raw.items():
            if profile_name not in profiles:
                raise BenchConfigError(
                    f"experiment {exp_id!r} overrides undeclared profile "
                    f"{profile_name!r} (declared: {sorted(profiles)})"
                )
            overrides[profile_name] = _require_mapping(
                override, f"{exp_id!r} profile {profile_name!r}"
            )
        experiments[exp_id] = ExperimentSpec(
            exp_id=exp_id,
            area=area,
            driver=driver,
            run_id=run_id,
            params=params,
            profile_params=overrides,
        )
    return FleetConfig(
        path=path, defaults=defaults, profiles=profiles, experiments=experiments
    )


def _deep_merge(base: Mapping, override: Mapping) -> dict:
    merged = dict(base)
    for key, value in override.items():
        if isinstance(value, Mapping) and isinstance(merged.get(key), Mapping):
            merged[key] = _deep_merge(merged[key], value)
        else:
            merged[key] = value
    return merged


def resolve_params(
    config: FleetConfig, spec: ExperimentSpec, profile: str
) -> dict[str, object]:
    """Effective driver params: defaults <- base params <- profile overrides."""
    if profile not in config.profiles:
        raise BenchConfigError(
            f"unknown profile {profile!r} (declared: {sorted(config.profiles)})"
        )
    base: dict[str, object] = {}
    if "reps" in config.defaults:
        base["reps"] = config.defaults["reps"]
    merged = _deep_merge(base, spec.params)
    return _deep_merge(merged, spec.profile_params.get(profile, {}))


def dump_fleet_config(config: FleetConfig) -> str:
    """Canonical YAML text of a config (used to write run_ids back)."""
    doc = {
        "defaults": config.defaults,
        "profiles": dict(config.profiles),
        "experiments": {
            exp_id: {
                "area": spec.area,
                "driver": spec.driver,
                "run_id": spec.run_id,
                "params": dict(spec.params),
                **(
                    {"profiles": {k: dict(v) for k, v in spec.profile_params.items()}}
                    if spec.profile_params
                    else {}
                ),
            }
            for exp_id, spec in config.experiments.items()
        },
    }
    header = (
        "# Benchmark fleet config — see EXPERIMENTS.md.\n"
        "# run_id fields are machine-managed by `repro bench run`: an empty\n"
        "# run_id marks an experiment as missing (it will run on the next\n"
        "# invocation); reset one to \"\" to re-run it. Keep run_ids empty in\n"
        "# committed copies so CI's fresh checkouts run the whole fleet.\n"
    )
    return header + yaml.safe_dump(doc, sort_keys=False, default_flow_style=False)


def save_fleet_config(config: FleetConfig) -> None:
    config.path.write_text(dump_fleet_config(config), encoding="utf-8")


# ---------------------------------------------------------------------------
# Environment fingerprint


def _git(*args: str, root: str | Path | None = None) -> str:
    try:
        out = subprocess.run(
            ["git", *args],
            cwd=str(root) if root else None,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def env_fingerprint(root: str | Path | None = None) -> dict[str, object]:
    """The environment stamp shared by records and report headers."""
    return {
        "git_sha": _git("rev-parse", "--short=12", "HEAD", root=root) or "unknown",
        "git_dirty": bool(_git("status", "--porcelain", root=root)),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
    }


def stamp_line(env: Mapping[str, object] | None = None) -> str:
    """One-line provenance header for benchmark report files."""
    env = env or env_fingerprint()
    dirty = "+dirty" if env.get("git_dirty") else ""
    return (
        f"# sha={env['git_sha']}{dirty} time={env['timestamp']} "
        f"python={env['python']}"
    )


def median_seconds(fn: Callable[[], object], reps: int) -> float:
    """Median wall-clock seconds of ``reps`` calls of ``fn``."""
    times = []
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


# ---------------------------------------------------------------------------
# Records


def new_run_id() -> str:
    return uuid.uuid4().hex[:12]


def _validate_number(value: object, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BenchConfigError(f"{what} must be a number, got {value!r}")
    if not math.isfinite(value):
        raise BenchConfigError(f"{what} must be finite, got {value!r}")
    return float(value)


def make_record(
    spec: ExperimentSpec,
    profile: str,
    params: Mapping[str, object],
    result: Mapping[str, object],
    env: Mapping[str, object],
    run_id: str,
) -> dict[str, object]:
    """Normalize one driver result into the fleet's record schema."""
    result = _require_mapping(result, f"driver result of {spec.exp_id!r}")
    medians = _require_mapping(
        result.get("medians"), f"{spec.exp_id!r} result medians"
    )
    if not medians:
        raise BenchConfigError(f"driver of {spec.exp_id!r} returned no medians")
    clean_medians = {
        str(name): _validate_number(value, f"{spec.exp_id!r} median {name!r}")
        for name, value in medians.items()
    }
    reps = result.get("reps", 1)
    if isinstance(reps, bool) or not isinstance(reps, int) or reps < 1:
        raise BenchConfigError(
            f"{spec.exp_id!r} result reps must be a positive int, got {reps!r}"
        )
    record: dict[str, object] = {
        "schema": RECORD_SCHEMA,
        "exp_id": spec.exp_id,
        "area": spec.area,
        "driver": spec.driver,
        "profile": profile,
        "run_id": run_id,
        "git_sha": env["git_sha"],
        "timestamp": env["timestamp"],
        "reps": reps,
        "medians": clean_medians,
        "params": dict(params),
        "env": dict(env),
    }
    meta = result.get("meta")
    if meta is not None:
        record["meta"] = dict(_require_mapping(meta, f"{spec.exp_id!r} meta"))
    return record


def record_filename(exp_id: str, profile: str) -> str:
    return f"{exp_id.replace('/', '__')}@{profile}.json"


def write_record(record: Mapping[str, object], records_dir: str | Path) -> Path:
    records_dir = Path(records_dir)
    records_dir.mkdir(parents=True, exist_ok=True)
    path = records_dir / record_filename(
        str(record["exp_id"]), str(record["profile"])
    )
    path.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_records(records_dir: str | Path) -> list[dict[str, object]]:
    """All records in a directory, sorted by (area, exp_id, profile)."""
    records_dir = Path(records_dir)
    records = []
    for path in sorted(records_dir.glob("*.json")):
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise BenchConfigError(f"unreadable record {path}: {exc}") from exc
        if not isinstance(record, dict) or record.get("schema") != RECORD_SCHEMA:
            raise BenchConfigError(
                f"{path} is not a {RECORD_SCHEMA} record "
                f"(schema={record.get('schema') if isinstance(record, dict) else None!r})"
            )
        records.append(record)
    records.sort(
        key=lambda r: (str(r["area"]), str(r["exp_id"]), str(r["profile"]))
    )
    return records


# ---------------------------------------------------------------------------
# Running the fleet


def plan_runs(
    config: FleetConfig,
    only: list[str] | None = None,
    force: bool = False,
) -> list[ExperimentSpec]:
    """The experiments a ``run`` invocation would execute: the selected
    subset with an empty ``run_id`` (all of the subset with ``force``)."""
    if only:
        unknown = sorted(set(only) - set(config.experiments))
        if unknown:
            raise BenchConfigError(
                f"unknown experiment ids {unknown} "
                f"(known: {sorted(config.experiments)})"
            )
    selected = [
        spec
        for exp_id, spec in config.experiments.items()
        if not only or exp_id in only
    ]
    return [spec for spec in selected if force or not spec.run_id]


def _execute_payload(payload: dict[str, object]) -> dict[str, object]:
    """Run one driver's ``run(params)`` (process-pool entry point).

    The run is bracketed with :mod:`repro.obs.metrics` snapshots and the
    delta — what the driver's workload itself counted (engine routes,
    triangle-index modes, query/build histograms) — rides into the
    record under ``meta.metrics``, so a perf trajectory can be read next
    to the route distribution that produced it.
    """
    root = str(payload["root"])
    if root not in sys.path:
        sys.path.insert(0, root)
    module = importlib.import_module(str(payload["driver"]))
    run = getattr(module, "run", None)
    if not callable(run):
        raise BenchConfigError(
            f"driver {payload['driver']!r} has no run(config) entry point"
        )
    from repro.obs.metrics import default_registry

    before = default_registry().snapshot()
    result = run(payload["params"])
    metrics = default_registry().snapshot().delta(before).as_flat_dict()
    if metrics and isinstance(result, dict):
        meta = result.setdefault("meta", {})
        if isinstance(meta, dict):
            meta.setdefault("metrics", metrics)
    return result


def run_fleet(
    config: FleetConfig,
    profile: str = "full",
    only: list[str] | None = None,
    force: bool = False,
    dry_run: bool = False,
    workers: int | None = None,
    records_dir: str | Path | None = None,
    update_config: bool = True,
    echo: Callable[[str], object] = print,
) -> list[dict[str, object]]:
    """Run every missing experiment of ``config`` and return the records.

    Independent experiments fan out over a process pool (``workers``
    defaults to the machine's core count); each completed run writes its
    record to ``records_dir`` and, with ``update_config``, its fresh
    ``run_id`` back into the YAML so a re-run skips it. ``dry_run`` only
    reports what would run.
    """
    todo = plan_runs(config, only=only, force=force)
    if profile not in config.profiles:
        raise BenchConfigError(
            f"unknown profile {profile!r} (declared: {sorted(config.profiles)})"
        )
    skipped = len(config.experiments) - len(todo) if not only else None
    if dry_run:
        for spec in todo:
            echo(f"would run {spec.exp_id} [{spec.area}] via {spec.driver}")
        if not todo:
            echo("nothing to run (all run_ids set; use --force to re-run)")
        return []
    if not todo:
        echo("nothing to run (all run_ids set; use --force to re-run)")
        return []
    if skipped:
        echo(f"skipping {skipped} experiment(s) with run_ids already set")
    records_dir = Path(records_dir or config.root / DEFAULT_RECORDS_DIR)
    env = env_fingerprint(config.root)
    payloads = {
        spec.exp_id: {
            "driver": spec.driver,
            "params": resolve_params(config, spec, profile),
            "root": str(config.root),
        }
        for spec in todo
    }
    max_workers = workers or os.cpu_count() or 1
    max_workers = max(1, min(max_workers, len(todo)))
    records: dict[str, dict[str, object]] = {}

    def _finish(spec: ExperimentSpec, result: Mapping[str, object],
                seconds: float) -> None:
        record = make_record(
            spec, profile, payloads[spec.exp_id]["params"], result, env,
            run_id=new_run_id(),
        )
        records[spec.exp_id] = record
        write_record(record, records_dir)
        config.experiments[spec.exp_id] = replace(
            spec, run_id=str(record["run_id"])
        )
        if update_config:
            save_fleet_config(config)
        echo(
            f"[{spec.exp_id}] done in {seconds:.1f}s "
            f"(run_id={record['run_id']})"
        )

    if max_workers == 1:
        for spec in todo:
            echo(f"[{spec.exp_id}] running via {spec.driver} ...")
            start = time.perf_counter()
            result = _execute_payload(payloads[spec.exp_id])
            _finish(spec, result, time.perf_counter() - start)
    else:
        echo(
            f"running {len(todo)} experiment(s) on {max_workers} worker "
            f"process(es)"
        )
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            started = time.perf_counter()
            futures = {
                pool.submit(_execute_payload, payloads[spec.exp_id]): spec
                for spec in todo
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    spec = futures[future]
                    _finish(
                        spec, future.result(), time.perf_counter() - started
                    )
    return [records[spec.exp_id] for spec in todo]


# ---------------------------------------------------------------------------
# Trajectories (summarize)


def trajectory_path(out_dir: str | Path, area: str) -> Path:
    return Path(out_dir) / f"BENCH_{area}.json"


def _load_trajectory(path: Path, area: str) -> dict[str, object]:
    if not path.exists():
        return {"schema": TRAJECTORY_SCHEMA, "area": area, "entries": []}
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchConfigError(f"unreadable trajectory {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != TRAJECTORY_SCHEMA:
        raise BenchConfigError(f"{path} is not a {TRAJECTORY_SCHEMA} document")
    return doc


def summarize_records(
    records: list[dict[str, object]],
    out_dir: str | Path,
) -> dict[str, Path]:
    """Fold records into per-area ``BENCH_<area>.json`` trajectories.

    Entries are keyed by ``(git_sha, profile)``: summarizing the same
    records twice is byte-identical (deterministic merge), and
    re-summarizing after a partial re-run updates the sha's entry in
    place instead of appending a duplicate.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    by_area: dict[str, list[dict[str, object]]] = {}
    for record in records:
        area = str(record["area"])
        if area not in AREAS:
            raise BenchConfigError(f"record {record['exp_id']!r} has unknown area {area!r}")
        by_area.setdefault(area, []).append(record)
    written: dict[str, Path] = {}
    for area in sorted(by_area):
        path = trajectory_path(out_dir, area)
        doc = _load_trajectory(path, area)
        entries: list[dict] = list(doc.get("entries", []))
        for record in sorted(
            by_area[area], key=lambda r: (str(r["exp_id"]), str(r["profile"]))
        ):
            key = (record["git_sha"], record["profile"])
            entry = next(
                (
                    e
                    for e in entries
                    if (e.get("git_sha"), e.get("profile")) == key
                ),
                None,
            )
            if entry is None:
                entry = {
                    "git_sha": record["git_sha"],
                    "profile": record["profile"],
                    "timestamp": record["timestamp"],
                    "experiments": {},
                }
                entries.append(entry)
            entry["timestamp"] = max(
                str(entry["timestamp"]), str(record["timestamp"])
            )
            summary: dict[str, object] = {
                "run_id": record["run_id"],
                "reps": record["reps"],
                "medians": record["medians"],
            }
            if "meta" in record:
                summary["meta"] = record["meta"]
            entry["experiments"][str(record["exp_id"])] = summary
        entries.sort(key=lambda e: (str(e["timestamp"]), str(e["git_sha"])))
        doc["entries"] = entries
        path.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        written[area] = path
    return written


# ---------------------------------------------------------------------------
# Trend gate (CI)


@dataclass
class TrendRow:
    exp_id: str
    area: str
    metric: str
    baseline: float | None
    current: float
    ratio: float | None
    status: str  # "ok" | "REGRESSION" | "new"


def compare_to_baseline(
    records: list[dict[str, object]],
    baselines_dir: str | Path,
    threshold: float = 1.25,
    window: int = 3,
) -> tuple[list[TrendRow], bool]:
    """Compare fresh record medians against committed trajectories.

    Only wall-clock metrics (name ending in ``_s``) are gated. The
    baseline for a metric is the **best of the last ``window`` entries**
    of the area's trajectory (same profile), which tolerates noisy
    individual entries; a regression is ``current > threshold *
    baseline``. Returns the rows and whether any regressed.
    """
    rows: list[TrendRow] = []
    failed = False
    trajectories: dict[str, dict] = {}
    for record in records:
        area = str(record["area"])
        exp_id = str(record["exp_id"])
        profile = str(record["profile"])
        if area not in trajectories:
            path = trajectory_path(baselines_dir, area)
            trajectories[area] = (
                _load_trajectory(path, area) if path.exists() else {"entries": []}
            )
        entries = [
            e
            for e in trajectories[area].get("entries", [])
            if e.get("profile") == profile
        ][-window:]
        for metric, current in sorted(dict(record["medians"]).items()):
            if not metric.endswith("_s"):
                continue
            candidates = []
            for entry in entries:
                summary = entry.get("experiments", {}).get(exp_id)
                if summary:
                    value = summary.get("medians", {}).get(metric)
                    if isinstance(value, (int, float)) and value > 0:
                        candidates.append(float(value))
            if not candidates:
                rows.append(
                    TrendRow(exp_id, area, metric, None, float(current), None, "new")
                )
                continue
            baseline = min(candidates)
            ratio = float(current) / baseline
            status = "REGRESSION" if ratio > threshold else "ok"
            failed = failed or status == "REGRESSION"
            rows.append(
                TrendRow(exp_id, area, metric, baseline, float(current), ratio, status)
            )
    return rows, failed


def format_trend_markdown(
    rows: list[TrendRow], threshold: float, window: int
) -> str:
    """The delta table posted to the CI job summary."""
    lines = [
        f"### Bench trend (gate: >{(threshold - 1) * 100:.0f}% vs best of "
        f"last {window} entries)",
        "",
        "| experiment | metric | baseline | current | ratio | status |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    for row in rows:
        baseline = "—" if row.baseline is None else f"{row.baseline:.4g}s"
        ratio = "—" if row.ratio is None else f"{row.ratio:.2f}x"
        marker = "❌" if row.status == "REGRESSION" else "✅"
        lines.append(
            f"| {row.exp_id} | {row.metric} | {baseline} | "
            f"{row.current:.4g}s | {ratio} | {marker} {row.status} |"
        )
    if not rows:
        lines.append("| _no gated metrics_ | | | | | |")
    return "\n".join(lines)


__all__ = [
    "AREAS",
    "DEFAULT_RECORDS_DIR",
    "ExperimentSpec",
    "FleetConfig",
    "TrendRow",
    "compare_to_baseline",
    "dump_fleet_config",
    "env_fingerprint",
    "format_trend_markdown",
    "load_fleet_config",
    "load_records",
    "make_record",
    "median_seconds",
    "plan_runs",
    "resolve_params",
    "run_fleet",
    "save_fleet_config",
    "stamp_line",
    "summarize_records",
    "trajectory_path",
    "write_record",
]
