"""Auto-tuning of the engine cutover constants from measured sweeps.

Which constants to tune comes from the engine registry: every
:class:`~repro.engine.registry.CutoverSpec` a registered model declares
names its sweep function, current value, unit, and source file, so a new
model's cutover (e.g. probtruss's ``PROB_CSR_MIN_EDGES``) is swept by
``repro bench tune-cutovers`` the moment the model registers — no edit
to this module. The sweeps themselves live here:

- :func:`sweep_csr_min_edges` (legacy dict-of-sets vs flat CSR engine
  for theme decomposition),
- :func:`sweep_net_reuse_fraction` (the 90% net-reuse fraction — reuse
  the network CSR vs project the carrier),
- :func:`sweep_edge_csr_min_edges` (the edge-model analogue),
- :func:`sweep_prob_csr_min_edges` (probabilistic (k, γ)-truss peeling),
- :func:`sweep_maint_full_rebuild_fraction` (incremental maintenance
  with decomposition reuse vs eager full rebuild, across affected
  fractions of the item universe).

Each boundary is re-measured with a sweep of sizes (or carrier
fractions) around it; the crossover point is fitted from the timing
table and reported fitted vs. current so the constants track
measurements instead of staying frozen. The fit is a least-squares line
through ``log(t_slow / t_fast)`` against ``log(x)`` — both engines are
low-degree polynomials in the input size, so their log-ratio is close to
linear and the crossover is where the fitted line crosses zero.

A fitted value within 2x of the current constant confirms it; beyond 2x
the constant should be updated (``repro bench tune-cutovers --apply``
rewrites the source line for the integer cutovers).
"""

from __future__ import annotations

import math
import random
import re
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import BenchConfigError

#: Sweep shapes per profile: (x values, timing reps per point).
SWEEP_PROFILES = {
    "smoke": {"points": 5, "reps": 3},
    "full": {"points": 8, "reps": 5},
}

#: Beyond this disagreement factor between fitted and current value the
#: constant is flagged for update.
DISAGREEMENT_LIMIT = 2.0


# ---------------------------------------------------------------------------
# Crossover fitting


@dataclass
class CrossoverFit:
    """A fitted engine crossover from a timing table.

    ``ratios[i] = slow_times[i] / fast_times[i]``; the fast engine wins
    where the ratio exceeds 1. ``crossover`` is the x at which the
    fitted log-ratio line crosses zero (``None`` when the line is flat —
    no crossing exists in either direction)."""

    x_values: list[float]
    ratios: list[float]
    slope: float
    intercept: float
    crossover: float | None
    in_range: bool = False

    def as_rows(self) -> list[dict[str, object]]:
        return [
            {"x": x, "slow/fast": round(r, 3)}
            for x, r in zip(self.x_values, self.ratios)
        ]


def fit_crossover(
    x_values: Sequence[float],
    slow_times: Sequence[float],
    fast_times: Sequence[float],
) -> CrossoverFit:
    """Fit the x where the fast engine starts beating the slow one."""
    if not (len(x_values) == len(slow_times) == len(fast_times)):
        raise BenchConfigError("sweep arrays must have equal lengths")
    if len(x_values) < 2:
        raise BenchConfigError("need at least two sweep points to fit")
    for name, values in (("x", x_values), ("slow", slow_times), ("fast", fast_times)):
        if any(v <= 0 for v in values):
            raise BenchConfigError(f"{name} values must be positive")
    ratios = [s / f for s, f in zip(slow_times, fast_times)]
    logx = [math.log(x) for x in x_values]
    logr = [math.log(r) for r in ratios]
    n = len(logx)
    mean_x = sum(logx) / n
    mean_r = sum(logr) / n
    sxx = sum((x - mean_x) ** 2 for x in logx)
    sxr = sum((x - mean_x) * (r - mean_r) for x, r in zip(logx, logr))
    slope = sxr / sxx if sxx > 0 else 0.0
    intercept = mean_r - slope * mean_x
    if abs(slope) < 1e-12:
        crossover = None
        in_range = False
    else:
        crossover = math.exp(-intercept / slope)
        in_range = min(x_values) <= crossover <= max(x_values)
    return CrossoverFit(
        x_values=list(map(float, x_values)),
        ratios=ratios,
        slope=slope,
        intercept=intercept,
        crossover=crossover,
        in_range=in_range,
    )


def round_to_power_of_two(value: float) -> int:
    """Cutovers are order-of-magnitude knobs: snap to the nearest 2**k."""
    if value <= 1:
        return 1
    return 1 << round(math.log2(value))


def disagreement(fitted: float, current: float) -> float:
    """Symmetric disagreement factor (>= 1) between two positive values."""
    if fitted <= 0 or current <= 0:
        raise BenchConfigError("disagreement needs positive values")
    return max(fitted / current, current / fitted)


# ---------------------------------------------------------------------------
# Timed sweeps around each cutover


def _median_time(fn: Callable[[], object], reps: int) -> float:
    times = []
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _geometric_sizes(low: int, high: int, points: int) -> list[int]:
    """``points`` distinct sizes spread geometrically over [low, high]."""
    if points < 2:
        raise BenchConfigError("need at least two sweep points")
    step = (high / low) ** (1 / (points - 1))
    sizes = sorted({max(low, round(low * step**i)) for i in range(points)})
    return sizes


def _theme_graph(target_edges: int, seed: int):
    """A clustered graph with roughly ``target_edges`` edges, plus a
    frequency map — the decomposition workload around the cutover."""
    from repro.graphs.generators import powerlaw_cluster_graph

    m = 4 if target_edges >= 64 else 2
    nodes = max(m + 2, round(target_edges / m) + m)
    graph = powerlaw_cluster_graph(nodes, m, 0.6, seed=seed)
    rng = random.Random(seed)
    frequencies = {v: 0.2 + 0.8 * rng.random() for v in graph}
    return graph, frequencies


def sweep_csr_min_edges(
    points: int = 5, reps: int = 3, low: int = 64, high: int = 4096
) -> dict[str, list[float]]:
    """Legacy vs CSR theme decomposition across graph sizes."""
    from repro.index.decomposition import decompose_theme

    sizes, legacy, csr = [], [], []
    for i, target in enumerate(_geometric_sizes(low, high, points)):
        graph, frequencies = _theme_graph(target, seed=100 + i)
        sizes.append(float(graph.num_edges))
        legacy.append(_median_time(
            lambda: decompose_theme((0,), graph, frequencies, engine="legacy"),
            reps,
        ))
        csr.append(_median_time(
            lambda: decompose_theme((0,), graph, frequencies, engine="csr"),
            reps,
        ))
    return {"x": sizes, "slow": legacy, "fast": csr}


def sweep_edge_csr_min_edges(
    points: int = 5, reps: int = 3, low: int = 16, high: int = 1024
) -> dict[str, list[float]]:
    """Legacy vs CSR *edge*-theme decomposition across network sizes."""
    from repro.edgenet.decomposition import decompose_edge_network_pattern
    from repro.edgenet.network import EdgeDatabaseNetwork
    from repro.graphs.generators import powerlaw_cluster_graph

    sizes, legacy, csr = [], [], []
    for i, target in enumerate(_geometric_sizes(low, high, points)):
        seed = 200 + i
        m = 3 if target >= 32 else 2
        nodes = max(m + 2, round(target / m) + m)
        graph = powerlaw_cluster_graph(nodes, m, 0.6, seed=seed)
        rng = random.Random(seed)
        network = EdgeDatabaseNetwork()
        for u, v in graph.iter_edges():
            for _ in range(2):
                transaction = {0} if rng.random() < 0.9 else {1}
                transaction.add(2 + rng.randrange(4))
                network.add_transaction(u, v, transaction)
        sizes.append(float(network.num_edges))
        legacy.append(_median_time(
            lambda: decompose_edge_network_pattern(
                network, (0,), engine="legacy"
            ),
            reps,
        ))
        csr.append(_median_time(
            lambda: decompose_edge_network_pattern(network, (0,), engine="csr"),
            reps,
        ))
    return {"x": sizes, "slow": legacy, "fast": csr}


def sweep_net_reuse_fraction(
    points: int = 5,
    reps: int = 3,
    network_edges: int = 4096,
    low: float = 0.5,
    high: float = 0.98,
) -> dict[str, list[float]]:
    """Carrier projection vs network-CSR reuse across carrier fractions.

    For a carrier keeping fraction ``f`` of the network's edges the
    engine can either decompose the whole network CSR with zero-filled
    frequencies (reuse — shares the cached triangle index, pays the
    α = 0 peel of every non-carrier edge) or project the carrier and
    derive its index (projection — pays the projected build). Projection
    is the "fast" side here: the fitted crossover is the fraction above
    which reuse starts winning, to compare against the current 90%
    threshold."""
    from repro.graphs.csr import as_csr
    from repro.graphs.support import triangle_index
    from repro.index.decomposition import decompose_theme

    graph, frequencies = _theme_graph(network_edges, seed=300)
    csr = as_csr(graph)
    if csr is None:
        raise BenchConfigError("sweep graph is not CSR-eligible")
    triangle_index(csr)  # warm the shared index, as the TC-Tree build does
    m = csr.num_edges
    labels = csr.labels
    fractions, reuse, project = [], [], []
    step = (high - low) / (points - 1) if points > 1 else 0.0
    for i in range(points):
        fraction = low + step * i
        rng = random.Random(400 + i)
        mask = bytes(
            1 if rng.random() < fraction else 0 for _ in range(m)
        )
        kept_vertices = set()
        for e in range(m):
            if mask[e]:
                kept_vertices.add(labels[csr.edge_u[e]])
                kept_vertices.add(labels[csr.edge_v[e]])
        carrier_freqs = {
            v: f for v, f in frequencies.items() if v in kept_vertices
        }
        fractions.append(sum(mask) / m)
        reuse.append(_median_time(
            lambda: decompose_theme((0,), csr, carrier_freqs, engine="csr"),
            reps,
        ))
        project.append(_median_time(
            lambda: decompose_theme(
                (0,), csr.project(mask), carrier_freqs, engine="csr"
            ),
            reps,
        ))
    return {"x": fractions, "slow": reuse, "fast": project}


def sweep_prob_csr_min_edges(
    points: int = 5, reps: int = 3, low: int = 256, high: int = 8192
) -> dict[str, list[float]]:
    """Legacy vs CSR probabilistic (k, γ)-truss across graph sizes.

    One-shot calls on legacy ``Graph`` inputs, so the CSR arm pays the
    conversion and triangle-index build every time — the regime the
    ``engine="auto"`` cutover guards. The crossover sits far above the
    deterministic cutovers because the Poisson-binomial DP (shared by
    both arms) dilutes the enumeration advantage.
    """
    from repro.graphs.graph import edge_key
    from repro.graphs.probtruss import probabilistic_k_truss

    sizes, legacy, csr = [], [], []
    for i, target in enumerate(_geometric_sizes(low, high, points)):
        graph, _ = _theme_graph(target, seed=500 + i)
        rng = random.Random(500 + i)
        probabilities = {
            edge_key(u, v): 0.3 + 0.7 * rng.random()
            for u, v in graph.iter_edges()
        }
        sizes.append(float(graph.num_edges))
        legacy.append(_median_time(
            lambda: probabilistic_k_truss(
                graph, probabilities, 4, 0.1, engine="legacy"
            ),
            reps,
        ))
        csr.append(_median_time(
            lambda: probabilistic_k_truss(
                graph, probabilities, 4, 0.1, engine="csr"
            ),
            reps,
        ))
    return {"x": sizes, "slow": legacy, "fast": csr}


def sweep_maint_full_rebuild_fraction(
    points: int = 5,
    reps: int = 3,
    low: float = 0.2,
    high: float = 1.0,
) -> dict[str, list[float]]:
    """Incremental maintenance vs full rebuild across affected fractions.

    For an update whose affected items cover fraction ``f`` of the item
    universe, the maintainer can rebuild with the surviving
    decompositions handed to the builder's ``reuse`` hook (incremental —
    the "fast" side) or rebuild everything from scratch (full). As
    ``f → 1`` nothing survives, so the old-tree scan and reuse-dict
    probing stop paying for themselves: the fitted crossover is the
    fraction above which ``mode="auto"`` should route to a full rebuild,
    compared against ``MAINT_FULL_REBUILD_FRACTION``.
    """
    from repro.datasets.synthetic import generate_synthetic_network
    from repro.index.tctree import build_tc_tree
    from repro.index.updates import reusable_decompositions

    network = generate_synthetic_network(
        num_items=12, num_seeds=3, mutation_rate=0.4,
        max_transactions=8, max_transaction_length=4, seed=700,
    )
    base = build_tc_tree(network, max_length=3, backend="serial")
    universe = sorted(set(network.item_universe()))
    fractions, full_times, incremental_times = [], [], []
    step = (high - low) / (points - 1) if points > 1 else 0.0
    for i in range(points):
        count = max(1, round((low + step * i) * len(universe)))
        reuse = reusable_decompositions(base, set(universe[:count]))
        fractions.append(count / len(universe))
        full_times.append(_median_time(
            lambda: build_tc_tree(network, max_length=3, backend="serial"),
            reps,
        ))
        incremental_times.append(_median_time(
            lambda: build_tc_tree(
                network, max_length=3, backend="serial", reuse=dict(reuse)
            ),
            reps,
        ))
    return {"x": fractions, "slow": full_times, "fast": incremental_times}


# ---------------------------------------------------------------------------
# The tune-cutovers driver


@dataclass
class CutoverReport:
    """Fitted vs current for one cutover constant."""

    name: str
    current: float
    fit: CrossoverFit
    unit: str = "edges"
    source: str = ""
    #: Populated when the fitted line never crosses 1 inside the sweep:
    #: which engine won everywhere.
    notes: list[str] = field(default_factory=list)

    @property
    def fitted(self) -> float | None:
        return self.fit.crossover

    @property
    def disagreement(self) -> float | None:
        if self.fitted is None or self.fitted <= 0:
            return None
        return disagreement(self.fitted, self.current)

    @property
    def verdict(self) -> str:
        if self.fitted is None:
            return "no-crossing"
        if not self.fit.in_range:
            # The measured sweep never crossed 1; the fitted crossover is
            # an extrapolation and not trustworthy enough to act on.
            return "extrapolated"
        if self.disagreement is not None and self.disagreement > DISAGREEMENT_LIMIT:
            return "update"
        return "ok"

    def as_row(self) -> dict[str, object]:
        fitted = self.fitted
        return {
            "cutover": self.name,
            "current": self.current,
            "fitted": round(fitted, 4) if fitted is not None else "—",
            "unit": self.unit,
            "disagreement": (
                f"{self.disagreement:.2f}x" if self.disagreement else "—"
            ),
            "verdict": self.verdict,
        }


def tune_cutovers(
    profile: str = "smoke",
    points: int | None = None,
    reps: int | None = None,
    only: Sequence[str] | None = None,
) -> list[CutoverReport]:
    """Sweep and fit every cutover the engine registry declares.

    ``only`` optionally restricts the run to the named constants (the
    full sweep set times every registered model's boundary).
    """
    from repro.engine import registry

    if profile not in SWEEP_PROFILES:
        raise BenchConfigError(
            f"unknown tuning profile {profile!r} "
            f"(choose from {sorted(SWEEP_PROFILES)})"
        )
    shape = SWEEP_PROFILES[profile]
    points = points or shape["points"]
    reps = reps or shape["reps"]
    reports = []
    for spec, cutover in registry.all_cutovers():
        if only is not None and cutover.name not in only:
            continue
        sweep = cutover.sweep_fn()(points=points, reps=reps)
        report = CutoverReport(
            name=cutover.name,
            current=cutover.current(),
            fit=fit_crossover(sweep["x"], sweep["slow"], sweep["fast"]),
            unit=cutover.unit,
            source=cutover.source,
        )
        # The sweeps above pump decompositions through the instrumented
        # engine, so the route counters now hold the distribution this
        # process actually took (plus anything observed earlier in its
        # lifetime — e.g. a production workload being tuned in place).
        # Surfacing it beside the fit shows whether the constant under
        # judgement even governs the routes being exercised.
        routes = registry.observed_routes(spec.name)
        if routes:
            top = sorted(routes.items(), key=lambda kv: (-kv[1], kv[0]))
            report.notes.append(
                "observed routes: " + ", ".join(
                    f"{route} x{int(count)}" for route, count in top[:4]
                )
            )
        reports.append(report)
    for report in reports:
        if report.fit.crossover is None:
            side = (
                "fast engine won at every sweep point"
                if all(r > 1 for r in report.fit.ratios)
                else "slow engine won at every sweep point"
                if all(r < 1 for r in report.fit.ratios)
                else "flat ratio — no crossing"
            )
            report.notes.append(side)
        elif not report.fit.in_range:
            report.notes.append(
                "crossover extrapolated beyond the sweep range "
                f"[{min(report.fit.x_values):.3g}, "
                f"{max(report.fit.x_values):.3g}]"
            )
    return reports


# ---------------------------------------------------------------------------
# Applying fitted constants


def apply_constant(source: str | Path, name: str, value: int) -> bool:
    """Rewrite ``NAME = <int>`` in a source file; returns True on change."""
    source = Path(source)
    text = source.read_text(encoding="utf-8")
    pattern = re.compile(rf"^({re.escape(name)}\s*=\s*)(\d+)\b", re.MULTILINE)
    match = pattern.search(text)
    if match is None:
        raise BenchConfigError(f"no `{name} = <int>` assignment in {source}")
    if int(match.group(2)) == value:
        return False
    source.write_text(pattern.sub(rf"\g<1>{value}", text, count=1),
                      encoding="utf-8")
    return True


def applicable_cutovers() -> dict[str, str]:
    """Cutover name → source file for every constant --apply may rewrite.

    Enumerated from the engine registry: cutovers marked
    ``applicable=False`` (e.g. the 90% net-reuse fraction, a ratio baked
    into integer arithmetic) stay report-only.
    """
    from repro.engine import registry

    return {
        cutover.name: cutover.source
        for _spec, cutover in registry.all_cutovers()
        if cutover.applicable
    }


def __getattr__(name: str):
    # Back-compat alias: APPLICABLE used to be a hand-kept dict; it now
    # reflects the registry's live declarations.
    if name == "APPLICABLE":
        return applicable_cutovers()
    # Module __getattr__ must raise AttributeError by protocol.
    raise AttributeError(  # repro-lint: disable=error-taxonomy
        f"module {__name__!r} has no attribute {name!r}"
    )


def apply_fitted_cutovers(
    reports: list[CutoverReport], repo_root: str | Path
) -> list[str]:
    """Rewrite the integer cutovers whose fit disagrees by > 2x."""
    repo_root = Path(repo_root)
    applicable = applicable_cutovers()
    changed = []
    for report in reports:
        if report.verdict != "update" or report.name not in applicable:
            continue
        assert report.fitted is not None
        new_value = round_to_power_of_two(report.fitted)
        if apply_constant(
            repo_root / applicable[report.name], report.name, new_value
        ):
            changed.append(f"{report.name}: {int(report.current)} -> {new_value}")
    return changed


__all__ = [
    "APPLICABLE",
    "CrossoverFit",
    "CutoverReport",
    "DISAGREEMENT_LIMIT",
    "applicable_cutovers",
    "apply_constant",
    "apply_fitted_cutovers",
    "disagreement",
    "fit_crossover",
    "round_to_power_of_two",
    "sweep_csr_min_edges",
    "sweep_edge_csr_min_edges",
    "sweep_maint_full_rebuild_fraction",
    "sweep_net_reuse_fraction",
    "sweep_prob_csr_min_edges",
    "tune_cutovers",
]
