"""Measurement primitives for the experiment harness.

The paper reports wall-clock "Time Cost" and, for Table 3, peak memory
during TC-Tree construction. We measure time with ``perf_counter`` and
memory with ``tracemalloc`` (the Python-level analogue of the paper's peak
process memory).
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class MeasuredRun:
    """One measured run: elapsed seconds, optional peak bytes, metrics."""

    label: str
    seconds: float = 0.0
    peak_bytes: int = 0
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def peak_megabytes(self) -> float:
        return self.peak_bytes / (1024.0 * 1024.0)

    def as_row(self) -> dict[str, float | str]:
        row: dict[str, float | str] = {"run": self.label,
                                       "seconds": round(self.seconds, 6)}
        if self.peak_bytes:
            row["peak_MB"] = round(self.peak_megabytes, 3)
        row.update(self.metrics)
        return row


@contextmanager
def measure_time(run: MeasuredRun):
    """Context manager accumulating wall-clock time into ``run``."""
    start = time.perf_counter()
    try:
        yield run
    finally:
        run.seconds += time.perf_counter() - start


@contextmanager
def measure_memory(run: MeasuredRun):
    """Context manager recording tracemalloc peak into ``run``.

    Nested use is safe: the snapshot baseline is taken at entry so only
    allocations inside the block count.
    """
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    baseline, _ = tracemalloc.get_traced_memory()
    try:
        yield run
    finally:
        _, peak = tracemalloc.get_traced_memory()
        run.peak_bytes = max(run.peak_bytes, peak - baseline)
        if not was_tracing:
            tracemalloc.stop()
