"""Per-table / per-figure experiment drivers (Section 7 reproduction).

Each ``experiment_*`` function regenerates one table or figure of the
paper: it builds the workload, runs the measured sweep, and returns the
rows plus a formatted report. The drivers are shared by the pytest
benchmarks in ``benchmarks/`` and by ``python -m repro experiment ...``.

Scale presets
-------------
Pure Python cannot run the paper's 10⁶-edge networks in benchmark time, so
every driver accepts a scale preset. The *shape* of each figure (who wins,
slopes, crossovers) is preserved at every preset; only the axes shrink.

============  =====================  ==========================
preset        intended use           approx edge counts
============  =====================  ==========================
``tiny``      unit/CI benchmarks     ~200-600 per dataset
``small``     default benchmarks     ~600-2000 per dataset
``medium``    manual deep runs       ~2000-8000 per dataset
============  =====================  ==========================
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.bench.reporting import format_table
from repro.bench.runner import run_indexing, run_mining, run_query
from repro.datasets.checkin import generate_checkin_network
from repro.datasets.coauthor import generate_coauthor_network
from repro.datasets.synthetic import generate_synthetic_network
from repro.errors import MiningError
from repro.index.tctree import TCTree
from repro.network.dbnetwork import DatabaseNetwork
from repro.network.sampling import bfs_edge_sample
from repro.network.stats import network_statistics

#: The α sweep of Figure 3 and the ε values of the TCS baseline.
FIG3_ALPHAS = (0.0, 0.1, 0.2, 0.3, 0.5, 1.0, 1.5, 2.0)
TCS_EPSILONS = (0.1, 0.2, 0.3)

_SCALES = ("tiny", "small", "medium")


def _scaled(tiny: int, small: int, medium: int, scale: str) -> int:
    if scale not in _SCALES:
        raise MiningError(f"unknown scale {scale!r}; expected {_SCALES}")
    return {"tiny": tiny, "small": small, "medium": medium}[scale]


# ---------------------------------------------------------------------------
# dataset suite (the four networks of Table 2)
# ---------------------------------------------------------------------------

def make_bk(scale: str = "small", seed: int = 11) -> DatabaseNetwork:
    """Brightkite surrogate: smaller check-in network."""
    return generate_checkin_network(
        num_users=_scaled(60, 150, 500, scale),
        num_locations=_scaled(24, 40, 120, scale),
        num_groups=_scaled(6, 12, 40, scale),
        group_size=6,
        locations_per_group=3,
        periods=_scaled(12, 24, 40, scale),
        seed=seed,
    )


def make_gw(scale: str = "small", seed: int = 22) -> DatabaseNetwork:
    """Gowalla surrogate: larger, sparser check-in network."""
    return generate_checkin_network(
        num_users=_scaled(90, 250, 900, scale),
        num_locations=_scaled(32, 60, 200, scale),
        num_groups=_scaled(8, 18, 60, scale),
        group_size=7,
        locations_per_group=3,
        periods=_scaled(12, 24, 40, scale),
        visit_probability=0.55,
        seed=seed,
    )


def make_aminer(scale: str = "small", seed: int = 33) -> DatabaseNetwork:
    """AMINER surrogate: co-author network with planted research themes."""
    return generate_coauthor_network(
        num_authors=_scaled(80, 200, 700, scale),
        num_topics=_scaled(6, 10, 25, scale),
        keywords_per_topic=4,
        num_keywords=_scaled(40, 80, 200, scale),
        authors_per_topic=_scaled(15, 25, 50, scale),
        num_papers=_scaled(200, 600, 2500, scale),
        hyper_paper_authors=_scaled(0, 20, 40, scale),
        seed=seed,
    )


def make_syn(scale: str = "small", seed: int = 44) -> DatabaseNetwork:
    """SYN: the paper's synthetic recipe."""
    return generate_synthetic_network(
        num_vertices=_scaled(120, 400, 1500, scale),
        num_items=_scaled(24, 50, 120, scale),
        num_seeds=_scaled(4, 10, 30, scale),
        seed=seed,
    )


DATASET_MAKERS: dict[str, Callable[[str], DatabaseNetwork]] = {
    "BK": make_bk,
    "GW": make_gw,
    "AMINER": make_aminer,
    "SYN": make_syn,
}


def dataset_suite(scale: str = "small") -> dict[str, DatabaseNetwork]:
    """All four evaluation networks at the requested scale."""
    return {name: make(scale) for name, make in DATASET_MAKERS.items()}


# ---------------------------------------------------------------------------
# Table 2 — dataset statistics
# ---------------------------------------------------------------------------

def experiment_table2(scale: str = "small") -> tuple[list[dict], str]:
    """Regenerate Table 2: statistics of the database networks."""
    rows = []
    for name, network in dataset_suite(scale).items():
        stats = network_statistics(network, count_triangles_too=False)
        row: dict = {"dataset": name}
        row.update(stats.as_row())
        rows.append(row)
    return rows, format_table(
        rows, title=f"Table 2 — dataset statistics (scale={scale})"
    )


# ---------------------------------------------------------------------------
# Figure 3 — effect of α and ε (time + NP/NV/NE per method)
# ---------------------------------------------------------------------------

def experiment_fig3(
    dataset: str = "BK",
    scale: str = "tiny",
    alphas: Iterable[float] = FIG3_ALPHAS,
    epsilons: Iterable[float] = TCS_EPSILONS,
    sample_edges: int | None = None,
    max_length: int | None = None,
) -> tuple[list[dict], str]:
    """Regenerate Figure 3 for one dataset.

    The paper runs this on BFS samples (10k edges for BK/GW, 5k for
    AMINER); ``sample_edges`` applies the same protocol at our scale.
    """
    network = DATASET_MAKERS[dataset](scale)
    if sample_edges is not None:
        network = bfs_edge_sample(network, sample_edges, seed=7)
    rows: list[dict] = []
    for alpha in alphas:
        for method in ("tcfi", "tcfa"):
            run = run_mining(network, method, alpha, max_length=max_length)
            rows.append({"dataset": dataset, **run.as_row()})
        for epsilon in epsilons:
            run = run_mining(
                network, "tcs", alpha, epsilon=epsilon, max_length=max_length
            )
            rows.append({"dataset": dataset, **run.as_row()})
    return rows, format_table(
        rows,
        title=(
            f"Figure 3 — effect of alpha and epsilon on {dataset} "
            f"(scale={scale})"
        ),
    )


# ---------------------------------------------------------------------------
# Figure 4 — scalability vs #sampled edges (α = 0, worst case)
# ---------------------------------------------------------------------------

def experiment_fig4(
    dataset: str = "BK",
    scale: str = "small",
    sizes: Iterable[int] = (100, 200, 400, 800),
    methods: Iterable[str] = ("tcfi", "tcfa", "tcs"),
    epsilon: float = 0.1,
    max_length: int | None = None,
) -> tuple[list[dict], str]:
    """Regenerate Figure 4: runtime / NP / NV/NP / NE/NP vs sample size."""
    network = DATASET_MAKERS[dataset](scale)
    rows: list[dict] = []
    for size in sizes:
        sample = bfs_edge_sample(network, size, seed=7)
        for method in methods:
            run = run_mining(
                sample, method, alpha=0.0, epsilon=epsilon,
                max_length=max_length,
            )
            row = {
                "dataset": dataset,
                "edges": sample.num_edges,
                **run.as_row(),
            }
            rows.append(row)
    return rows, format_table(
        rows,
        title=f"Figure 4 — scalability on {dataset} (scale={scale})",
    )


# ---------------------------------------------------------------------------
# Table 3 — TC-Tree indexing performance
# ---------------------------------------------------------------------------

def experiment_table3(
    scale: str = "tiny",
    datasets: Iterable[str] = ("BK", "GW", "AMINER", "SYN"),
    max_length: int | None = None,
    workers: int = 1,
    backend: str = "thread",
) -> tuple[list[dict], str, dict[str, TCTree]]:
    """Regenerate Table 3: indexing time, peak memory, #nodes.

    ``backend`` defaults to the in-process thread path so the peak-memory
    column stays meaningful (see :func:`repro.bench.runner.run_indexing`).
    """
    rows: list[dict] = []
    trees: dict[str, TCTree] = {}
    for name in datasets:
        network = DATASET_MAKERS[name](scale)
        run, tree = run_indexing(
            network, max_length=max_length, workers=workers, backend=backend
        )
        trees[name] = tree
        rows.append({"dataset": name, **run.as_row()})
    return rows, format_table(
        rows, title=f"Table 3 — TC-Tree indexing (scale={scale})"
    ), trees


# ---------------------------------------------------------------------------
# Figure 5 — query performance (QBA and QBP)
# ---------------------------------------------------------------------------

def experiment_fig5_qba(
    tree: TCTree,
    dataset: str,
    alpha_step: float = 0.1,
    repeats: int = 25,
) -> tuple[list[dict], str]:
    """QBA sweep: q = S, α_q ascending by ``alpha_step`` until empty."""
    rows: list[dict] = []
    alpha = 0.0
    while True:
        run = run_query(tree, pattern=None, alpha=alpha, repeats=repeats)
        rows.append({"dataset": dataset, **run.as_row()})
        if run.metrics["retrieved_nodes"] == 0:
            break
        alpha = round(alpha + alpha_step, 10)
        if alpha > tree.max_alpha() + alpha_step:
            break
    return rows, format_table(
        rows, title=f"Figure 5 (QBA) — query by alpha on {dataset}"
    )


def experiment_fig5_qbp(
    tree: TCTree,
    dataset: str,
    patterns_per_length: int = 20,
    repeats: int = 25,
    seed: int = 5,
) -> tuple[list[dict], str]:
    """QBP sweep: random indexed patterns per length, α_q = 0.

    Mirrors the paper: query patterns are sampled from each TC-Tree layer
    so they always correspond to indexed maximal pattern trusses.
    """
    import random

    rng = random.Random(seed)
    rows: list[dict] = []
    for depth in range(1, tree.depth + 1):
        layer = tree.nodes_at_depth(depth)
        if not layer:
            continue
        chosen = rng.sample(layer, min(patterns_per_length, len(layer)))
        seconds = 0.0
        retrieved = 0
        for node in chosen:
            run = run_query(
                tree, pattern=node.pattern, alpha=0.0, repeats=repeats
            )
            seconds += run.seconds
            retrieved += run.metrics["retrieved_nodes"]
        rows.append(
            {
                "dataset": dataset,
                "pattern_length": depth,
                "seconds": seconds / len(chosen),
                "retrieved_nodes": retrieved / len(chosen),
            }
        )
    return rows, format_table(
        rows, title=f"Figure 5 (QBP) — query by pattern on {dataset}"
    )


# ---------------------------------------------------------------------------
# ablations (our additions, motivated by DESIGN.md)
# ---------------------------------------------------------------------------

def experiment_ablation_pruning(
    dataset: str = "BK",
    scale: str = "tiny",
    alphas: Iterable[float] = (0.0, 0.2, 0.5),
) -> tuple[list[dict], str]:
    """Ablate the two pruning layers: TCS (none) vs TCFA vs TCFI."""
    network = DATASET_MAKERS[dataset](scale)
    rows: list[dict] = []
    for alpha in alphas:
        for method in ("tcs", "tcfa", "tcfi"):
            run = run_mining(network, method, alpha, epsilon=0.1)
            rows.append({"dataset": dataset, **run.as_row()})
    return rows, format_table(
        rows, title=f"Ablation — pruning layers on {dataset} (scale={scale})"
    )


def _experiment_fig5(scale: str) -> str:
    """Both Figure 5 modes on one dataset (BK), via a fresh TC-Tree."""
    _, _, trees = experiment_table3(
        scale=scale, datasets=("BK",), max_length=3
    )
    _, qba = experiment_fig5_qba(trees["BK"], "BK", repeats=5)
    _, qbp = experiment_fig5_qbp(
        trees["BK"], "BK", patterns_per_length=5, repeats=5
    )
    return qba + "\n\n" + qbp


def _experiment_recovery(scale: str) -> str:
    """Planted-community recovery on the check-in surrogate."""
    from repro.core.finder import ThemeCommunityFinder
    from repro.datasets.ground_truth import evaluate_recovery

    network, planted = generate_checkin_network(
        num_users=_scaled(60, 150, 500, scale),
        num_groups=_scaled(6, 12, 40, scale),
        periods=_scaled(20, 25, 40, scale),
        visit_probability=0.75,
        seed=11,
        return_ground_truth=True,
    )
    mined = ThemeCommunityFinder(network).find_communities(
        alpha=0.2, max_length=3
    )
    report = evaluate_recovery(planted, mined, threshold=0.5)
    rows = [
        {
            "planted": report.num_planted,
            "mined": report.num_mined,
            "avg_best_jaccard": round(report.average_best_jaccard, 3),
            "recovery_rate": round(report.recovery_rate, 3),
        }
    ]
    return format_table(
        rows, title=f"Planted-community recovery (scale={scale})"
    )


ALL_EXPERIMENTS = {
    "table2": lambda scale: experiment_table2(scale)[1],
    "fig3": lambda scale: experiment_fig3(scale=scale)[1],
    "fig4": lambda scale: experiment_fig4(scale=scale)[1],
    "table3": lambda scale: experiment_table3(scale=scale)[1],
    "fig5": _experiment_fig5,
    "ablation": lambda scale: experiment_ablation_pruning(scale=scale)[1],
    "recovery": _experiment_recovery,
}
