"""Lazy-loading warehouse query engine (:class:`IndexedWarehouse`).

Answers ``(q, α)`` queries against a binary snapshot without ever
materializing the whole tree: the traversal runs Algorithm 5 over the
snapshot's table of contents, pruning item-disjoint subtrees and
empty-truss subtrees (Proposition 5.2) from TOC data alone, and decodes a
node's decomposition — through a thread-safe LRU carrier cache — only
when the node is actually retrieved.

Answers are bit-identical to :func:`repro.index.query.query_tc_tree` on
the in-memory tree: same trusses, same ``retrieved_nodes``, same
``visited_nodes``. The emptiness prune compares the TOC's per-node
``prune_alpha`` with ``α + COHESION_TOLERANCE`` — exactly the predicate
:meth:`TrussDecomposition.edges_at` evaluates after a decode — so
skipping the decode never changes the answer. A JSON warehouse document
opens through the same API as the compatible fallback (fully decoded at
load, as before).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro._ordering import make_pattern
from repro.core.communities import ThemeCommunity
from repro.core.mptd import COHESION_TOLERANCE
from repro.errors import TCIndexError
from repro.index.decomposition import TrussDecomposition
from repro.index.query import QueryAnswer, query_tc_tree
from repro.index.tctree import TCTree
from repro.obs.metrics import default_registry
from repro.search.topk import Score, default_score, top_k_communities
from repro.serve.snapshot import ROOT, TCTreeSnapshot, is_snapshot_file

#: Default capacity of the decoded-carrier LRU cache, in nodes. Sized so
#: a warm serving mix keeps every hot subtree decoded while a worst-case
#: entry (levels + edges of one node) stays far below the snapshot size.
DEFAULT_CACHE_SIZE = 1024

QuerySpec = tuple[Sequence[int] | None, float]


class CarrierCache:
    """Thread-safe LRU map from snapshot node index to its decomposition.

    Decoding happens outside the lock (it is pure and idempotent), so a
    rare concurrent miss on the same node costs one duplicate decode
    rather than serializing every reader behind the buffer parse.

    The hit/miss counters are private and every read goes through the
    cache lock, so a ``stats()`` taken under concurrent ``get``/``put``
    traffic is a consistent point-in-time view (hits + misses == lookups
    at that instant) rather than a torn pair of mid-update values.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise TCIndexError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: self._lock
        self._misses = 0  # guarded-by: self._lock
        self._entries: OrderedDict[int, TrussDecomposition] = (
            OrderedDict()
        )  # guarded-by: self._lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    def get(self, key: int) -> TrussDecomposition | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: int, value: TrussDecomposition) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
            }


class ServingGeneration:
    """One immutable published generation: backend + its carrier cache.

    Everything a query touches hangs off this one object — the snapshot
    (or tree) and the decoded-carrier cache — so a reader that captured
    a generation reference sees a fully consistent world no matter how
    many times the engine hot-swaps underneath it, and cache entries can
    never leak across generations (each generation owns a fresh cache).
    """

    __slots__ = ("number", "snapshot", "tree", "cache", "snapshot_bytes")

    def __init__(
        self,
        number: int,
        snapshot: TCTreeSnapshot | None = None,
        tree: TCTree | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if (snapshot is None) == (tree is None):
            raise TCIndexError(
                "exactly one of snapshot/tree must be given"
            )
        self.number = number
        self.snapshot = snapshot
        self.tree = tree
        self.cache = CarrierCache(cache_size)
        # Captured once: the file may be replaced or deleted while the
        # live mmap keeps serving, so /stats must not re-stat it.
        self.snapshot_bytes = (
            snapshot.path.stat().st_size
            if snapshot is not None and snapshot.path is not None
            else None
        )

    @property
    def backend(self) -> str:
        return "snapshot" if self.snapshot is not None else "memory"

    @property
    def kind(self) -> str:
        if self.snapshot is not None:
            return self.snapshot.kind
        return getattr(self.tree, "kind", "vertex")

    def close(self) -> None:
        if self.snapshot is not None:
            self.snapshot.close()


class IndexedWarehouse:
    """Read-optimized warehouse facade over a snapshot (or JSON fallback).

    One instance is safe to share across server threads: the snapshot
    buffer is immutable, the carrier cache locks internally, and query
    state is per-call.

    The serving state lives in one :class:`ServingGeneration` reference:
    every query captures it exactly once up front, and :meth:`swap`
    publishes a new generation as a single reference assignment — an
    atomic store under the GIL — so in-flight readers finish on the old
    generation while new ones see the new, and no read can ever observe
    half of each (the hot-swap tier's no-torn-reads guarantee). Retired
    generations stay referenced (their mmaps must outlive in-flight
    readers) and are closed with the engine.
    """

    def __init__(
        self,
        snapshot: TCTreeSnapshot | None = None,
        tree: TCTree | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        self._cache_size = cache_size
        #: Engine generation, bumped by :meth:`swap` under a live server;
        #: surfaced by ``/healthz`` so a load balancer can tell a
        #: restarted/reloaded engine from a stale one.
        self._gen = ServingGeneration(
            1, snapshot=snapshot, tree=tree, cache_size=cache_size
        )
        self._retired: list[ServingGeneration] = (
            []
        )  # guarded-by: self._swap_lock
        self._swap_lock = threading.Lock()
        self._queries_served = 0  # guarded-by: self._count_lock
        self._count_lock = threading.Lock()
        # Aggregate per-query breakdown (snapshot backend): where query
        # wall time goes — TOC walk + prunes vs payload decode — and the
        # node-level traversal counters behind it. Cumulative across
        # generations (it describes the engine, not one index).
        self._qstats = {  # guarded-by: self._count_lock
            "queries": 0,
            "visited_nodes": 0,
            "pruned_pattern": 0,
            "pruned_alpha": 0,
            "retrieved_nodes": 0,
            "toc_seconds": 0.0,
            "decode_seconds": 0.0,
        }

    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls, path: str | Path, cache_size: int = DEFAULT_CACHE_SIZE
    ) -> "IndexedWarehouse":
        """Open a binary snapshot, or a JSON document as the fallback."""
        path = Path(path)
        if is_snapshot_file(path):
            return cls(
                snapshot=TCTreeSnapshot.open(path), cache_size=cache_size
            )
        from repro.index.warehouse import ThemeCommunityWarehouse

        return cls(
            tree=ThemeCommunityWarehouse.load(path).tree,
            cache_size=cache_size,
        )

    def close(self) -> None:
        with self._swap_lock:
            retired, self._retired = self._retired, []
        for generation in retired:
            generation.close()
        self._gen.close()

    def __enter__(self) -> "IndexedWarehouse":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # hot swap
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """The currently served generation number (starts at 1)."""
        return self._gen.number

    @property
    def retired_generations(self) -> int:
        with self._swap_lock:
            return len(self._retired)

    def swap(
        self,
        *,
        snapshot: TCTreeSnapshot | None = None,
        tree: TCTree | None = None,
        number: int | None = None,
    ) -> int:
        """Publish a new serving generation; returns its number.

        The new generation must serve the same tree kind (readers may
        rely on the model never changing under them) and carry a higher
        number (``number=None`` bumps by one). Publication is a single
        reference assignment: in-flight queries that already captured the
        old generation finish on it untouched — its snapshot is retired,
        not closed, until the engine itself closes.
        """
        with self._swap_lock:
            old = self._gen
            generation = ServingGeneration(
                number if number is not None else old.number + 1,
                snapshot=snapshot,
                tree=tree,
                cache_size=self._cache_size,
            )
            if generation.number <= old.number:
                generation.close()
                raise TCIndexError(
                    f"generation {generation.number} does not advance "
                    f"the served generation {old.number}"
                )
            if generation.kind != old.kind:
                generation.close()
                raise TCIndexError(
                    f"cannot swap a {generation.kind!r} index under a "
                    f"{old.kind!r} engine"
                )
            self._retired.append(old)
            # The publication point: one atomic reference store.
            self._gen = generation
        default_registry().counter(
            "repro_engine_swaps_total",
            help="Serving generations published by hot swap.",
        ).inc()
        return generation.number

    def materialize_tree(self):
        """The current generation's index as an in-memory tree.

        The writer-side entry point of the live tier: overlays apply to
        a materialized tree, not to the mmap. On the memory backend this
        is the served tree itself (treat it as immutable — apply-delta
        clones before mutating).
        """
        generation = self._gen
        if generation.tree is not None:
            return generation.tree
        return generation.snapshot.materialize_tree()

    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        return self._gen.backend

    @property
    def kind(self) -> str:
        """Tree model served: ``"vertex"`` or ``"edge"``.

        Snapshots carry it in their header flags (REPROTCS v2 payload
        kind); in-memory trees tag themselves via their class. Queries
        dispatch transparently — edge decompositions answer the same
        ``truss_at`` contract — so the kind is informational (the CLI's
        ``--kind`` guard and ``/stats``).
        """
        return self._gen.kind

    @property
    def num_indexed_trusses(self) -> int:
        generation = self._gen
        if generation.snapshot is not None:
            return generation.snapshot.num_nodes
        return generation.tree.num_nodes  # type: ignore[union-attr]

    @property
    def num_items(self) -> int:
        generation = self._gen
        if generation.snapshot is not None:
            return generation.snapshot.num_items
        return generation.tree.num_items  # type: ignore[union-attr]

    def patterns(self) -> list:
        generation = self._gen
        if generation.snapshot is not None:
            return generation.snapshot.patterns()
        return generation.tree.patterns()  # type: ignore[union-attr]

    def alpha_range(self) -> tuple[float, float]:
        """The non-trivial query range ``[0, α*)`` — TOC-only on snapshots."""
        generation = self._gen
        if generation.snapshot is not None:
            snapshot = generation.snapshot
            return (
                0.0,
                max(
                    (
                        snapshot.prune_alpha(i)
                        for i in range(snapshot.num_nodes)
                    ),
                    default=0.0,
                ),
            )
        return (0.0, generation.tree.max_alpha())  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    def query(
        self,
        pattern: Iterable[int] | None = None,
        alpha: float = 0.0,
    ) -> QueryAnswer:
        """Answer ``(q, α_q)`` — Algorithm 5 over the lazy backend."""
        # Captured exactly once: everything below reads this one
        # generation, so a concurrent swap cannot tear the answer.
        generation = self._gen
        with self._count_lock:
            self._queries_served += 1
        start = time.perf_counter()
        try:
            if generation.tree is not None:
                answer = query_tc_tree(
                    generation.tree, pattern=pattern, alpha=alpha
                )
            else:
                answer = self._query_snapshot(generation, pattern, alpha)
            answer.generation = generation.number
            return answer
        finally:
            default_registry().histogram(
                "repro_query_seconds",
                help="End-to-end warehouse query latency.",
                backend=generation.backend,
            ).observe(time.perf_counter() - start)

    def query_batch(
        self, queries: Iterable[QuerySpec]
    ) -> list[QueryAnswer]:
        """Answer many ``(pattern, alpha)`` pairs against one warm cache.

        Answers come back in input order; the shared carrier cache makes
        the batch asymptotically one decode per distinct retrieved node.
        """
        return [
            self.query(pattern=pattern, alpha=alpha)
            for pattern, alpha in queries
        ]

    def top_k(
        self,
        k: int,
        pattern: Iterable[int] | None = None,
        alpha: float = 0.0,
        score: Score = default_score,
        min_size: int = 3,
    ) -> list[ThemeCommunity]:
        """The ``k`` best-scoring communities of a query answer."""
        return top_k_communities(
            self.query(pattern=pattern, alpha=alpha),
            k,
            score=score,
            min_size=min_size,
        )

    def theme_strength(self, pattern: Iterable[int]) -> float:
        """``max_alpha`` of the indexed node of ``pattern`` (0.0 if none).

        On the snapshot backend this is a TOC lookup plus one cached
        decode — after a query retrieved the node, the carrier cache
        already holds its decomposition, so ranking reads are hits.
        """
        key = make_pattern(pattern)
        generation = self._gen
        if generation.snapshot is not None:
            index = generation.snapshot.node_index(key)
            if index is None:
                return 0.0
            return self._decomposition(generation, index).max_alpha
        node = generation.tree.find_node(key)  # type: ignore[union-attr]
        if node is None or node.decomposition is None:
            return 0.0
        return node.decomposition.max_alpha

    def search(
        self,
        query_vertices: Iterable[int],
        query_attributes: Iterable[int],
        alpha: float = 0.0,
        limit: int | None = None,
    ):
        """Attributed community search over this warehouse (ATC-style)."""
        from repro.search.attributed import attributed_community_search

        return attributed_community_search(
            self,
            query_vertices,
            query_attributes,
            alpha=alpha,
            limit=limit,
        )

    # ------------------------------------------------------------------
    def _decomposition(
        self, generation: ServingGeneration, index: int
    ) -> TrussDecomposition:
        cached = generation.cache.get(index)
        if cached is not None:
            return cached
        decomposition = generation.snapshot.decode(index)  # type: ignore[union-attr]
        generation.cache.put(index, decomposition)
        return decomposition

    def _query_snapshot(
        self,
        generation: ServingGeneration,
        pattern: Iterable[int] | None,
        alpha: float,
    ) -> QueryAnswer:
        if alpha < 0.0:
            raise TCIndexError(f"alpha must be >= 0, got {alpha}")
        snapshot = generation.snapshot
        assert snapshot is not None
        query_pattern = None if pattern is None else make_pattern(pattern)
        query_items = (
            None if query_pattern is None else set(query_pattern)
        )
        answer = QueryAnswer(query_pattern=query_pattern, alpha=alpha)
        bound = alpha + COHESION_TOLERANCE

        start = time.perf_counter()
        decode_seconds = 0.0
        pruned_pattern = pruned_alpha = 0
        queue: deque[int] = deque([ROOT])
        while queue:
            node = queue.popleft()
            for child in snapshot.children(node):
                # Same RN/VN accounting as query_tc_tree: a touched child
                # counts as visited even when a prune discards it.
                answer.visited_nodes += 1
                if (
                    query_items is not None
                    and snapshot.item(child) not in query_items
                ):
                    pruned_pattern += 1
                    continue  # prune subtree: s_{n_c} ∉ q
                if not snapshot.prune_alpha(child) > bound:
                    # Proposition 5.2 prune straight from the offset
                    # table: C*_p(α) reconstructs empty, so neither this
                    # node nor any descendant needs decoding.
                    pruned_alpha += 1
                    continue
                decode_start = time.perf_counter()
                truss = self._decomposition(generation, child).truss_at(alpha)
                decode_seconds += time.perf_counter() - decode_start
                if truss.is_empty():
                    continue  # unreachable on well-formed snapshots
                answer.trusses.append(truss)
                answer.retrieved_nodes += 1
                queue.append(child)
        total = time.perf_counter() - start
        with self._count_lock:
            qstats = self._qstats
            qstats["queries"] += 1
            qstats["visited_nodes"] += answer.visited_nodes
            qstats["pruned_pattern"] += pruned_pattern
            qstats["pruned_alpha"] += pruned_alpha
            qstats["retrieved_nodes"] += answer.retrieved_nodes
            qstats["toc_seconds"] += total - decode_seconds
            qstats["decode_seconds"] += decode_seconds
        default_registry().histogram(
            "repro_query_decode_seconds",
            help="Payload-decode share of snapshot query latency.",
        ).observe(decode_seconds)
        return answer

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Operational counters for the ``/stats`` endpoint."""
        from repro.engine import registry

        generation = self._gen
        with self._count_lock:
            breakdown = dict(self._qstats)
            queries_served = self._queries_served
        info: dict = {
            "backend": generation.backend,
            "kind": generation.kind,
            "model": registry.get_model(generation.kind).display,
            "generation": generation.number,
            "retired_generations": self.retired_generations,
            "indexed_trusses": self.num_indexed_trusses,
            "num_items": self.num_items,
            "queries_served": queries_served,
            "cache": generation.cache.stats(),
            "query_breakdown": breakdown,
        }
        snapshot = generation.snapshot
        if snapshot is not None and snapshot.path is not None:
            info["snapshot_path"] = str(snapshot.path)
            info["snapshot_bytes"] = generation.snapshot_bytes
        return info

    def __repr__(self) -> str:
        return (
            f"IndexedWarehouse(backend={self.backend!r}, "
            f"trusses={self.num_indexed_trusses})"
        )


__all__ = [
    "IndexedWarehouse",
    "CarrierCache",
    "ServingGeneration",
    "DEFAULT_CACHE_SIZE",
]
