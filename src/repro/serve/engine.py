"""Lazy-loading warehouse query engine (:class:`IndexedWarehouse`).

Answers ``(q, α)`` queries against a binary snapshot without ever
materializing the whole tree: the traversal runs Algorithm 5 over the
snapshot's table of contents, pruning item-disjoint subtrees and
empty-truss subtrees (Proposition 5.2) from TOC data alone, and decodes a
node's decomposition — through a thread-safe LRU carrier cache — only
when the node is actually retrieved.

Answers are bit-identical to :func:`repro.index.query.query_tc_tree` on
the in-memory tree: same trusses, same ``retrieved_nodes``, same
``visited_nodes``. The emptiness prune compares the TOC's per-node
``prune_alpha`` with ``α + COHESION_TOLERANCE`` — exactly the predicate
:meth:`TrussDecomposition.edges_at` evaluates after a decode — so
skipping the decode never changes the answer. A JSON warehouse document
opens through the same API as the compatible fallback (fully decoded at
load, as before).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro._ordering import make_pattern
from repro.core.communities import ThemeCommunity
from repro.core.mptd import COHESION_TOLERANCE
from repro.errors import TCIndexError
from repro.index.decomposition import TrussDecomposition
from repro.index.query import QueryAnswer, query_tc_tree
from repro.index.tctree import TCTree
from repro.obs.metrics import default_registry
from repro.search.topk import Score, default_score, top_k_communities
from repro.serve.snapshot import ROOT, TCTreeSnapshot, is_snapshot_file

#: Default capacity of the decoded-carrier LRU cache, in nodes. Sized so
#: a warm serving mix keeps every hot subtree decoded while a worst-case
#: entry (levels + edges of one node) stays far below the snapshot size.
DEFAULT_CACHE_SIZE = 1024

QuerySpec = tuple[Sequence[int] | None, float]


class CarrierCache:
    """Thread-safe LRU map from snapshot node index to its decomposition.

    Decoding happens outside the lock (it is pure and idempotent), so a
    rare concurrent miss on the same node costs one duplicate decode
    rather than serializing every reader behind the buffer parse.

    The hit/miss counters are private and every read goes through the
    cache lock, so a ``stats()`` taken under concurrent ``get``/``put``
    traffic is a consistent point-in-time view (hits + misses == lookups
    at that instant) rather than a torn pair of mid-update values.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise TCIndexError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._hits = 0
        self._misses = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[int, TrussDecomposition] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    def get(self, key: int) -> TrussDecomposition | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: int, value: TrussDecomposition) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
            }


class IndexedWarehouse:
    """Read-optimized warehouse facade over a snapshot (or JSON fallback).

    One instance is safe to share across server threads: the snapshot
    buffer is immutable, the carrier cache locks internally, and query
    state is per-call.
    """

    def __init__(
        self,
        snapshot: TCTreeSnapshot | None = None,
        tree: TCTree | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if (snapshot is None) == (tree is None):
            raise TCIndexError(
                "exactly one of snapshot/tree must be given"
            )
        self._snapshot = snapshot
        self._tree = tree
        self._cache = CarrierCache(cache_size)
        self._queries_served = 0
        self._count_lock = threading.Lock()
        #: Engine generation, bumped by whoever hot-swaps the snapshot
        #: under a live server; surfaced by ``/healthz`` so a load
        #: balancer can tell a restarted/reloaded engine from a stale one.
        self.generation = 1
        # Aggregate per-query breakdown (snapshot backend): where query
        # wall time goes — TOC walk + prunes vs payload decode — and the
        # node-level traversal counters behind it.
        self._qstats = {
            "queries": 0,
            "visited_nodes": 0,
            "pruned_pattern": 0,
            "pruned_alpha": 0,
            "retrieved_nodes": 0,
            "toc_seconds": 0.0,
            "decode_seconds": 0.0,
        }
        # Captured once: the file may be replaced or deleted while the
        # live mmap keeps serving, so /stats must not re-stat it.
        self._snapshot_bytes = (
            snapshot.path.stat().st_size
            if snapshot is not None and snapshot.path is not None
            else None
        )

    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls, path: str | Path, cache_size: int = DEFAULT_CACHE_SIZE
    ) -> "IndexedWarehouse":
        """Open a binary snapshot, or a JSON document as the fallback."""
        path = Path(path)
        if is_snapshot_file(path):
            return cls(
                snapshot=TCTreeSnapshot.open(path), cache_size=cache_size
            )
        from repro.index.warehouse import ThemeCommunityWarehouse

        return cls(
            tree=ThemeCommunityWarehouse.load(path).tree,
            cache_size=cache_size,
        )

    def close(self) -> None:
        if self._snapshot is not None:
            self._snapshot.close()

    def __enter__(self) -> "IndexedWarehouse":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        return "snapshot" if self._snapshot is not None else "memory"

    @property
    def kind(self) -> str:
        """Tree model served: ``"vertex"`` or ``"edge"``.

        Snapshots carry it in their header flags (REPROTCS v2 payload
        kind); in-memory trees tag themselves via their class. Queries
        dispatch transparently — edge decompositions answer the same
        ``truss_at`` contract — so the kind is informational (the CLI's
        ``--kind`` guard and ``/stats``).
        """
        if self._snapshot is not None:
            return self._snapshot.kind
        return getattr(self._tree, "kind", "vertex")

    @property
    def num_indexed_trusses(self) -> int:
        if self._snapshot is not None:
            return self._snapshot.num_nodes
        return self._tree.num_nodes  # type: ignore[union-attr]

    @property
    def num_items(self) -> int:
        if self._snapshot is not None:
            return self._snapshot.num_items
        return self._tree.num_items  # type: ignore[union-attr]

    def patterns(self) -> list:
        if self._snapshot is not None:
            return self._snapshot.patterns()
        return self._tree.patterns()  # type: ignore[union-attr]

    def alpha_range(self) -> tuple[float, float]:
        """The non-trivial query range ``[0, α*)`` — TOC-only on snapshots."""
        if self._snapshot is not None:
            snapshot = self._snapshot
            return (
                0.0,
                max(
                    (
                        snapshot.prune_alpha(i)
                        for i in range(snapshot.num_nodes)
                    ),
                    default=0.0,
                ),
            )
        return (0.0, self._tree.max_alpha())  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    def query(
        self,
        pattern: Iterable[int] | None = None,
        alpha: float = 0.0,
    ) -> QueryAnswer:
        """Answer ``(q, α_q)`` — Algorithm 5 over the lazy backend."""
        with self._count_lock:
            self._queries_served += 1
        start = time.perf_counter()
        try:
            if self._tree is not None:
                return query_tc_tree(
                    self._tree, pattern=pattern, alpha=alpha
                )
            return self._query_snapshot(pattern, alpha)
        finally:
            default_registry().histogram(
                "repro_query_seconds",
                help="End-to-end warehouse query latency.",
                backend=self.backend,
            ).observe(time.perf_counter() - start)

    def query_batch(
        self, queries: Iterable[QuerySpec]
    ) -> list[QueryAnswer]:
        """Answer many ``(pattern, alpha)`` pairs against one warm cache.

        Answers come back in input order; the shared carrier cache makes
        the batch asymptotically one decode per distinct retrieved node.
        """
        return [
            self.query(pattern=pattern, alpha=alpha)
            for pattern, alpha in queries
        ]

    def top_k(
        self,
        k: int,
        pattern: Iterable[int] | None = None,
        alpha: float = 0.0,
        score: Score = default_score,
        min_size: int = 3,
    ) -> list[ThemeCommunity]:
        """The ``k`` best-scoring communities of a query answer."""
        return top_k_communities(
            self.query(pattern=pattern, alpha=alpha),
            k,
            score=score,
            min_size=min_size,
        )

    def theme_strength(self, pattern: Iterable[int]) -> float:
        """``max_alpha`` of the indexed node of ``pattern`` (0.0 if none).

        On the snapshot backend this is a TOC lookup plus one cached
        decode — after a query retrieved the node, the carrier cache
        already holds its decomposition, so ranking reads are hits.
        """
        key = make_pattern(pattern)
        if self._snapshot is not None:
            index = self._snapshot.node_index(key)
            if index is None:
                return 0.0
            return self._decomposition(index).max_alpha
        node = self._tree.find_node(key)  # type: ignore[union-attr]
        if node is None or node.decomposition is None:
            return 0.0
        return node.decomposition.max_alpha

    def search(
        self,
        query_vertices: Iterable[int],
        query_attributes: Iterable[int],
        alpha: float = 0.0,
        limit: int | None = None,
    ):
        """Attributed community search over this warehouse (ATC-style)."""
        from repro.search.attributed import attributed_community_search

        return attributed_community_search(
            self,
            query_vertices,
            query_attributes,
            alpha=alpha,
            limit=limit,
        )

    # ------------------------------------------------------------------
    def _decomposition(self, index: int) -> TrussDecomposition:
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        decomposition = self._snapshot.decode(index)  # type: ignore[union-attr]
        self._cache.put(index, decomposition)
        return decomposition

    def _query_snapshot(
        self, pattern: Iterable[int] | None, alpha: float
    ) -> QueryAnswer:
        if alpha < 0.0:
            raise TCIndexError(f"alpha must be >= 0, got {alpha}")
        snapshot = self._snapshot
        assert snapshot is not None
        query_pattern = None if pattern is None else make_pattern(pattern)
        query_items = (
            None if query_pattern is None else set(query_pattern)
        )
        answer = QueryAnswer(query_pattern=query_pattern, alpha=alpha)
        bound = alpha + COHESION_TOLERANCE

        start = time.perf_counter()
        decode_seconds = 0.0
        pruned_pattern = pruned_alpha = 0
        queue: deque[int] = deque([ROOT])
        while queue:
            node = queue.popleft()
            for child in snapshot.children(node):
                # Same RN/VN accounting as query_tc_tree: a touched child
                # counts as visited even when a prune discards it.
                answer.visited_nodes += 1
                if (
                    query_items is not None
                    and snapshot.item(child) not in query_items
                ):
                    pruned_pattern += 1
                    continue  # prune subtree: s_{n_c} ∉ q
                if not snapshot.prune_alpha(child) > bound:
                    # Proposition 5.2 prune straight from the offset
                    # table: C*_p(α) reconstructs empty, so neither this
                    # node nor any descendant needs decoding.
                    pruned_alpha += 1
                    continue
                decode_start = time.perf_counter()
                truss = self._decomposition(child).truss_at(alpha)
                decode_seconds += time.perf_counter() - decode_start
                if truss.is_empty():
                    continue  # unreachable on well-formed snapshots
                answer.trusses.append(truss)
                answer.retrieved_nodes += 1
                queue.append(child)
        total = time.perf_counter() - start
        with self._count_lock:
            qstats = self._qstats
            qstats["queries"] += 1
            qstats["visited_nodes"] += answer.visited_nodes
            qstats["pruned_pattern"] += pruned_pattern
            qstats["pruned_alpha"] += pruned_alpha
            qstats["retrieved_nodes"] += answer.retrieved_nodes
            qstats["toc_seconds"] += total - decode_seconds
            qstats["decode_seconds"] += decode_seconds
        default_registry().histogram(
            "repro_query_decode_seconds",
            help="Payload-decode share of snapshot query latency.",
        ).observe(decode_seconds)
        return answer

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Operational counters for the ``/stats`` endpoint."""
        from repro.engine import registry

        with self._count_lock:
            breakdown = dict(self._qstats)
        info: dict = {
            "backend": self.backend,
            "kind": self.kind,
            "model": registry.get_model(self.kind).display,
            "generation": self.generation,
            "indexed_trusses": self.num_indexed_trusses,
            "num_items": self.num_items,
            "queries_served": self._queries_served,
            "cache": self._cache.stats(),
            "query_breakdown": breakdown,
        }
        if self._snapshot is not None and self._snapshot.path is not None:
            info["snapshot_path"] = str(self._snapshot.path)
            info["snapshot_bytes"] = self._snapshot_bytes
        return info

    def __repr__(self) -> str:
        return (
            f"IndexedWarehouse(backend={self.backend!r}, "
            f"trusses={self.num_indexed_trusses})"
        )


__all__ = [
    "IndexedWarehouse",
    "CarrierCache",
    "DEFAULT_CACHE_SIZE",
]
