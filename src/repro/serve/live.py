"""Writer side of the live-index tier (:class:`LiveIndex`).

The serving engine (:class:`~repro.serve.engine.IndexedWarehouse`) is
read-only and generation-swappable; this module is the single writer
that feeds it. A :class:`LiveIndex` keeps the authoritative in-memory
tree of the served index, applies generation-stamped overlay files
(:class:`~repro.serve.snapshot.DeltaSnapshot`) to it, and publishes each
result as a new engine generation — the HTAP split: queries never block
on maintenance, maintenance never tears a query.

Generation chain and compaction: every applied overlay must name the
currently served generation as its base (a stale or out-of-order overlay
is refused), so the served index is always ``base snapshot + an overlay
chain``. After :attr:`compact_threshold` consecutive overlay
publications the writer compacts — it writes a fresh full snapshot of
the current tree next to the watch directory and swaps the engine back
onto the mmap-backed snapshot, resetting the chain.

``watch()`` runs the file-driven flavor as a daemon thread: overlay
files (``*.tcdelta``) dropped into a directory are applied in name
order, which is what ``repro serve --watch`` wires up. The HTTP-driven
flavor is ``POST /admin/apply-delta`` on the server.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from repro.errors import ServeError, TCIndexError
from repro.obs.metrics import default_registry
from repro.serve.engine import IndexedWarehouse
from repro.serve.snapshot import (
    DeltaSnapshot,
    TCTreeSnapshot,
    apply_delta_to_tree,
    write_snapshot,
)

#: Overlay publications between compactions: after this many in-memory
#: generations the writer persists a full snapshot and swaps the engine
#: back onto the mmap path (bounds both the retired-generation list and
#: recovery time after a restart).
COMPACT_OVERLAY_THRESHOLD = 4

#: Overlay files the watcher picks up.
WATCH_SUFFIX = ".tcdelta"


class LiveIndex:
    """Single-writer delta ingestion over a hot-swappable engine."""

    def __init__(
        self,
        engine: IndexedWarehouse,
        directory: str | Path | None = None,
        compact_threshold: int = COMPACT_OVERLAY_THRESHOLD,
    ) -> None:
        if compact_threshold < 1:
            raise ServeError(
                f"compact threshold must be >= 1, got {compact_threshold}"
            )
        self._engine = engine
        # The writer's authoritative tree: overlays apply to this, never
        # to the engine's (possibly mmap-backed) serving state.
        self._lock = threading.Lock()
        self._tree = engine.materialize_tree()  # guarded-by: self._lock
        self._overlays_since_compaction = 0  # guarded-by: self._lock
        self._deltas_applied = 0  # guarded-by: self._lock
        self.directory = Path(directory) if directory is not None else None
        self.compact_threshold = compact_threshold
        self._watcher: threading.Thread | None = None
        self._stop = threading.Event()
        self._seen_paths: set[Path] = set()
        #: Problems the watcher thread hit, newest last (bounded) — a
        #: daemon thread has nowhere to raise to.
        self.watch_errors: list[str] = []

    # ------------------------------------------------------------------
    @property
    def engine(self) -> IndexedWarehouse:
        return self._engine

    @property
    def generation(self) -> int:
        return self._engine.generation

    @property
    def overlays_since_compaction(self) -> int:
        with self._lock:
            return self._overlays_since_compaction

    @property
    def deltas_applied(self) -> int:
        with self._lock:
            return self._deltas_applied

    def stats(self) -> dict:
        """Writer-side bookkeeping for ``/stats``."""
        with self._lock:
            return {
                "deltas_applied": self._deltas_applied,
                "overlays_since_compaction": (
                    self._overlays_since_compaction
                ),
                "compact_threshold": self.compact_threshold,
                "watching": str(self.directory)
                if self.directory is not None
                else None,
                "watch_errors": list(self.watch_errors),
            }

    # ------------------------------------------------------------------
    def apply_delta(self, delta: DeltaSnapshot | str | Path) -> dict:
        """Apply one overlay and publish the result as a new generation.

        ``delta`` is a parsed :class:`DeltaSnapshot` or a path to one.
        Its ``base_generation`` must equal the currently served
        generation (:class:`TCIndexError` otherwise — the overlay chain
        admits no gaps and no reordering). Returns a summary dict:
        ``{"generation", "removed", "changed", "compacted"}``.
        """
        if not isinstance(delta, DeltaSnapshot):
            delta = DeltaSnapshot.open(delta)
        start = time.perf_counter()
        with self._lock:
            served = self._engine.generation
            if delta.base_generation != served:
                raise TCIndexError(
                    f"overlay base generation {delta.base_generation} "
                    f"does not match the served generation {served}"
                )
            new_tree = apply_delta_to_tree(self._tree, delta)
            compacted = False
            if (
                self.directory is not None
                and self._overlays_since_compaction + 1
                >= self.compact_threshold
            ):
                path = (
                    self.directory / f"gen-{delta.generation:08d}.tcsnap"
                )
                write_snapshot(new_tree, path)
                generation = self._engine.swap(
                    snapshot=TCTreeSnapshot.open(path),
                    number=delta.generation,
                )
                self._overlays_since_compaction = 0
                compacted = True
            else:
                generation = self._engine.swap(
                    tree=new_tree, number=delta.generation
                )
                self._overlays_since_compaction += 1
            self._tree = new_tree
            self._deltas_applied += 1
        registry = default_registry()
        registry.counter(
            "repro_live_deltas_applied_total",
            help="Overlay deltas applied and published by the live index.",
        ).inc()
        registry.histogram(
            "repro_live_publish_seconds",
            help="Delta apply-and-publish latency (staleness floor).",
        ).observe(time.perf_counter() - start)
        return {
            "generation": generation,
            "removed": delta.num_removed,
            "changed": delta.num_changed,
            "compacted": compacted,
        }

    def publish_tree(self, tree) -> int:
        """Publish an already-maintained tree as the next generation.

        The in-process flavor (no overlay file): a writer that maintains
        the tree itself — e.g. via
        :func:`repro.index.updates.apply_deltas` — hands the result
        straight to the engine. Returns the new generation number.
        """
        with self._lock:
            generation = self._engine.swap(tree=tree)
            self._tree = tree
            self._overlays_since_compaction += 1
            self._deltas_applied += 1
        default_registry().counter(
            "repro_live_deltas_applied_total",
            help="Overlay deltas applied and published by the live index.",
        ).inc()
        return generation

    # ------------------------------------------------------------------
    def poll_once(self, directory: str | Path | None = None) -> int:
        """One watcher pass: apply every eligible overlay in name order.

        Files whose base matches the served generation are applied;
        already-superseded overlays (``generation <=`` served) are
        skipped permanently; future-based overlays are left for a later
        pass (their predecessor may still be mid-write). Returns the
        number of overlays applied.
        """
        root = Path(directory) if directory is not None else self.directory
        if root is None:
            raise ServeError("no watch directory configured")
        applied = 0
        for path in sorted(root.glob(f"*{WATCH_SUFFIX}")):
            if path in self._seen_paths:
                continue
            try:
                delta = DeltaSnapshot.open(path)
                if delta.generation <= self._engine.generation:
                    self._seen_paths.add(path)
                    continue
                if delta.base_generation != self._engine.generation:
                    continue  # predecessor not applied yet; retry later
                self.apply_delta(delta)
                self._seen_paths.add(path)
                applied += 1
            except Exception as exc:  # noqa: BLE001 — surfaced via list
                self._seen_paths.add(path)
                self.watch_errors.append(f"{path.name}: {exc}")
                del self.watch_errors[:-20]
        return applied

    def watch(
        self,
        directory: str | Path | None = None,
        poll_interval: float = 0.5,
    ) -> threading.Thread:
        """Start the polling watcher thread (idempotent)."""
        if directory is not None:
            self.directory = Path(directory)
        if self.directory is None:
            raise ServeError("no watch directory configured")
        if self._watcher is not None and self._watcher.is_alive():
            return self._watcher

        def loop() -> None:
            while not self._stop.is_set():
                self.poll_once()
                self._stop.wait(poll_interval)

        self._stop.clear()
        self._watcher = threading.Thread(
            target=loop, name="live-index-watcher", daemon=True
        )
        self._watcher.start()
        return self._watcher

    def stop(self) -> None:
        """Stop the watcher thread (no-op when not watching)."""
        self._stop.set()
        if self._watcher is not None:
            self._watcher.join(timeout=5.0)
            self._watcher = None

    def __repr__(self) -> str:
        return (
            f"LiveIndex(generation={self.generation}, "
            f"deltas_applied={self.deltas_applied}, "
            f"overlays={self.overlays_since_compaction})"
        )


__all__ = [
    "COMPACT_OVERLAY_THRESHOLD",
    "LiveIndex",
    "WATCH_SUFFIX",
]
