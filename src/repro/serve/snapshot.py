"""Binary TC-Tree snapshot format (serving-layer persistence, version 1).

The JSON warehouse document re-parses every node on every load, so query
latency on the CLI path is dominated by deserialization. The snapshot
packs the same information into flat little-endian sections with a
per-node offset table, so a reader can open the file, learn the whole
tree *shape* from the table of contents alone, and decode an individual
node's decomposition only when a query actually retrieves it.

Layout (all integers little-endian)::

    header   <8sIIQQQQ : magic "REPROTCS", version, flags,
                          num_items, num_nodes, toc_off, payload_off
    TOC      five flat arrays of num_nodes entries each:
               items        int64  — item appended at the node
               parents      int64  — index of the parent node (-1 = root)
               offsets      uint64 — payload offset, relative to payload_off
               lengths      uint64 — payload byte length
               prune_alphas float64 — least α at which C*_p(α) is empty
    payload  one blob per node:
               <QQQ num_frequencies, num_levels, num_edges
               vertices  int64[num_frequencies]
               values    float64[num_frequencies]
               alphas    float64[num_levels]
               counts    uint64[num_levels]   (removed edges per level)
               edge_u    int64[num_edges]     (flat across levels)
               edge_v    int64[num_edges]

Nodes appear in depth-first preorder (parents before children, siblings
in item order ≺), so the TOC alone reconstructs every pattern and the
child adjacency. ``prune_alphas`` mirrors the emptiness test of
:meth:`~repro.index.decomposition.TrussDecomposition.edges_at` exactly:
``C*_p(α)`` is empty iff ``prune_alpha <= α + COHESION_TOLERANCE``, so
the engine prunes Proposition 5.2 subtrees without touching the payload.

JSON (:class:`~repro.index.warehouse.ThemeCommunityWarehouse` documents)
remains the compatible interchange format; :func:`migrate_json_to_snapshot`
converts existing indexes, and both loaders sniff the magic bytes.
"""

from __future__ import annotations

import mmap
import os
import struct
import sys
from array import array
from pathlib import Path

from repro._ordering import Pattern
from repro.engine import registry
from repro.errors import TCIndexError
from repro.index.decomposition import DecompositionLevel, TrussDecomposition
from repro.index.tcnode import TCNode
from repro.index.tctree import TCTree
from repro.obs.trace import span

MAGIC = b"REPROTCS"
VERSION = 1

#: Version 2 extends the format with a payload *kind*: the header flags
#: carry :data:`FLAG_EDGE` and every payload then stores an edge TC-Tree
#: node — frequencies keyed by canonical edge pairs (``freq_u``/``freq_v``
#: int64 arrays replace the v1 ``vertices`` array) rather than by vertex.
#: Vertex trees keep writing byte-identical v1 files; readers accept
#: both, so v1 stays the cross-version back-compat witness.
EDGE_VERSION = 2
FLAG_EDGE = 1

_HEADER = struct.Struct("<8sIIQQQQ")
_PAYLOAD_PREFIX = struct.Struct("<QQQ")

#: Sentinel parent index of layer-1 nodes (children of the virtual root).
ROOT = -1

_BIG_ENDIAN = sys.byteorder == "big"


def _array_bytes(typecode: str, values) -> bytes:
    """Serialize ``values`` as a little-endian flat array."""
    arr = array(typecode, values)
    if _BIG_ENDIAN:
        arr.byteswap()
    return arr.tobytes()


def _array_from(typecode: str, buffer, count: int) -> array:
    """Deserialize ``count`` little-endian items from ``buffer``."""
    arr = array(typecode)
    arr.frombytes(bytes(buffer[: count * arr.itemsize]))
    if _BIG_ENDIAN:
        arr.byteswap()
    if len(arr) != count:
        raise TCIndexError("truncated snapshot section")
    return arr


def prune_alpha_of(decomposition: TrussDecomposition) -> float:
    """The least α at which ``C*_p(α)`` reconstructs empty.

    ``edges_at(α)`` keeps levels with ``alpha > α + tolerance`` — the
    result is non-empty iff some such level carries edges, so the cutoff
    is the largest threshold among edge-carrying levels (0.0 when the
    decomposition holds no edges at all).
    """
    return max(
        (
            level.alpha
            for level in decomposition.levels
            if level.removed_edges
        ),
        default=0.0,
    )


def _encode_payload(decomposition: TrussDecomposition) -> bytes:
    vertices = sorted(decomposition.frequencies)
    values = [decomposition.frequencies[v] for v in vertices]
    alphas: list[float] = []
    counts: list[int] = []
    edge_u: list[int] = []
    edge_v: list[int] = []
    for level in decomposition.levels:
        alphas.append(level.alpha)
        counts.append(len(level.removed_edges))
        for u, v in level.removed_edges:
            edge_u.append(u)
            edge_v.append(v)
    return b"".join(
        (
            _PAYLOAD_PREFIX.pack(len(vertices), len(alphas), len(edge_u)),
            _array_bytes("q", vertices),
            _array_bytes("d", values),
            _array_bytes("d", alphas),
            _array_bytes("Q", counts),
            _array_bytes("q", edge_u),
            _array_bytes("q", edge_v),
        )
    )


def _encode_edge_payload(decomposition) -> bytes:
    """v2 edge-kind payload: frequencies keyed by canonical edge pairs."""
    freq_edges = sorted(decomposition.frequencies)
    values = [decomposition.frequencies[e] for e in freq_edges]
    alphas: list[float] = []
    counts: list[int] = []
    edge_u: list[int] = []
    edge_v: list[int] = []
    for level in decomposition.levels:
        alphas.append(level.alpha)
        counts.append(len(level.removed_edges))
        for u, v in level.removed_edges:
            edge_u.append(u)
            edge_v.append(v)
    return b"".join(
        (
            _PAYLOAD_PREFIX.pack(len(freq_edges), len(alphas), len(edge_u)),
            _array_bytes("q", [u for u, _ in freq_edges]),
            _array_bytes("q", [v for _, v in freq_edges]),
            _array_bytes("d", values),
            _array_bytes("d", alphas),
            _array_bytes("Q", counts),
            _array_bytes("q", edge_u),
            _array_bytes("q", edge_v),
        )
    )


def _decode_edge_payload(pattern: Pattern, blob):
    from repro.edgenet.decomposition import (
        EdgeDecompositionLevel,
        EdgeTrussDecomposition,
    )

    if len(blob) < _PAYLOAD_PREFIX.size:
        raise TCIndexError("truncated snapshot payload")
    num_freq, num_levels, num_edges = _PAYLOAD_PREFIX.unpack_from(blob, 0)
    view = memoryview(blob)[_PAYLOAD_PREFIX.size:]
    freq_u = _array_from("q", view, num_freq)
    view = view[num_freq * 8:]
    freq_v = _array_from("q", view, num_freq)
    view = view[num_freq * 8:]
    values = _array_from("d", view, num_freq)
    view = view[num_freq * 8:]
    alphas = _array_from("d", view, num_levels)
    view = view[num_levels * 8:]
    counts = _array_from("Q", view, num_levels)
    view = view[num_levels * 8:]
    edge_u = _array_from("q", view, num_edges)
    view = view[num_edges * 8:]
    edge_v = _array_from("q", view, num_edges)
    levels: list = []
    cursor = 0
    for k in range(num_levels):
        count = counts[k]
        levels.append(
            EdgeDecompositionLevel(
                alphas[k],
                [
                    (edge_u[e], edge_v[e])
                    for e in range(cursor, cursor + count)
                ],
            )
        )
        cursor += count
    if cursor != num_edges:
        raise TCIndexError("snapshot level edge counts disagree with total")
    return EdgeTrussDecomposition(
        pattern=pattern,
        levels=levels,
        frequencies={
            (freq_u[i], freq_v[i]): values[i] for i in range(num_freq)
        },
    )


def _decode_payload(pattern: Pattern, blob) -> TrussDecomposition:
    if len(blob) < _PAYLOAD_PREFIX.size:
        raise TCIndexError("truncated snapshot payload")
    num_freq, num_levels, num_edges = _PAYLOAD_PREFIX.unpack_from(blob, 0)
    view = memoryview(blob)[_PAYLOAD_PREFIX.size:]
    vertices = _array_from("q", view, num_freq)
    view = view[num_freq * 8:]
    values = _array_from("d", view, num_freq)
    view = view[num_freq * 8:]
    alphas = _array_from("d", view, num_levels)
    view = view[num_levels * 8:]
    counts = _array_from("Q", view, num_levels)
    view = view[num_levels * 8:]
    edge_u = _array_from("q", view, num_edges)
    view = view[num_edges * 8:]
    edge_v = _array_from("q", view, num_edges)
    levels: list[DecompositionLevel] = []
    cursor = 0
    for k in range(num_levels):
        count = counts[k]
        levels.append(
            DecompositionLevel(
                alphas[k],
                [
                    (edge_u[e], edge_v[e])
                    for e in range(cursor, cursor + count)
                ],
            )
        )
        cursor += count
    if cursor != num_edges:
        raise TCIndexError("snapshot level edge counts disagree with total")
    return TrussDecomposition(
        pattern=pattern,
        levels=levels,
        frequencies=dict(zip(vertices, values)),
    )


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------

def write_snapshot(tree, path: str | Path) -> int:
    """Serialize ``tree`` to ``path``; returns the snapshot byte size.

    Accepts any registered tree model, dispatching on ``tree.kind``
    through :mod:`repro.engine.registry`: a vertex :class:`TCTree`
    writes a (byte-stable) v1 file, an
    :class:`~repro.edgenet.index.EdgeTCTree` writes a v2 file with the
    :data:`FLAG_EDGE` payload-kind flag set.
    """
    with span(
        "snapshot.write", kind=getattr(tree, "kind", "vertex")
    ) as sp:
        size = _write_snapshot(tree, path)
        sp.set_attr("bytes", size)
        return size


def _write_snapshot(tree, path: str | Path) -> int:
    spec = registry.model_for_tree(tree)
    if not spec.has_snapshot:
        raise TCIndexError(
            f"model {spec.name!r} declares no snapshot payload kind"
        )
    encode = spec.encode_payload
    items: list[int] = []
    parents: list[int] = []
    offsets: list[int] = []
    lengths: list[int] = []
    prune_alphas: list[float] = []
    index_of: dict[Pattern, int] = {}
    payload = bytearray()
    for node in tree.iter_nodes():
        decomposition = node.decomposition
        if decomposition is None or node.item is None:
            raise TCIndexError(
                f"node {node.pattern} has no decomposition; "
                "only built trees can be snapshotted"
            )
        parent_pattern = node.pattern[:-1]
        if parent_pattern and parent_pattern not in index_of:
            raise TCIndexError(
                f"node {node.pattern} appears before its parent"
            )
        index_of[node.pattern] = len(items)
        items.append(node.item)
        parents.append(
            index_of[parent_pattern] if parent_pattern else ROOT
        )
        blob = encode(decomposition)
        offsets.append(len(payload))
        lengths.append(len(blob))
        prune_alphas.append(prune_alpha_of(decomposition))
        payload.extend(blob)

    num_nodes = len(items)
    toc = b"".join(
        (
            _array_bytes("q", items),
            _array_bytes("q", parents),
            _array_bytes("Q", offsets),
            _array_bytes("Q", lengths),
            _array_bytes("d", prune_alphas),
        )
    )
    header = _HEADER.pack(
        MAGIC,
        spec.snapshot_version,
        spec.snapshot_flags,
        tree.num_items,
        num_nodes,
        _HEADER.size,
        _HEADER.size + len(toc),
    )
    # Write-to-temp + atomic rename: a live server mmaps the target
    # file, and truncating a mapped inode in place would SIGBUS it —
    # replacement must swap the whole inode or nothing.
    path = Path(path)
    temporary = path.with_name(path.name + ".tmp")
    try:
        with temporary.open("wb") as handle:
            handle.write(header)
            handle.write(toc)
            handle.write(payload)
        os.replace(temporary, path)
    except BaseException:
        temporary.unlink(missing_ok=True)
        raise
    return len(header) + len(toc) + len(payload)


def estimate_snapshot_bytes(
    num_nodes: int,
    total_levels: int,
    total_edges: int,
    total_frequencies: int,
    kind: str = "vertex",
) -> int:
    """Exact snapshot size implied by the format, from count statistics.

    ``kind`` names the registered model whose payload layout applies: a
    vertex frequency entry costs 16 bytes (vertex + value), an edge one
    24 (both endpoints + value).
    """
    per_frequency = registry.get_model(kind).frequency_entry_bytes
    return (
        _HEADER.size
        + num_nodes * (5 * 8 + _PAYLOAD_PREFIX.size)
        + per_frequency * total_frequencies
        + 16 * (total_levels + total_edges)
    )


# ---------------------------------------------------------------------------
# reader
# ---------------------------------------------------------------------------

class TCTreeSnapshot:
    """A memory-mapped binary TC-Tree snapshot with on-demand decoding.

    Opening parses only the header and the table of contents: the item,
    parent link, payload extent, and pruning threshold of every node.
    Patterns and the child adjacency come from that alone; a node's
    decomposition is decoded from its payload slice only when
    :meth:`decode` is called (the engine does so only for retrieved
    nodes, through its LRU cache).
    """

    def __init__(self, buffer, path: Path | None = None) -> None:
        self.path = path
        self._buffer = buffer
        self._mmap: mmap.mmap | None = None
        if len(buffer) < _HEADER.size:
            raise TCIndexError("not a TC-Tree snapshot: file too short")
        (
            magic,
            version,
            flags,
            self.num_items,
            self.num_nodes,
            toc_off,
            self._payload_off,
        ) = _HEADER.unpack_from(buffer, 0)
        if magic != MAGIC:
            raise TCIndexError(
                f"not a TC-Tree snapshot: bad magic {magic!r}"
            )
        # A (version, flags) pair no registered tree model claims is
        # from a future writer we don't know — e.g. a v2 file without
        # the edge payload-kind flag.
        spec = registry.model_for_snapshot(version, flags)
        if spec is None:
            raise TCIndexError(f"unsupported snapshot version {version}")
        self._spec = spec
        self.kind = spec.name
        n = self.num_nodes
        if self._payload_off > len(buffer) or toc_off + 40 * n > len(buffer):
            raise TCIndexError("truncated snapshot: TOC out of bounds")
        # Copy the TOC region out of the buffer: memoryviews over an
        # mmap would pin it open (BufferError on close) from the frames
        # a parse error's traceback keeps alive.
        view = memoryview(bytes(buffer[toc_off: toc_off + 40 * n]))
        self.items = _array_from("q", view, n)
        view = view[8 * n:]
        self.parents = _array_from("q", view, n)
        view = view[8 * n:]
        self.offsets = _array_from("Q", view, n)
        view = view[8 * n:]
        self.lengths = _array_from("Q", view, n)
        view = view[8 * n:]
        self.prune_alphas = _array_from("d", view, n)

        payload_size = len(buffer) - self._payload_off
        self._patterns: list[Pattern] = []
        self._children: list[list[int]] = [[] for _ in range(n)]
        self._root_children: list[int] = []
        seen_siblings: set[tuple[int, int]] = set()
        for i in range(n):
            parent = self.parents[i]
            if parent == ROOT:
                pattern: Pattern = (self.items[i],)
            elif 0 <= parent < i:
                pattern = self._patterns[parent] + (self.items[i],)
            else:
                raise TCIndexError(
                    f"snapshot node {i} has invalid parent {parent}"
                )
            # Same invariant from_dict enforces on JSON documents: two
            # siblings carrying one item are two nodes for one pattern —
            # a malformed tree that double-counts trusses in queries.
            sibling_key = (parent, self.items[i])
            if sibling_key in seen_siblings:
                raise TCIndexError(
                    f"duplicate node for pattern {pattern}"
                )
            seen_siblings.add(sibling_key)
            self._patterns.append(pattern)
            if parent == ROOT:
                self._root_children.append(i)
            else:
                self._children[parent].append(i)
            if self.offsets[i] + self.lengths[i] > payload_size:
                raise TCIndexError(
                    f"snapshot node {i} payload out of bounds"
                )

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: str | Path) -> "TCTreeSnapshot":
        """Map ``path`` read-only and parse its table of contents."""
        path = Path(path)
        with path.open("rb") as handle:
            try:
                mapped = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
            except ValueError:  # zero-length file cannot be mapped
                raise TCIndexError(
                    "not a TC-Tree snapshot: file too short"
                ) from None
        try:
            snapshot = cls(mapped, path=path)
        except Exception:
            mapped.close()
            raise
        snapshot._mmap = mapped
        return snapshot

    def close(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None

    def __enter__(self) -> "TCTreeSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def children(self, index: int) -> list[int]:
        """Child node indices of ``index`` (:data:`ROOT` for layer 1)."""
        if index == ROOT:
            return self._root_children
        return self._children[index]

    def item(self, index: int) -> int:
        return self.items[index]

    def pattern(self, index: int) -> Pattern:
        return self._patterns[index]

    def prune_alpha(self, index: int) -> float:
        """Least α at which node ``index`` answers empty (TOC, no decode)."""
        return self.prune_alphas[index]

    def patterns(self) -> list[Pattern]:
        return sorted(self._patterns)

    def decode(self, index: int) -> TrussDecomposition:
        """Decode node ``index``'s decomposition from its payload slice.

        Returns a :class:`TrussDecomposition` on vertex snapshots and an
        :class:`~repro.edgenet.decomposition.EdgeTrussDecomposition` on
        edge ones — both answer ``truss_at``/``max_alpha``, which is all
        the query engine needs.
        """
        start = self._payload_off + self.offsets[index]
        blob = self._buffer[start: start + self.lengths[index]]
        return self._spec.decode_payload(self._patterns[index], blob)

    def node_index(self, pattern: Pattern) -> int | None:
        """TOC index of ``pattern``, or ``None`` if it is not a node.

        The pattern→index map is built lazily on first use — pure TOC
        arithmetic, no payload decoding — so point lookups (e.g.
        strength reads on query results) skip the preorder scan.
        """
        index_of = getattr(self, "_index_of", None)
        if index_of is None:
            index_of = {p: i for i, p in enumerate(self._patterns)}
            self._index_of = index_of
        return index_of.get(tuple(pattern))

    # ------------------------------------------------------------------
    def materialize(self):
        """Decode every node into an in-memory warehouse (migration path)."""
        from repro.index.warehouse import ThemeCommunityWarehouse

        if self.kind == "edge":
            raise TCIndexError(
                "edge snapshots hold no vertex warehouse; use "
                "materialize_edge_tree() or the lazy query engine"
            )
        root = TCNode(None, (), None)
        nodes: list[TCNode] = []
        for i in range(self.num_nodes):
            node = TCNode(self.items[i], self._patterns[i], self.decode(i))
            parent = self.parents[i]
            (root if parent == ROOT else nodes[parent]).add_child(node)
            nodes.append(node)
        return ThemeCommunityWarehouse(
            TCTree(root, num_items=self.num_items)
        )

    def materialize_edge_tree(self):
        """Decode every node into an in-memory :class:`EdgeTCTree`."""
        from repro.edgenet.index import EdgeTCNode, EdgeTCTree

        if self.kind != "edge":
            raise TCIndexError(
                "vertex snapshots materialize via materialize()"
            )
        root = EdgeTCNode(None, (), None)
        nodes: list[EdgeTCNode] = []
        for i in range(self.num_nodes):
            node = EdgeTCNode(
                self.items[i], self._patterns[i], self.decode(i)
            )
            parent = self.parents[i]
            (root if parent == ROOT else nodes[parent]).add_child(node)
            nodes.append(node)
        return EdgeTCTree(root, num_items=self.num_items)

    def materialize_tree(self):
        """Decode every node into this snapshot kind's in-memory tree.

        Model-agnostic entry point: whichever registered tree model
        wrote the file supplies the materializer, so callers (the CLI's
        ``stats``, tooling) need no per-kind branching.
        """
        return self._spec.materialize(self)

    def __repr__(self) -> str:
        return (
            f"TCTreeSnapshot(nodes={self.num_nodes}, kind={self.kind!r}, "
            f"items={self.num_items}, path={self.path})"
        )


# ---------------------------------------------------------------------------
# generation-stamped delta snapshots (base + overlay chain)
# ---------------------------------------------------------------------------

DELTA_MAGIC = b"REPROTCD"
DELTA_VERSION = 1

#: header <8sIIQQQQQ : magic "REPROTCD", version, flags (payload kind,
#: same values as the full-snapshot flags), generation, base_generation,
#: num_items (universe size after the delta), num_removed, num_changed.
#: Followed by the removed-pattern section (lengths + flat items), the
#: changed-node section (lengths + flat items + offsets + lengths +
#: prune_alphas), then the payload blobs — one per changed node, in the
#: payload encoding of the model the flags name. Removed patterns and
#: changed nodes are sorted lexicographically, so writes are byte-stable
#: and parents always precede children on apply.
_DELTA_HEADER = struct.Struct("<8sIIQQQQQ")


def _model_for_delta_flags(flags: int):
    for name in registry.tree_model_names():
        spec = registry.get_model(name)
        if spec.has_snapshot and spec.snapshot_flags == flags:
            return spec
    return None


def diff_trees(base_tree, new_tree):
    """``(removed, changed)`` between two trees of one kind.

    ``removed`` is the sorted list of patterns indexed in ``base_tree``
    but absent from ``new_tree``; ``changed`` the sorted list of
    ``(pattern, decomposition)`` pairs that are new or whose
    decomposition differs. Reused decompositions are recognized by
    identity first (the incremental maintainer shares unaffected ``L_p``
    objects between generations, so most nodes cost one ``is`` check)
    with encoded-byte equality as the fallback witness.
    """
    spec = registry.model_for_tree(new_tree)
    if registry.model_for_tree(base_tree) is not spec:
        raise TCIndexError(
            "cannot diff trees of different kinds "
            f"({base_tree.kind!r} vs {new_tree.kind!r})"
        )
    encode = spec.encode_payload
    base_of = {
        node.pattern: node.decomposition for node in base_tree.iter_nodes()
    }
    new_patterns = set()
    changed: list[tuple[Pattern, object]] = []
    for node in new_tree.iter_nodes():
        new_patterns.add(node.pattern)
        old = base_of.get(node.pattern)
        if old is node.decomposition:
            continue
        if old is not None and encode(old) == encode(node.decomposition):
            continue
        changed.append((node.pattern, node.decomposition))
    changed.sort(key=lambda entry: entry[0])
    removed = sorted(set(base_of) - new_patterns)
    return removed, changed


def write_delta_snapshot(
    base_tree,
    new_tree,
    path: str | Path,
    *,
    generation: int,
    base_generation: int,
) -> int:
    """Serialize the ``base_tree → new_tree`` difference to ``path``.

    The file is an overlay: applied (:func:`apply_delta_to_tree`) to a
    tree equal to ``base_tree``, it reproduces ``new_tree`` exactly.
    ``generation``/``base_generation`` stamp the chain link — a reader
    must refuse to apply an overlay whose ``base_generation`` is not the
    generation it currently serves. Byte-stable for equal inputs; atomic
    (write-to-temp + rename) like :func:`write_snapshot`.
    """
    if generation <= base_generation:
        raise TCIndexError(
            f"delta generation {generation} must exceed its base "
            f"{base_generation}"
        )
    with span(
        "snapshot.write_delta", kind=getattr(new_tree, "kind", "vertex")
    ) as sp:
        spec = registry.model_for_tree(new_tree)
        if not spec.has_snapshot:
            raise TCIndexError(
                f"model {spec.name!r} declares no snapshot payload kind"
            )
        removed, changed = diff_trees(base_tree, new_tree)
        encode = spec.encode_payload
        offsets: list[int] = []
        lengths: list[int] = []
        prune_alphas: list[float] = []
        payload = bytearray()
        for _pattern, decomposition in changed:
            blob = encode(decomposition)
            offsets.append(len(payload))
            lengths.append(len(blob))
            prune_alphas.append(prune_alpha_of(decomposition))
            payload.extend(blob)
        toc = b"".join(
            (
                _array_bytes("Q", [len(p) for p in removed]),
                _array_bytes("q", [i for p in removed for i in p]),
                _array_bytes("Q", [len(p) for p, _ in changed]),
                _array_bytes("q", [i for p, _ in changed for i in p]),
                _array_bytes("Q", offsets),
                _array_bytes("Q", lengths),
                _array_bytes("d", prune_alphas),
            )
        )
        header = _DELTA_HEADER.pack(
            DELTA_MAGIC,
            DELTA_VERSION,
            spec.snapshot_flags,
            generation,
            base_generation,
            new_tree.num_items,
            len(removed),
            len(changed),
        )
        path = Path(path)
        temporary = path.with_name(path.name + ".tmp")
        try:
            with temporary.open("wb") as handle:
                handle.write(header)
                handle.write(toc)
                handle.write(payload)
            os.replace(temporary, path)
        except BaseException:
            temporary.unlink(missing_ok=True)
            raise
        size = len(header) + len(toc) + len(payload)
        sp.set_attr("bytes", size)
        sp.set_attr("removed", len(removed))
        sp.set_attr("changed", len(changed))
        return size


class DeltaSnapshot:
    """A parsed generation-stamped overlay file.

    Small by construction (it carries only the changed subtrees), so the
    whole file is read eagerly — no mmap, no lazy decoding. Changed-node
    decompositions still decode on demand through :meth:`decode`.
    """

    def __init__(self, buffer: bytes, path: Path | None = None) -> None:
        self.path = path
        self._buffer = buffer
        if len(buffer) < _DELTA_HEADER.size:
            raise TCIndexError("not a TC-Tree delta snapshot: file too short")
        (
            magic,
            version,
            flags,
            self.generation,
            self.base_generation,
            self.num_items,
            num_removed,
            num_changed,
        ) = _DELTA_HEADER.unpack_from(buffer, 0)
        if magic != DELTA_MAGIC:
            raise TCIndexError(
                f"not a TC-Tree delta snapshot: bad magic {magic!r}"
            )
        if version != DELTA_VERSION:
            raise TCIndexError(
                f"unsupported delta snapshot version {version}"
            )
        spec = _model_for_delta_flags(flags)
        if spec is None:
            raise TCIndexError(
                f"unsupported delta snapshot payload flags {flags:#x}"
            )
        self._spec = spec
        self.kind = spec.name

        view = memoryview(buffer)[_DELTA_HEADER.size:]

        def take(typecode: str, count: int):
            nonlocal view
            arr = _array_from(typecode, view, count)
            view = view[count * arr.itemsize:]
            return arr

        def patterns_section(count: int) -> list[Pattern]:
            pattern_lengths = take("Q", count)
            flat = take("q", sum(pattern_lengths))
            patterns: list[Pattern] = []
            cursor = 0
            for length in pattern_lengths:
                if length == 0:
                    raise TCIndexError(
                        "delta snapshot carries an empty pattern"
                    )
                patterns.append(tuple(flat[cursor: cursor + length]))
                cursor += length
            return patterns

        self.removed_patterns = patterns_section(num_removed)
        self.changed_patterns = patterns_section(num_changed)
        self.offsets = take("Q", num_changed)
        self.lengths = take("Q", num_changed)
        self.prune_alphas = take("d", num_changed)
        self._payload_off = len(buffer) - len(view)
        payload_size = len(view)
        for i in range(num_changed):
            if self.offsets[i] + self.lengths[i] > payload_size:
                raise TCIndexError(
                    f"delta snapshot node {i} payload out of bounds"
                )

    @classmethod
    def open(cls, path: str | Path) -> "DeltaSnapshot":
        path = Path(path)
        return cls(path.read_bytes(), path=path)

    @property
    def num_removed(self) -> int:
        return len(self.removed_patterns)

    @property
    def num_changed(self) -> int:
        return len(self.changed_patterns)

    def decode(self, index: int):
        """Decode changed node ``index``'s decomposition."""
        start = self._payload_off + self.offsets[index]
        blob = self._buffer[start: start + self.lengths[index]]
        return self._spec.decode_payload(self.changed_patterns[index], blob)

    def __repr__(self) -> str:
        return (
            f"DeltaSnapshot(generation={self.generation}, "
            f"base={self.base_generation}, kind={self.kind!r}, "
            f"removed={self.num_removed}, changed={self.num_changed})"
        )


def apply_delta_to_tree(tree, delta: DeltaSnapshot):
    """Apply an overlay to an in-memory tree, returning a new tree.

    ``tree`` is left untouched (readers keep querying it); the result
    shares every unchanged decomposition with it. Raises
    :class:`TCIndexError` when the overlay does not fit — wrong kind, a
    removed pattern that is not indexed, or an added node whose parent
    does not exist (both symptoms of applying an overlay to the wrong
    base generation; the serving layer checks the generation stamp
    before calling, this is the structural backstop).
    """
    from repro.index.updates import clone_tree

    spec = registry.model_for_tree(tree)
    if spec.name != delta.kind:
        raise TCIndexError(
            f"cannot apply {delta.kind!r} delta to {spec.name!r} tree"
        )
    new_tree = clone_tree(tree)
    # Children sort after their parents lexicographically, so reverse
    # order removes leaves first — every removed pattern must still be
    # present when its turn comes.
    for pattern in sorted(delta.removed_patterns, reverse=True):
        parent = (
            new_tree.root
            if len(pattern) == 1
            else new_tree.find_node(pattern[:-1])
        )
        node = new_tree.find_node(pattern)
        if parent is None or node is None:
            raise TCIndexError(
                f"delta removes pattern {pattern} which is not indexed"
            )
        parent.children.remove(node)
    for index, pattern in enumerate(delta.changed_patterns):
        decomposition = delta.decode(index)
        node = new_tree.find_node(pattern)
        if node is not None:
            node.decomposition = decomposition
            continue
        parent = (
            new_tree.root
            if len(pattern) == 1
            else new_tree.find_node(pattern[:-1])
        )
        if parent is None:
            raise TCIndexError(
                f"delta adds node {pattern} whose parent is not indexed"
            )
        parent.add_child(spec.node_cls(pattern[-1], pattern, decomposition))
    return spec.make_tree(new_tree.root, delta.num_items)


def is_delta_snapshot_file(path: str | Path) -> bool:
    """True when ``path`` starts with the delta-snapshot magic bytes."""
    try:
        with Path(path).open("rb") as handle:
            return handle.read(len(DELTA_MAGIC)) == DELTA_MAGIC
    except OSError:
        return False


# ---------------------------------------------------------------------------
# format sniffing + migration
# ---------------------------------------------------------------------------

def is_snapshot_file(path: str | Path) -> bool:
    """True when ``path`` starts with the snapshot magic bytes."""
    try:
        with Path(path).open("rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def migrate_json_to_snapshot(
    json_path: str | Path, snapshot_path: str | Path
) -> tuple[int, int]:
    """Convert a JSON warehouse document to a binary snapshot.

    Returns ``(json_bytes, snapshot_bytes)``. The conversion is lossless:
    patterns, thresholds, removed-edge lists, and frequencies round-trip
    exactly (floats are binary64 in both formats).
    """
    from repro.index.warehouse import ThemeCommunityWarehouse

    json_path = Path(json_path)
    warehouse = ThemeCommunityWarehouse.load(json_path)
    snapshot_bytes = write_snapshot(warehouse.tree, snapshot_path)
    return json_path.stat().st_size, snapshot_bytes


__all__ = [
    "MAGIC",
    "VERSION",
    "EDGE_VERSION",
    "FLAG_EDGE",
    "ROOT",
    "DELTA_MAGIC",
    "DELTA_VERSION",
    "DeltaSnapshot",
    "TCTreeSnapshot",
    "apply_delta_to_tree",
    "diff_trees",
    "is_delta_snapshot_file",
    "write_delta_snapshot",
    "write_snapshot",
    "estimate_snapshot_bytes",
    "is_snapshot_file",
    "migrate_json_to_snapshot",
    "prune_alpha_of",
]
