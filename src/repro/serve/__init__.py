"""The warehouse serving layer (build-once / query-many, Section 6).

The analytical side of the system — parallel TC-Tree construction — feeds
this read-optimized serving path:

- :mod:`repro.serve.snapshot` — a versioned binary TC-Tree snapshot whose
  per-node offset table lets a single node's decomposition be decoded on
  demand, plus a JSON→binary migration path;
- :mod:`repro.serve.engine` — :class:`IndexedWarehouse`, a lazy-decoding
  query engine with an LRU carrier cache, offset-table subtree pruning,
  batched execution, and top-k integration. Answers are bit-identical to
  :func:`repro.index.query.query_tc_tree` on the in-memory tree;
- :mod:`repro.serve.server` — a threaded stdlib HTTP endpoint
  (``/query``, ``/top-k``, ``/stats``, ``/healthz``) sharing one engine
  across requests; exposed as ``repro serve``.
"""

from repro.serve.engine import IndexedWarehouse
from repro.serve.snapshot import (
    TCTreeSnapshot,
    is_snapshot_file,
    migrate_json_to_snapshot,
    write_snapshot,
)
from repro.serve.server import create_server

__all__ = [
    "IndexedWarehouse",
    "TCTreeSnapshot",
    "is_snapshot_file",
    "migrate_json_to_snapshot",
    "write_snapshot",
    "create_server",
]
