"""The warehouse serving layer (build-once / query-many, Section 6).

The analytical side of the system — parallel TC-Tree construction — feeds
this read-optimized serving path:

- :mod:`repro.serve.snapshot` — a versioned binary TC-Tree snapshot whose
  per-node offset table lets a single node's decomposition be decoded on
  demand, a JSON→binary migration path, and generation-stamped overlay
  deltas (``REPROTCD``) for incremental publication;
- :mod:`repro.serve.engine` — :class:`IndexedWarehouse`, a lazy-decoding
  query engine with an LRU carrier cache, offset-table subtree pruning,
  batched execution, and top-k integration. Serving state is bundled
  into immutable :class:`ServingGeneration` objects swapped atomically,
  so readers never see a torn index. Answers are bit-identical to
  :func:`repro.index.query.query_tc_tree` on the in-memory tree;
- :mod:`repro.serve.live` — :class:`LiveIndex`, the single writer that
  applies overlay deltas, compacts the chain back to a full snapshot,
  and optionally watches a directory for new overlays;
- :mod:`repro.serve.server` — a threaded stdlib HTTP endpoint
  (``/query``, ``/top-k``, ``/stats``, ``/healthz``,
  ``/admin/apply-delta``) sharing one engine across requests; exposed
  as ``repro serve``.
"""

from repro.serve.engine import IndexedWarehouse, ServingGeneration
from repro.serve.live import LiveIndex
from repro.serve.snapshot import (
    DeltaSnapshot,
    TCTreeSnapshot,
    apply_delta_to_tree,
    diff_trees,
    is_delta_snapshot_file,
    is_snapshot_file,
    migrate_json_to_snapshot,
    write_delta_snapshot,
    write_snapshot,
)
from repro.serve.server import create_server

__all__ = [
    "DeltaSnapshot",
    "IndexedWarehouse",
    "LiveIndex",
    "ServingGeneration",
    "TCTreeSnapshot",
    "apply_delta_to_tree",
    "create_server",
    "diff_trees",
    "is_delta_snapshot_file",
    "is_snapshot_file",
    "migrate_json_to_snapshot",
    "write_delta_snapshot",
    "write_snapshot",
]
