"""Threaded HTTP query server over one shared :class:`IndexedWarehouse`.

Stdlib-only (``http.server``): one engine instance is shared by every
request thread — the snapshot buffer is immutable and the carrier cache
locks internally, so concurrent queries are answered from one warm cache.

Endpoints (all JSON):

- ``GET /healthz`` — liveness: ``{"status": "ok"}``;
- ``GET /stats`` — engine counters (backend, cache hits/misses, queries
  served, snapshot size);
- ``GET /query?alpha=0.2&pattern=3,7`` — one ``(q, α)`` answer in
  :meth:`QueryAnswer.to_payload` form; omit ``pattern`` for ``q = S``;
- ``POST /query`` with body ``{"queries": [{"pattern": [3,7]|null,
  "alpha": 0.2}, ...]}`` — batched execution against the shared cache;
- ``GET /top-k?k=5&alpha=0.2&pattern=3,7&min-size=3`` — the k
  best-scoring theme communities of the answer;
- ``GET /search?vertices=1,2&attributes=3,7&alpha=0.2&limit=5`` —
  attributed community search (ATC-style): communities containing every
  query vertex, themed within the query attributes, best-first.

Run it with ``repro serve INDEX [--host H] [--port P] [--cache-size N]``
(accepts both binary snapshots and JSON warehouse documents).
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.errors import ReproError
from repro.serve.engine import IndexedWarehouse


def _parse_pattern(text: str | None):
    if text is None or text == "":
        return None
    try:
        return tuple(int(part) for part in text.split(","))
    except ValueError:
        raise ValueError(
            f"pattern must be comma-separated integers, got {text!r}"
        ) from None


def _parse_float(params: dict, name: str, default: float) -> float:
    raw = params.get(name, [None])[0]
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None
    return _finite(value, name)


def _finite(value: float, name: str) -> float:
    # NaN/Infinity would sail through the engine's `alpha < 0` guard and
    # come back as bare `NaN` literals that strict JSON parsers reject.
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def _parse_int(params: dict, name: str, default: int) -> int:
    raw = params.get(name, [None])[0]
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


def _community_payload(community) -> dict:
    return {
        "pattern": list(community.pattern),
        "alpha": community.alpha,
        "size": community.size,
        "members": sorted(community.members),
    }


class WarehouseRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the server's shared engine."""

    protocol_version = "HTTP/1.1"
    server: "ThemeCommunityServer"

    # ------------------------------------------------------------------
    def _send_json(self, payload: dict | list, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, message: str, status: int = 400) -> None:
        self._send_json({"error": message}, status=status)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlsplit(self.path)
        params = parse_qs(url.query)
        try:
            if url.path == "/healthz":
                self._send_json({"status": "ok"})
            elif url.path == "/stats":
                self._send_json(self.server.engine.stats())
            elif url.path == "/query":
                answer = self.server.engine.query(
                    pattern=_parse_pattern(
                        params.get("pattern", [None])[0]
                    ),
                    alpha=_parse_float(params, "alpha", 0.0),
                )
                self._send_json(answer.to_payload())
            elif url.path == "/top-k":
                communities = self.server.engine.top_k(
                    k=_parse_int(params, "k", 10),
                    pattern=_parse_pattern(
                        params.get("pattern", [None])[0]
                    ),
                    alpha=_parse_float(params, "alpha", 0.0),
                    min_size=_parse_int(params, "min-size", 3),
                )
                self._send_json(
                    {
                        "k": len(communities),
                        "communities": [
                            _community_payload(c) for c in communities
                        ],
                    }
                )
            elif url.path == "/search":
                vertices = _parse_pattern(
                    params.get("vertices", [None])[0]
                )
                if vertices is None:
                    raise ValueError(
                        "vertices is required (comma-separated ids)"
                    )
                attributes = _parse_pattern(
                    params.get("attributes", [None])[0]
                )
                if attributes is None:
                    raise ValueError(
                        "attributes is required (comma-separated ids)"
                    )
                matches = self.server.engine.search(
                    vertices,
                    attributes,
                    alpha=_parse_float(params, "alpha", 0.0),
                    limit=_parse_int(params, "limit", 0) or None,
                )
                self._send_json(
                    {
                        "matches": [
                            {
                                "pattern": list(match.pattern),
                                "coverage": match.coverage,
                                "strength": match.strength,
                                "community": _community_payload(
                                    match.community
                                ),
                            }
                            for match in matches
                        ]
                    }
                )
            else:
                self._send_error_json(
                    f"unknown endpoint {url.path}", status=404
                )
        except (ValueError, ReproError) as exc:
            self._send_error_json(str(exc))

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        url = urlsplit(self.path)
        # HTTP/1.1 keeps connections alive, so the body must be drained
        # even on error paths — leftover bytes would be parsed as the
        # start of the next request on a pooled connection.
        length = int(self.headers.get("Content-Length", "0"))
        body = self.rfile.read(length)
        if url.path != "/query":
            self._send_error_json(
                f"unknown endpoint {url.path}", status=404
            )
            return
        try:
            document = json.loads(body or b"{}")
            if not isinstance(document, dict):
                raise ValueError(
                    'body must be an object with a "queries" list'
                )
            queries = document.get("queries")
            if not isinstance(queries, list):
                raise ValueError('body must carry a "queries" list')
            specs = []
            for entry in queries:
                if not isinstance(entry, dict):
                    raise ValueError(
                        f"each query must be an object, got {entry!r}"
                    )
                pattern = entry.get("pattern")
                if pattern is not None:
                    # Same coercion as GET's _parse_pattern: item ids
                    # must be integers (a bare string would otherwise
                    # iterate into characters and silently prune all).
                    if isinstance(pattern, str) or not isinstance(
                        pattern, (list, tuple)
                    ):
                        raise ValueError(
                            f"pattern must be a list of item ids, "
                            f"got {pattern!r}"
                        )
                    pattern = tuple(int(item) for item in pattern)
                specs.append(
                    (
                        pattern,
                        _finite(
                            float(entry.get("alpha", 0.0)), "alpha"
                        ),
                    )
                )
            answers = self.server.engine.query_batch(specs)
            self._send_json(
                {"answers": [answer.to_payload() for answer in answers]}
            )
        except (ValueError, KeyError, TypeError, ReproError) as exc:
            self._send_error_json(str(exc))

    # Quiet by default: the serving benchmark and the concurrency tests
    # hammer the endpoint, and per-request stderr lines drown real logs.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)


class ThemeCommunityServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared engine."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        engine: IndexedWarehouse,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, WarehouseRequestHandler)
        self.engine = engine
        self.verbose = verbose


def create_server(
    engine: IndexedWarehouse,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ThemeCommunityServer:
    """Bind a server on ``(host, port)`` (port 0 = ephemeral)."""
    return ThemeCommunityServer((host, port), engine, verbose=verbose)


def start_server_thread(
    engine: IndexedWarehouse, host: str = "127.0.0.1", port: int = 0
) -> tuple[ThemeCommunityServer, threading.Thread]:
    """Run a server in a daemon thread; returns ``(server, thread)``.

    Test/benchmark helper: the caller reads the bound port from
    ``server.server_address`` and must call ``server.shutdown()``.
    """
    server = create_server(engine, host=host, port=port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


__all__ = [
    "WarehouseRequestHandler",
    "ThemeCommunityServer",
    "create_server",
    "start_server_thread",
]
