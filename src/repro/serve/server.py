"""Threaded HTTP query server over one shared :class:`IndexedWarehouse`.

Stdlib-only (``http.server``): one engine instance is shared by every
request thread — the snapshot buffer is immutable and the carrier cache
locks internally, so concurrent queries are answered from one warm cache.

Endpoints (JSON unless noted):

- ``GET /healthz`` — liveness + identity: uptime seconds, serving
  backend/kind, snapshot path, engine generation;
- ``GET /stats`` — engine counters (backend, cache hits/misses, queries
  served, per-query breakdown, snapshot size) plus per-endpoint request
  latency percentiles;
- ``GET /metrics`` — Prometheus text exposition (format 0.0.4): the
  process-wide :mod:`repro.obs.metrics` registry (request histograms,
  in-flight gauge, engine route counters, triangle/build counters) plus
  engine-level gauges collected from :meth:`IndexedWarehouse.stats` at
  scrape time;
- ``GET /query?alpha=0.2&pattern=3,7`` — one ``(q, α)`` answer in
  :meth:`QueryAnswer.to_payload` form; omit ``pattern`` for ``q = S``;
- ``POST /query`` with body ``{"queries": [{"pattern": [3,7]|null,
  "alpha": 0.2}, ...]}`` — batched execution against the shared cache;
- ``GET /top-k?k=5&alpha=0.2&pattern=3,7&min-size=3`` — the k
  best-scoring theme communities of the answer;
- ``GET /search?vertices=1,2&attributes=3,7&alpha=0.2&limit=5`` —
  attributed community search (ATC-style): communities containing every
  query vertex, themed within the query attributes, best-first;
- ``POST /admin/apply-delta`` with body ``{"path": "X.tcdelta"}`` —
  live-tier only (``repro serve --live``): hand an overlay delta
  snapshot to the server's :class:`~repro.serve.live.LiveIndex`, which
  applies it and hot-swaps the engine onto the new generation; responds
  with ``{"generation", "removed", "changed", "compacted"}``.

Error responses are structured: ``{"error": message, "code": stable
machine code, "type": exception class name}`` with 404 for unknown
endpoints, 400 for invalid requests (:mod:`repro.errors` taxonomy and
parse failures), and 500 for everything else.

Run it with ``repro serve INDEX [--host H] [--port P] [--cache-size N]``
(accepts both binary snapshots and JSON warehouse documents).
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    BadRequestError,
    ReproError,
    ServeError,
    UnknownEndpointError,
)
from repro.obs.metrics import (
    EXPOSITION_CONTENT_TYPE,
    default_registry,
    format_sample,
)
from repro.serve.engine import IndexedWarehouse

#: Endpoint label whitelist: request metrics label by these, and any
#: other path collapses to "other" so scanners cannot explode the
#: per-label cardinality of the request counter.
KNOWN_ENDPOINTS = frozenset(
    {
        "/healthz",
        "/stats",
        "/metrics",
        "/query",
        "/top-k",
        "/search",
        "/admin/apply-delta",
    }
)

_REQUEST_SECONDS = "repro_http_request_seconds"
_REQUESTS_TOTAL = "repro_http_requests_total"
_INFLIGHT = "repro_http_inflight_requests"


def _parse_pattern(text: str | None):
    if text is None or text == "":
        return None
    try:
        return tuple(int(part) for part in text.split(","))
    except ValueError:
        raise BadRequestError(
            f"pattern must be comma-separated integers, got {text!r}"
        ) from None


def _parse_float(params: dict, name: str, default: float) -> float:
    raw = params.get(name, [None])[0]
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise BadRequestError(f"{name} must be a number, got {raw!r}") from None
    return _finite(value, name)


def _finite(value: float, name: str) -> float:
    # NaN/Infinity would sail through the engine's `alpha < 0` guard and
    # come back as bare `NaN` literals that strict JSON parsers reject.
    if not math.isfinite(value):
        raise BadRequestError(f"{name} must be finite, got {value!r}")
    return value


def _parse_int(params: dict, name: str, default: int) -> int:
    raw = params.get(name, [None])[0]
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise BadRequestError(f"{name} must be an integer, got {raw!r}") from None


def _community_payload(community) -> dict:
    return {
        "pattern": list(community.pattern),
        "alpha": community.alpha,
        "size": community.size,
        "members": sorted(community.members),
    }


def _error_shape(exc: BaseException) -> tuple[int, str]:
    """HTTP status + stable machine ``code`` for an exception."""
    if isinstance(exc, UnknownEndpointError):
        return 404, "not_found"
    if isinstance(exc, (ValueError, KeyError, TypeError, ReproError)):
        return 400, "bad_request"
    return 500, "internal_error"


class WarehouseRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the server's shared engine."""

    protocol_version = "HTTP/1.1"
    server: "ThemeCommunityServer"

    # ------------------------------------------------------------------
    def _send_body(
        self, body: bytes, content_type: str, status: int
    ) -> None:
        self._response_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload: dict | list, status: int = 200) -> None:
        self._send_body(
            json.dumps(payload).encode("utf-8"), "application/json", status
        )

    def _send_error_json(self, exc: BaseException) -> None:
        status, code = _error_shape(exc)
        try:
            self._send_json(
                {
                    "error": str(exc),
                    "code": code,
                    "type": type(exc).__name__,
                },
                status=status,
            )
        except OSError:
            # The client is gone (broken pipe mid-response); the request
            # metrics below still record the failure status.
            self._response_status = status

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._instrumented("GET", self._route_get)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._instrumented("POST", self._route_post)

    def _instrumented(self, method: str, route) -> None:
        """Run one request with in-flight/latency/status accounting."""
        url = urlsplit(self.path)
        endpoint = url.path if url.path in KNOWN_ENDPOINTS else "other"
        registry = default_registry()
        inflight = registry.gauge(
            _INFLIGHT, help="HTTP requests currently being handled."
        )
        inflight.inc()
        self._response_status = 200
        start = time.perf_counter()
        try:
            try:
                route(url, parse_qs(url.query))
            except Exception as exc:
                self._send_error_json(exc)
        finally:
            elapsed = time.perf_counter() - start
            inflight.dec()
            registry.histogram(
                _REQUEST_SECONDS,
                help="HTTP request handling latency.",
                method=method,
                endpoint=endpoint,
            ).observe(elapsed)
            registry.counter(
                _REQUESTS_TOTAL,
                help="HTTP requests handled, by endpoint and status.",
                method=method,
                endpoint=endpoint,
                status=str(self._response_status),
            ).inc()

    # ------------------------------------------------------------------
    def _route_get(self, url, params: dict) -> None:
        if url.path == "/healthz":
            self._send_json(self._healthz_payload())
        elif url.path == "/stats":
            self._send_json(self._stats_payload())
        elif url.path == "/metrics":
            self._send_body(
                self._metrics_text().encode("utf-8"),
                EXPOSITION_CONTENT_TYPE,
                200,
            )
        elif url.path == "/query":
            answer = self.server.engine.query(
                pattern=_parse_pattern(params.get("pattern", [None])[0]),
                alpha=_parse_float(params, "alpha", 0.0),
            )
            self._send_json(answer.to_payload())
        elif url.path == "/top-k":
            communities = self.server.engine.top_k(
                k=_parse_int(params, "k", 10),
                pattern=_parse_pattern(params.get("pattern", [None])[0]),
                alpha=_parse_float(params, "alpha", 0.0),
                min_size=_parse_int(params, "min-size", 3),
            )
            self._send_json(
                {
                    "k": len(communities),
                    "communities": [
                        _community_payload(c) for c in communities
                    ],
                }
            )
        elif url.path == "/search":
            vertices = _parse_pattern(params.get("vertices", [None])[0])
            if vertices is None:
                raise BadRequestError(
                    "vertices is required (comma-separated ids)"
                )
            attributes = _parse_pattern(
                params.get("attributes", [None])[0]
            )
            if attributes is None:
                raise BadRequestError(
                    "attributes is required (comma-separated ids)"
                )
            matches = self.server.engine.search(
                vertices,
                attributes,
                alpha=_parse_float(params, "alpha", 0.0),
                limit=_parse_int(params, "limit", 0) or None,
            )
            self._send_json(
                {
                    "matches": [
                        {
                            "pattern": list(match.pattern),
                            "coverage": match.coverage,
                            "strength": match.strength,
                            "community": _community_payload(
                                match.community
                            ),
                        }
                        for match in matches
                    ]
                }
            )
        else:
            raise UnknownEndpointError(f"unknown endpoint {url.path}")

    def _route_post(self, url, params: dict) -> None:
        # HTTP/1.1 keeps connections alive, so the body must be drained
        # even on error paths — leftover bytes would be parsed as the
        # start of the next request on a pooled connection.
        length = int(self.headers.get("Content-Length", "0"))
        body = self.rfile.read(length)
        if url.path == "/admin/apply-delta":
            self._apply_delta(body)
            return
        if url.path != "/query":
            raise UnknownEndpointError(f"unknown endpoint {url.path}")
        document = json.loads(body or b"{}")
        if not isinstance(document, dict):
            raise BadRequestError('body must be an object with a "queries" list')
        queries = document.get("queries")
        if not isinstance(queries, list):
            raise BadRequestError('body must carry a "queries" list')
        specs = []
        for entry in queries:
            if not isinstance(entry, dict):
                raise BadRequestError(
                    f"each query must be an object, got {entry!r}"
                )
            pattern = entry.get("pattern")
            if pattern is not None:
                # Same coercion as GET's _parse_pattern: item ids
                # must be integers (a bare string would otherwise
                # iterate into characters and silently prune all).
                if isinstance(pattern, str) or not isinstance(
                    pattern, (list, tuple)
                ):
                    raise BadRequestError(
                        f"pattern must be a list of item ids, "
                        f"got {pattern!r}"
                    )
                pattern = tuple(int(item) for item in pattern)
            specs.append(
                (
                    pattern,
                    _finite(float(entry.get("alpha", 0.0)), "alpha"),
                )
            )
        answers = self.server.engine.query_batch(specs)
        self._send_json(
            {"answers": [answer.to_payload() for answer in answers]}
        )

    def _apply_delta(self, body: bytes) -> None:
        live = self.server.live
        if live is None:
            raise ServeError(
                "delta ingestion is disabled; start with repro serve --live"
            )
        document = json.loads(body or b"{}")
        if not isinstance(document, dict) or "path" not in document:
            raise BadRequestError('body must be an object with a "path" field')
        self._send_json(live.apply_delta(document["path"]))

    # ------------------------------------------------------------------
    def _healthz_payload(self) -> dict:
        engine = self.server.engine
        payload: dict = {
            "status": "ok",
            "uptime_seconds": time.monotonic() - self.server.started,
            "backend": engine.backend,
            "kind": engine.kind,
            "generation": engine.generation,
        }
        info = engine.stats()
        if "snapshot_path" in info:
            payload["snapshot_path"] = info["snapshot_path"]
        return payload

    def _stats_payload(self) -> dict:
        info = self.server.engine.stats()
        info["uptime_seconds"] = time.monotonic() - self.server.started
        endpoints: dict[str, dict] = {}
        for key, histogram in (
            default_registry().histograms(_REQUEST_SECONDS).items()
        ):
            labels = dict(key)
            label = (
                f"{labels.get('method', '?')} "
                f"{labels.get('endpoint', '?')}"
            )
            summary = histogram.percentiles()
            summary["count"] = histogram.count
            endpoints[label] = summary
        info["endpoints"] = endpoints
        if self.server.live is not None:
            info["live"] = self.server.live.stats()
        return info

    def _metrics_text(self) -> str:
        """Registry exposition + engine gauges collected at scrape time.

        Engine-level values (cache hit/miss, queries served, traversal
        breakdown) live in the engine's own locked counters; rendering
        them here as collector samples avoids double-bookkeeping every
        increment into two places.
        """
        info = self.server.engine.stats()
        cache = info["cache"]
        breakdown = info.get("query_breakdown", {})
        lines = [
            "# HELP repro_engine_queries_served_total "
            "Queries answered by the shared engine.",
            "# TYPE repro_engine_queries_served_total counter",
            format_sample(
                "repro_engine_queries_served_total",
                {},
                info["queries_served"],
            ),
            "# HELP repro_engine_cache_lookups_total "
            "Carrier-cache lookups, by outcome.",
            "# TYPE repro_engine_cache_lookups_total counter",
            format_sample(
                "repro_engine_cache_lookups_total",
                {"outcome": "hit"},
                cache["hits"],
            ),
            format_sample(
                "repro_engine_cache_lookups_total",
                {"outcome": "miss"},
                cache["misses"],
            ),
            "# HELP repro_engine_cache_entries Decoded carriers cached.",
            "# TYPE repro_engine_cache_entries gauge",
            format_sample(
                "repro_engine_cache_entries", {}, cache["entries"]
            ),
            "# HELP repro_engine_generation Engine snapshot generation.",
            "# TYPE repro_engine_generation gauge",
            format_sample(
                "repro_engine_generation", {}, info["generation"]
            ),
            "# HELP repro_engine_indexed_trusses "
            "Maximal pattern trusses indexed by the serving snapshot.",
            "# TYPE repro_engine_indexed_trusses gauge",
            format_sample(
                "repro_engine_indexed_trusses",
                {},
                info["indexed_trusses"],
            ),
            "# HELP repro_engine_query_nodes_total "
            "Snapshot-query traversal outcomes, by node disposition.",
            "# TYPE repro_engine_query_nodes_total counter",
        ]
        for outcome, field in (
            ("visited", "visited_nodes"),
            ("pruned_pattern", "pruned_pattern"),
            ("pruned_alpha", "pruned_alpha"),
            ("retrieved", "retrieved_nodes"),
        ):
            lines.append(
                format_sample(
                    "repro_engine_query_nodes_total",
                    {"outcome": outcome},
                    breakdown.get(field, 0),
                )
            )
        lines.extend(
            [
                "# HELP repro_engine_query_phase_seconds_total "
                "Snapshot-query wall time, split by phase.",
                "# TYPE repro_engine_query_phase_seconds_total counter",
                format_sample(
                    "repro_engine_query_phase_seconds_total",
                    {"phase": "toc"},
                    breakdown.get("toc_seconds", 0.0),
                ),
                format_sample(
                    "repro_engine_query_phase_seconds_total",
                    {"phase": "decode"},
                    breakdown.get("decode_seconds", 0.0),
                ),
            ]
        )
        return default_registry().render() + "\n".join(lines) + "\n"

    # Quiet by default: the serving benchmark and the concurrency tests
    # hammer the endpoint, and per-request stderr lines drown real logs.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)


class ThemeCommunityServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared engine."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        engine: IndexedWarehouse,
        verbose: bool = False,
        live=None,
    ) -> None:
        super().__init__(address, WarehouseRequestHandler)
        self.engine = engine
        self.verbose = verbose
        #: Optional :class:`~repro.serve.live.LiveIndex` writer; when set
        #: the ``/admin/apply-delta`` endpoint is enabled.
        self.live = live
        #: Monotonic bind time; /healthz and /stats report uptime from it.
        self.started = time.monotonic()


def create_server(
    engine: IndexedWarehouse,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    live=None,
) -> ThemeCommunityServer:
    """Bind a server on ``(host, port)`` (port 0 = ephemeral)."""
    return ThemeCommunityServer(
        (host, port), engine, verbose=verbose, live=live
    )


def start_server_thread(
    engine: IndexedWarehouse,
    host: str = "127.0.0.1",
    port: int = 0,
    live=None,
) -> tuple[ThemeCommunityServer, threading.Thread]:
    """Run a server in a daemon thread; returns ``(server, thread)``.

    Test/benchmark helper: the caller reads the bound port from
    ``server.server_address`` and must call ``server.shutdown()``.
    """
    server = create_server(engine, host=host, port=port, live=live)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


__all__ = [
    "KNOWN_ENDPOINTS",
    "WarehouseRequestHandler",
    "ThemeCommunityServer",
    "create_server",
    "start_server_thread",
]
