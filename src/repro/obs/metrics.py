"""Thread-safe metrics core: counters, gauges, latency histograms.

One process-wide :class:`MetricsRegistry` (swappable for tests via
:func:`use_registry`) holds metric *families* keyed by name; a family
fans out into children keyed by their label set, exactly as in the
Prometheus data model. All three metric kinds are stdlib-only and take a
per-metric lock on every update, so hot paths may share one child across
threads freely.

Histograms are **log-bucketed**: observation counts land in
geometrically spaced buckets (default ×2 per bucket from 1 µs to ~67 s),
so p50/p95/p99 are derivable at any time from the bucket table with
bounded relative error — :meth:`Histogram.quantile` interpolates inside
the winning bucket. Buckets, not reservoirs, because bucket tables are
**mergeable**: :meth:`MetricsRegistry.snapshot` captures every family
into a picklable :class:`MetricsSnapshot`, snapshots subtract
(:meth:`MetricsSnapshot.delta`) and fold back into a registry
(:meth:`MetricsRegistry.merge`) — the return channel the
process-parallel TC-Tree build uses to report worker-side counters into
the orchestrator's registry.

:func:`render_prometheus` (also :meth:`MetricsRegistry.render`) emits
the text exposition format 0.0.4 served by ``GET /metrics``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import ObservabilityError

#: Prometheus text exposition content type (format version 0.0.4).
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Label key: a canonically sorted, hashable, picklable label set.
LabelKey = tuple[tuple[str, str], ...]


def log_buckets(
    start: float = 1e-6, factor: float = 2.0, count: int = 27
) -> tuple[float, ...]:
    """Geometric bucket upper bounds ``start * factor**k`` (k < count).

    The default spans 1 µs .. ~67 s in ×2 steps — wide enough for both
    sub-millisecond cache hits and multi-second cold builds, and narrow
    enough that an interpolated quantile is within one octave of truth.
    """
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ObservabilityError(
            f"invalid log buckets (start={start}, factor={factor}, "
            f"count={count})"
        )
    return tuple(start * factor ** k for k in range(count))


DEFAULT_LATENCY_BUCKETS = log_buckets()


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing float counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: self._lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counters only go up; inc({amount}) is not allowed"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (in-flight requests, queue depth).

    Merge semantics are *additive* (see :meth:`MetricsRegistry.merge`):
    per-process gauges like in-flight counts sum meaningfully across
    processes, which is the only merge this package performs.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: self._lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Log-bucketed distribution with derivable quantiles.

    ``bounds`` are ascending bucket upper bounds (inclusive, Prometheus
    ``le`` semantics); one implicit ``+Inf`` overflow bucket follows.
    """

    __slots__ = ("bounds", "_lock", "_counts", "_sum", "_count")

    def __init__(self, bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS):
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds or any(
            b <= a for a, b in zip(self.bounds, self.bounds[1:])
        ):
            raise ObservabilityError(
                f"histogram bounds must be ascending and non-empty, "
                f"got {self.bounds!r}"
            )
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)  # guarded-by: self._lock
        self._sum = 0.0  # guarded-by: self._lock
        self._count = 0  # guarded-by: self._lock

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def state(self) -> tuple[tuple[int, ...], float, int]:
        """Consistent ``(bucket counts, sum, count)`` triple."""
        with self._lock:
            return tuple(self._counts), self._sum, self._count

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1), interpolated inside its bucket.

        Resolution is one bucket: with the default ×2 bounds the result
        is within a factor of 2 of the exact order statistic, and much
        closer in practice thanks to the linear interpolation. Returns
        0.0 with no observations; the overflow bucket reports the top
        finite bound (the histogram cannot see beyond it).
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        counts, _total, count = self.state()
        if count == 0:
            return 0.0
        return _bucket_quantile(self.bounds, counts, count, q)

    def percentiles(self) -> dict[str, float]:
        """The ``{"p50", "p95", "p99"}`` summary the breakdowns report."""
        counts, _total, count = self.state()
        if count == 0:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            f"p{int(q * 100)}": _bucket_quantile(
                self.bounds, counts, count, q
            )
            for q in (0.5, 0.95, 0.99)
        }


def _bucket_quantile(
    bounds: tuple[float, ...],
    counts: tuple[int, ...] | list[int],
    count: int,
    q: float,
) -> float:
    rank = q * count
    cumulative = 0.0
    for index, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        previous = cumulative
        cumulative += bucket_count
        if cumulative >= rank:
            if index >= len(bounds):
                return bounds[-1]
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index]
            fraction = (
                (rank - previous) / bucket_count if bucket_count else 1.0
            )
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
    return bounds[-1]


@dataclass
class _Family:
    """One metric name: kind, help text, children by label set."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str = ""
    buckets: tuple[float, ...] | None = None
    children: dict[LabelKey, Counter | Gauge | Histogram] = field(
        default_factory=dict
    )


_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ObservabilityError(f"invalid metric name {name!r}")
    return name


class MetricsRegistry:
    """Process-wide metric table; every layer reports through one.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    fixes the family's kind (and, for histograms, bucket bounds); later
    calls with a conflicting kind raise. Children are identified by their
    label set, so ``counter("x", route="csr")`` and
    ``counter("x", route="legacy")`` are two samples of one family.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}  # guarded-by: self._lock

    # ------------------------------------------------------------------
    def _child(
        self,
        name: str,
        kind: str,
        help: str,
        buckets: tuple[float, ...] | None,
        labels: Mapping[str, object],
    ):
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(
                    _check_name(name), kind, help, buckets=buckets
                )
                self._families[name] = family
            elif family.kind != kind:
                raise ObservabilityError(
                    f"metric {name!r} is a {family.kind}, not a {kind}"
                )
            if help and not family.help:
                family.help = help
            child = family.children.get(key)
            if child is None:
                if kind == "counter":
                    child = Counter()
                elif kind == "gauge":
                    child = Gauge()
                else:
                    child = Histogram(
                        family.buckets or DEFAULT_LATENCY_BUCKETS
                    )
                family.children[key] = child
            return child

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._child(name, "counter", help, None, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._child(name, "gauge", help, None, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] | None = None,
        **labels,
    ) -> Histogram:
        bounds = tuple(float(b) for b in buckets) if buckets else None
        return self._child(name, "histogram", help, bounds, labels)

    # ------------------------------------------------------------------
    def families(self) -> dict[str, str]:
        """Metric name -> kind, for introspection and tests."""
        with self._lock:
            return {
                name: family.kind
                for name, family in self._families.items()
            }

    def histograms(
        self, name: str
    ) -> dict[LabelKey, Histogram]:
        """Every child histogram of family ``name`` (empty when absent)."""
        with self._lock:
            family = self._families.get(name)
            if family is None or family.kind != "histogram":
                return {}
            return dict(family.children)  # type: ignore[arg-type]

    def counters(self, name: str) -> dict[LabelKey, float]:
        """Label set -> value for every child counter of ``name``."""
        with self._lock:
            family = self._families.get(name)
            if family is None or family.kind != "counter":
                return {}
            children = list(family.children.items())
        return {key: child.value for key, child in children}

    # ------------------------------------------------------------------
    def snapshot(self) -> "MetricsSnapshot":
        """A picklable point-in-time copy of every family."""
        with self._lock:
            families = [
                (
                    family.name,
                    family.kind,
                    family.help,
                    list(family.children.items()),
                )
                for family in self._families.values()
            ]
        snap = MetricsSnapshot()
        for name, kind, help_text, children in families:
            snap.help[name] = (kind, help_text)
            for key, child in children:
                if kind == "counter":
                    snap.counters[(name, key)] = child.value
                elif kind == "gauge":
                    snap.gauges[(name, key)] = child.value
                else:
                    counts, total, count = child.state()
                    snap.histograms[(name, key)] = (
                        child.bounds, counts, total, count
                    )
        return snap

    def merge(self, snapshot: "MetricsSnapshot | None") -> None:
        """Fold a snapshot (usually a worker delta) into this registry.

        Counters and histogram buckets add; gauges add too (additive
        gauges — a per-process in-flight count sums across processes).
        Histogram bucket tables must agree in bounds.
        """
        if snapshot is None:
            return
        for (name, key), value in snapshot.counters.items():
            if value:
                self._child(
                    name, "counter", snapshot.help_for(name), None,
                    dict(key),
                ).inc(value)
        for (name, key), value in snapshot.gauges.items():
            if value:
                self._child(
                    name, "gauge", snapshot.help_for(name), None, dict(key)
                ).inc(value)
        for (name, key), (bounds, counts, total, count) in (
            snapshot.histograms.items()
        ):
            if not count:
                continue
            histogram = self._child(
                name, "histogram", snapshot.help_for(name), bounds,
                dict(key),
            )
            if histogram.bounds != tuple(bounds):
                raise ObservabilityError(
                    f"cannot merge histogram {name!r}: bucket bounds differ"
                )
            with histogram._lock:
                for index, bucket_count in enumerate(counts):
                    histogram._counts[index] += bucket_count
                histogram._sum += total
                histogram._count += count

    def render(self) -> str:
        return render_prometheus(self)

    def reset(self) -> None:
        """Drop every family (tests only)."""
        with self._lock:
            self._families.clear()


@dataclass
class MetricsSnapshot:
    """Plain-data copy of a registry: picklable, subtractable, mergeable.

    Keys are ``(metric name, label key)`` pairs; histogram values are
    ``(bounds, bucket counts, sum, count)`` tuples. This is the shape the
    process-parallel build ships over its worker return channel and the
    fleet stores in record ``meta``.
    """

    counters: dict[tuple[str, LabelKey], float] = field(
        default_factory=dict
    )
    gauges: dict[tuple[str, LabelKey], float] = field(default_factory=dict)
    histograms: dict[
        tuple[str, LabelKey],
        tuple[tuple[float, ...], tuple[int, ...], float, int],
    ] = field(default_factory=dict)
    #: name -> (kind, help) so merges re-create families faithfully.
    help: dict[str, tuple[str, str]] = field(default_factory=dict)

    def help_for(self, name: str) -> str:
        return self.help.get(name, ("", ""))[1]

    def delta(self, before: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened since ``before`` (same process/registry lineage).

        Counters and histograms subtract; gauges are excluded — a gauge
        difference has no merge meaning (the level, not the flow, is the
        signal). Forked workers inherit the parent's counts copy-on-write,
        so a worker task brackets itself with ``snapshot()`` and returns
        ``after.delta(before)`` — exactly its own contribution.
        """
        out = MetricsSnapshot(help=dict(self.help))
        for key, value in self.counters.items():
            diff = value - before.counters.get(key, 0.0)
            if diff:
                out.counters[key] = diff
        for key, (bounds, counts, total, count) in self.histograms.items():
            previous = before.histograms.get(key)
            if previous is None:
                if count:
                    out.histograms[key] = (bounds, counts, total, count)
                continue
            _, prev_counts, prev_total, prev_count = previous
            if count == prev_count:
                continue
            out.histograms[key] = (
                bounds,
                tuple(c - p for c, p in zip(counts, prev_counts)),
                total - prev_total,
                count - prev_count,
            )
        return out

    def counter_total(self, name: str) -> float:
        """Sum of a counter family across every label set."""
        return sum(
            value
            for (sample, _key), value in self.counters.items()
            if sample == name
        )

    def counter_value(self, name: str, **labels) -> float:
        return self.counters.get((name, _label_key(labels)), 0.0)

    def as_flat_dict(self) -> dict[str, float]:
        """Counters (and histogram counts/sums) as one flat JSON-able map.

        Keys are rendered exposition sample names — stable, diffable, and
        exactly what fleet records store under ``meta.metrics``.
        """
        flat: dict[str, float] = {}
        for (name, key), value in sorted(self.counters.items()):
            flat[_sample_name(name, key)] = value
        for (name, key), (_b, _c, total, count) in sorted(
            self.histograms.items()
        ):
            flat[_sample_name(name + "_count", key)] = float(count)
            flat[_sample_name(name + "_sum", key)] = total
        return flat


# ---------------------------------------------------------------------------
# the process-wide default registry
# ---------------------------------------------------------------------------

_DEFAULT = MetricsRegistry()  # guarded-by: _DEFAULT_LOCK
_DEFAULT_LOCK = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The registry instrumented code reports to (swappable for tests)."""
    # Lock-free read: rebinding a name is atomic under the GIL and a
    # marginally stale registry is harmless on this hot path.
    return _DEFAULT  # repro-lint: disable=lock-discipline


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        previous = _DEFAULT
        _DEFAULT = registry
        return previous


class use_registry:
    """``with use_registry() as reg:`` — scoped default-registry swap.

    Tests and the merge-parity suite use it to observe one build's
    metrics in isolation without resetting global counters.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry or MetricsRegistry()
        self._previous: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_default_registry(self.registry)
        return self.registry

    def __exit__(self, *exc_info) -> None:
        assert self._previous is not None
        set_default_registry(self._previous)


# ---------------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4)
# ---------------------------------------------------------------------------


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)


def _sample_name(name: str, key: LabelKey, extra: str = "") -> str:
    labels = list(key)
    if extra:
        labels.append(("le", extra))
    if not labels:
        return name
    rendered = ",".join(
        f'{label}="{_escape_label(value)}"' for label, value in labels
    )
    return f"{name}{{{rendered}}}"


def format_sample(
    name: str, labels: Mapping[str, object], value: float
) -> str:
    """One exposition sample line (the serving layer's collector hook)."""
    return f"{_sample_name(name, _label_key(labels))} {_format_value(value)}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in text exposition format 0.0.4 (``GET /metrics``)."""
    lines: list[str] = []
    with registry._lock:
        families = [
            (
                family.name,
                family.kind,
                family.help,
                sorted(family.children.items()),
            )
            for name, family in sorted(registry._families.items())
        ]
    for name, kind, help_text, children in families:
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for key, child in children:
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{_sample_name(name, key)} "
                    f"{_format_value(child.value)}"
                )
                continue
            counts, total, count = child.state()
            cumulative = 0
            for bound, bucket_count in zip(child.bounds, counts):
                cumulative += bucket_count
                lines.append(
                    f"{_sample_name(name + '_bucket', key, _format_value(bound))} "
                    f"{cumulative}"
                )
            cumulative += counts[-1]
            lines.append(
                f"{_sample_name(name + '_bucket', key, '+Inf')} {cumulative}"
            )
            lines.append(
                f"{_sample_name(name + '_sum', key)} {_format_value(total)}"
            )
            lines.append(f"{_sample_name(name + '_count', key)} {count}")
    return "\n".join(lines) + "\n" if lines else ""


__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "EXPOSITION_CONTENT_TYPE",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "default_registry",
    "format_sample",
    "log_buckets",
    "render_prometheus",
    "set_default_registry",
    "use_registry",
]
