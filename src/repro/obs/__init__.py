"""Cross-cutting instrumentation: metrics registry and span tracing.

Zero-dependency (stdlib only) observability substrate shared by every
layer of the stack:

- :mod:`repro.obs.metrics` — thread-safe counters, gauges, and
  log-bucketed latency histograms in a process-wide registry, with
  picklable/mergeable snapshots (the process-parallel build folds worker
  metrics into the orchestrator's registry through snapshot deltas) and
  a Prometheus text exposition (0.0.4) renderer behind ``GET /metrics``;
- :mod:`repro.obs.trace` — nestable ``with span("phase")`` context
  managers producing structured span trees for TC-Tree construction and
  snapshot writes, with JSON and Chrome trace-event exporters
  (``repro index --trace out.json``). Disabled by default: one global
  read and a shared no-op context manager per call.
"""

from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    default_registry,
    use_registry,
)
from repro.obs.trace import Tracer, span, tracing

__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "Tracer",
    "default_registry",
    "span",
    "tracing",
    "use_registry",
]
