"""Span tracer: nestable phase timing with JSON / Chrome exporters.

Instrumented code wraps phases in ``with span("build.layer1", items=n):``.
When no tracer is installed — the default — :func:`span` returns a shared
no-op object after a single module-global read, so the disabled-path cost
is one dict-free function call per phase (far below the trend gate's
noise floor). When a :class:`Tracer` is installed via :func:`tracing`
(which ``build_tc_tree(trace=...)`` and ``repro index --trace FILE`` do),
spans nest per thread into a tree of :class:`Span` records that export as

- structured JSON (``tracer.to_json()``, schema ``repro-trace/v1``), and
- Chrome trace-event JSON (``tracer.to_chrome()``) loadable by
  ``chrome://tracing`` / Perfetto.

The tracer is deliberately single-process: worker processes of the
parallel build report through metrics snapshots instead, and the
orchestrator's phase A/B spans bound the workers' wall time.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Iterator


class Span:
    """One timed phase: name, attributes, children, duration (seconds)."""

    __slots__ = ("name", "attrs", "start", "duration", "children", "tid")

    active = True

    def __init__(self, name: str, attrs: dict[str, Any], tid: int) -> None:
        self.name = name
        self.attrs = attrs
        self.start = time.perf_counter()
        self.duration = 0.0
        self.children: list[Span] = []
        self.tid = tid

    def set_attr(self, key: str, value: Any) -> None:
        """Attach a result attribute (route taken, nodes built, bytes)."""
        self.attrs[key] = value

    def close(self) -> None:
        self.duration = time.perf_counter() - self.start

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.as_dict() for child in self.children]
        return out

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    active = False

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set_attr(self, key: str, value: Any) -> None:
        return None


_NOOP = _NoopSpan()


class _SpanContext:
    """Context manager pushing/popping one live span on a tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span_: Span) -> None:
        self._tracer = tracer
        self._span = span_

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._span.close()
        self._tracer._pop(self._span)


class Tracer:
    """Collects span trees; per-thread nesting, shared root list."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self.roots: list[Span] = []
        # Wall-clock anchor so chrome timestamps are absolute-ish.
        self._epoch = time.perf_counter()

    # -- stack plumbing (called by _SpanContext) -----------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span_: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span_)
        else:
            with self._lock:
                self.roots.append(span_)
        stack.append(span_)

    def _pop(self, span_: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span_:
            stack.pop()

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        return _SpanContext(
            self, Span(name, attrs, threading.get_ident())
        )

    # -- exporters -----------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        """Nested span tree: ``{"schema": "repro-trace/v1", "spans": []}``."""
        with self._lock:
            roots = list(self.roots)
        return {
            "schema": "repro-trace/v1",
            "spans": [root.as_dict() for root in roots],
        }

    def to_chrome(self) -> dict[str, Any]:
        """Chrome trace-event JSON (complete "X" events, microseconds)."""
        with self._lock:
            roots = list(self.roots)
        pid = os.getpid()
        events = []
        for root in roots:
            for span_ in root.walk():
                event: dict[str, Any] = {
                    "name": span_.name,
                    "ph": "X",
                    "ts": (span_.start - self._epoch) * 1e6,
                    "dur": span_.duration * 1e6,
                    "pid": pid,
                    "tid": span_.tid,
                }
                if span_.attrs:
                    event["args"] = {
                        key: value
                        for key, value in span_.attrs.items()
                    }
                events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str, fmt: str = "chrome") -> None:
        """Serialize to ``path`` as ``"chrome"`` or ``"json"``."""
        payload = self.to_chrome() if fmt == "chrome" else self.to_json()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)


# ---------------------------------------------------------------------------
# module-level switchboard
# ---------------------------------------------------------------------------

_ACTIVE: Tracer | None = None
_ACTIVE_LOCK = threading.Lock()


def current_tracer() -> Tracer | None:
    return _ACTIVE


def span(name: str, **attrs: Any):
    """A span under the active tracer, or the shared no-op when disabled.

    The disabled path is one global read plus returning a singleton —
    safe to leave in the hottest build loops.
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP
    return tracer.span(name, **attrs)


# ``with trace("phase"):`` reads naturally at call sites; same function.
trace = span


class tracing:
    """``with tracing(tracer):`` — install a tracer for the block.

    Nested activations stack (the inner tracer wins, the outer one is
    restored on exit). Passing ``None`` creates a fresh :class:`Tracer`,
    available as the ``as`` target.
    """

    def __init__(self, tracer: Tracer | None = None) -> None:
        self.tracer = tracer or Tracer()
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        global _ACTIVE
        with _ACTIVE_LOCK:
            self._previous = _ACTIVE
            _ACTIVE = self.tracer
        return self.tracer

    def __exit__(self, *exc_info) -> None:
        global _ACTIVE
        with _ACTIVE_LOCK:
            _ACTIVE = self._previous


__all__ = [
    "Span",
    "Tracer",
    "current_tracer",
    "span",
    "trace",
    "tracing",
]
