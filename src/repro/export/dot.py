"""Graphviz DOT export.

Quick-look rendering: ``dot -Tpng out.dot`` shows a network or a single
theme community. Community members are filled; the theme is the graph
label — enough to eyeball the Figure 6 style case-study pictures.
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path

from repro.core.communities import ThemeCommunity
from repro.network.dbnetwork import DatabaseNetwork


def _quote(value: object) -> str:
    return '"' + str(value).replace('"', '\\"') + '"'


def network_to_dot(
    network: DatabaseNetwork,
    highlight: Iterable[int] | None = None,
    title: str | None = None,
) -> str:
    """The whole network, optionally highlighting a vertex set."""
    marked = set(highlight or [])
    lines = ["graph repro {"]
    if title:
        lines.append(f"  label={_quote(title)};")
    for vertex in sorted(network.graph.vertices()):
        attributes = [f"label={_quote(network.vertex_label(vertex))}"]
        if vertex in marked:
            attributes.append('style="filled"')
            attributes.append('fillcolor="lightblue"')
        lines.append(f"  n{vertex} [{', '.join(attributes)}];")
    for u, v in sorted(network.graph.edges()):
        lines.append(f"  n{u} -- n{v};")
    lines.append("}")
    return "\n".join(lines)


def community_to_dot(
    network: DatabaseNetwork, community: ThemeCommunity
) -> str:
    """One theme community: its induced subgraph, theme as the title."""
    subgraph = network.graph.subgraph(community.members)
    theme = ",".join(str(x) for x in community.theme_labels(network))
    lines = ["graph community {", f"  label={_quote('theme: ' + theme)};"]
    for vertex in sorted(subgraph.vertices()):
        frequency = community.frequencies.get(vertex, 0.0)
        label = f"{network.vertex_label(vertex)}\\nf={frequency:.2f}"
        lines.append(f"  n{vertex} [label={_quote(label)}];")
    for u, v in sorted(subgraph.edges()):
        lines.append(f"  n{u} -- n{v};")
    lines.append("}")
    return "\n".join(lines)


def write_dot(text: str, path: str | Path) -> None:
    Path(path).write_text(text, encoding="utf-8")
