"""Exporters for downstream tooling.

Mining and indexing results become useful when they reach a plotting or
graph-visualization tool; this package writes the standard interchange
formats:

- :mod:`repro.export.graphml` — GraphML for Gephi/Cytoscape/yEd, with
  community membership and frequencies as attributes;
- :mod:`repro.export.dot` — Graphviz DOT for quick rendering;
- :mod:`repro.export.tables` — CSV for experiment rows (the benchmark
  reports, ready for external plotting).
"""

from repro.export.dot import community_to_dot, network_to_dot
from repro.export.graphml import network_to_graphml, write_graphml
from repro.export.tables import rows_to_csv, write_csv

__all__ = [
    "network_to_graphml",
    "write_graphml",
    "network_to_dot",
    "community_to_dot",
    "rows_to_csv",
    "write_csv",
]
