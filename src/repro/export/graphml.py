"""GraphML export.

GraphML is the lingua franca of graph visualization tools (Gephi,
Cytoscape, yEd). The exporter writes the network structure plus optional
per-vertex attributes: label, and — when theme communities are supplied —
a ``communities`` attribute listing the themes each vertex belongs to, so
overlapping communities can be inspected visually.
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path
from xml.etree import ElementTree as ET
from xml.sax.saxutils import escape

from repro.core.communities import ThemeCommunity
from repro.network.dbnetwork import DatabaseNetwork

_GRAPHML_NS = "http://graphml.graphdrawing.org/xmlns"


def network_to_graphml(
    network: DatabaseNetwork,
    communities: Iterable[ThemeCommunity] | None = None,
) -> str:
    """Serialize ``network`` (and optional communities) to a GraphML string."""
    membership: dict[int, list[str]] = {}
    for community in communities or []:
        theme = ",".join(
            str(x) for x in community.theme_labels(network)
        )
        for vertex in community.members:
            membership.setdefault(vertex, []).append(theme)

    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<graphml xmlns="{_GRAPHML_NS}">',
        '  <key id="label" for="node" attr.name="label"'
        ' attr.type="string"/>',
        '  <key id="communities" for="node" attr.name="communities"'
        ' attr.type="string"/>',
        '  <graph id="G" edgedefault="undirected">',
    ]
    for vertex in sorted(network.graph.vertices()):
        label = escape(str(network.vertex_label(vertex)))
        themes = escape("; ".join(sorted(membership.get(vertex, []))))
        lines.append(f'    <node id="n{vertex}">')
        lines.append(f'      <data key="label">{label}</data>')
        if themes:
            lines.append(
                f'      <data key="communities">{themes}</data>'
            )
        lines.append("    </node>")
    for index, (u, v) in enumerate(sorted(network.graph.edges())):
        lines.append(
            f'    <edge id="e{index}" source="n{u}" target="n{v}"/>'
        )
    lines.append("  </graph>")
    lines.append("</graphml>")
    return "\n".join(lines)


def write_graphml(
    network: DatabaseNetwork,
    path: str | Path,
    communities: Iterable[ThemeCommunity] | None = None,
) -> None:
    """Write GraphML to ``path`` (validated well-formed before writing)."""
    text = network_to_graphml(network, communities)
    ET.fromstring(text)  # raises on malformed output — fail before write
    Path(path).write_text(text, encoding="utf-8")
