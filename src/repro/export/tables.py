"""CSV export of experiment rows.

The benchmark drivers produce ``list[dict]`` rows; this writes them as CSV
so external tools (pandas, gnuplot, spreadsheets) can re-plot the figures
from measured data.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Mapping, Sequence
from pathlib import Path


def rows_to_csv(rows: Sequence[Mapping[str, object]]) -> str:
    """Render rows as a CSV string (columns = union of keys, first-seen
    order)."""
    if not rows:
        return ""
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=columns, restval="", lineterminator="\n"
    )
    writer.writeheader()
    for row in rows:
        writer.writerow(dict(row))
    return buffer.getvalue()


def write_csv(
    rows: Sequence[Mapping[str, object]], path: str | Path
) -> None:
    Path(path).write_text(rows_to_csv(rows), encoding="utf-8")
