"""``determinism`` — serialization paths must be bit-reproducible.

The snapshot golden files and the incremental-parity oracles pin the
*exact bytes* an encode produces, so anything order- or clock-dependent
in a serialization path is a latent flake. Inside scoped modules
(the built-in list below, or any file carrying a
``# repro-lint: scope=determinism`` marker) this rule flags:

* iteration over a bare ``set`` / ``frozenset`` (literals, ``set(...)``
  calls, set comprehensions, set algebra, and local names bound to
  them) unless wrapped in ``sorted(...)``;
* iteration over ``.keys()`` / ``.values()`` / ``.items()`` without a
  ``sorted(...)`` wrapper inside encode-side functions (``to_dict*``,
  ``write*``, ``save*``, ``encode*``, ``diff*``, ``migrate*`` — decode
  loops inherit their order from the document and are exempt);
* any call into :mod:`time`, :mod:`random`, :mod:`uuid`,
  ``os.urandom`` or ``datetime.now`` — wall-clock and entropy have no
  business in an encoder.
"""

from __future__ import annotations

import ast

from repro.analysis.base import ModuleInfo, Project, Rule, register
from repro.analysis.findings import Finding

#: Modules under the bit-identical-snapshot contract.
SCOPE_SUFFIXES = (
    "repro/serve/snapshot.py",
    "repro/index/warehouse.py",
    "repro/edgenet/io.py",
    "repro/network/io.py",
)

_SCOPE_MARKER = "repro-lint: scope=determinism"

_NONDET_MODULES = frozenset({"time", "random", "uuid"})

_ENCODE_PREFIXES = (
    "to_dict",
    "write",
    "_write",
    "save",
    "encode",
    "_encode",
    "diff",
    "migrate",
)


@register
class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "no bare-set iteration, unsorted mapping iteration, or "
        "time/random calls in snapshot and serialization paths"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> list[Finding]:
        if not _in_scope(module):
            return []
        findings: list[Finding] = []
        findings.extend(self._check_entropy_calls(module))
        findings.extend(self._check_iterations(module))
        return findings

    # -- wall clock / entropy -----------------------------------------
    def _check_entropy_calls(self, module: ModuleInfo) -> list[Finding]:
        from_imports = _nondeterministic_from_imports(module.tree)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            text = None
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                base = func.value.id
                if base in _NONDET_MODULES:
                    text = f"{base}.{func.attr}"
                elif base == "os" and func.attr == "urandom":
                    text = "os.urandom"
                elif base == "datetime" and func.attr in ("now", "utcnow"):
                    text = f"datetime.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in from_imports:
                text = f"{from_imports[func.id]}.{func.id}"
            if text is None:
                continue
            findings.append(
                Finding(
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.name,
                    message=(
                        f"call to {text}() in a serialization path "
                        f"breaks bit-identical snapshots"
                    ),
                    symbol=text,
                )
            )
        return findings

    # -- iteration order ----------------------------------------------
    def _check_iterations(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for scope in _scopes(module.tree):
            set_names = _set_bound_names(scope)
            encode_side = _is_encode_side(module, scope)
            for expr, lineno, col in _iteration_exprs(scope):
                if _is_set_expr(expr, set_names):
                    findings.append(
                        Finding(
                            path=module.relpath,
                            line=lineno,
                            col=col,
                            rule=self.name,
                            message=(
                                f"iteration over unordered set "
                                f"'{ast.unparse(expr)}'; wrap in "
                                f"sorted(...)"
                            ),
                            symbol=ast.unparse(expr),
                        )
                    )
                elif encode_side and _is_unsorted_mapping_view(expr):
                    findings.append(
                        Finding(
                            path=module.relpath,
                            line=lineno,
                            col=col,
                            rule=self.name,
                            message=(
                                f"unsorted iteration over "
                                f"'{ast.unparse(expr)}' in an "
                                f"encode-side function; wrap in "
                                f"sorted(...)"
                            ),
                            symbol=ast.unparse(expr),
                        )
                    )
        return findings


def _in_scope(module: ModuleInfo) -> bool:
    if module.relpath.endswith(SCOPE_SUFFIXES):
        return True
    return _SCOPE_MARKER in module.source


def _nondeterministic_from_imports(tree: ast.Module) -> dict[str, str]:
    """``{local_name: source_module}`` for from-imports of entropy."""
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            root = node.module.split(".")[0]
            if root in _NONDET_MODULES:
                for alias in node.names:
                    table[alias.asname or alias.name] = node.module
    return table


def _scopes(tree: ast.Module):
    """The module plus each function, for local set-name tracking."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _is_encode_side(module: ModuleInfo, scope: ast.AST) -> bool:
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return scope.name.startswith(_ENCODE_PREFIXES)
    return False


def _set_bound_names(scope: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value, names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif (
            isinstance(node, ast.AnnAssign)
            and node.value is not None
            and isinstance(node.target, ast.Name)
            and _is_set_expr(node.value, names)
        ):
            names.add(node.target.id)
    return names


def _iteration_exprs(scope: ast.AST):
    """(expr, line, col) for every for-loop / comprehension iterable."""
    for node in ast.walk(scope):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, node.iter.lineno, node.iter.col_offset
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for generator in node.generators:
                yield (
                    generator.iter,
                    generator.iter.lineno,
                    generator.iter.col_offset,
                )


def _is_set_expr(expr: ast.expr, set_names: set[str]) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(expr, ast.Name) and expr.id in set_names:
        return True
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)
    ):
        return _is_set_expr(expr.left, set_names) or _is_set_expr(
            expr.right, set_names
        )
    return False


def _is_unsorted_mapping_view(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in ("keys", "values", "items")
        and not expr.args
    )


__all__ = ["DeterminismRule", "SCOPE_SUFFIXES"]
