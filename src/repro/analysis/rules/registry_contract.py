"""``registry-contract`` — dotted references must actually resolve.

The model registry wires tuning sweeps and cutover constants through
``"pkg.mod:attr"`` strings (:class:`~repro.engine.registry.CutoverSpec`
``value_ref=`` / ``sweep=``, plus literal ``resolve_ref(...)`` calls),
and the benchmark fleet names drivers by module path in
``benchmarks/fleet.yaml``. A typo in any of them survives import and
every unit test, then fails at tuner or fleet runtime. This rule
resolves each reference statically:

* ``repro.*`` refs are imported and the attribute looked up (repro
  modules import without side effects by design);
* everything else — fleet drivers in particular — is checked with
  :func:`importlib.util.find_spec` only, so no workload ever executes.
"""

from __future__ import annotations

import ast
import importlib
import importlib.util
import re

from repro.analysis.base import ModuleInfo, Project, Rule, register
from repro.analysis.findings import Finding

_REF_RE = re.compile(r"^[A-Za-z_][\w.]*:[A-Za-z_]\w*$")

#: Call targets whose string keywords may carry dotted refs.
_SPEC_CALLS = frozenset({"CutoverSpec", "ModelSpec"})
_REF_KEYWORDS = frozenset({"value_ref", "sweep"})


@register
class RegistryContractRule(Rule):
    name = "registry-contract"
    description = (
        "dotted refs in CutoverSpec/ModelSpec/resolve_ref and fleet.yaml "
        "drivers must resolve via importlib (without executing workloads)"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            refs: list[tuple[str, int, int]] = []
            if name in _SPEC_CALLS:
                for keyword in node.keywords:
                    if (
                        keyword.arg in _REF_KEYWORDS
                        and isinstance(keyword.value, ast.Constant)
                        and isinstance(keyword.value.value, str)
                    ):
                        refs.append(
                            (
                                keyword.value.value,
                                keyword.value.lineno,
                                keyword.value.col_offset,
                            )
                        )
            elif name == "resolve_ref" and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Constant) and isinstance(
                    arg.value, str
                ):
                    refs.append((arg.value, arg.lineno, arg.col_offset))
            for ref, lineno, col in refs:
                problem = _check_ref(ref)
                if problem is None:
                    continue
                findings.append(
                    Finding(
                        path=module.relpath,
                        line=lineno,
                        col=col,
                        rule=self.name,
                        message=f"unresolvable reference {ref!r}: {problem}",
                        symbol=ref,
                    )
                )
        return findings

    def check_project(self, project: Project) -> list[Finding]:
        fleet = project.root / "benchmarks" / "fleet.yaml"
        if not fleet.is_file():
            return []
        try:
            import yaml
        except ImportError:  # pragma: no cover - container ships pyyaml
            return []
        document = yaml.safe_load(fleet.read_text(encoding="utf-8"))
        findings: list[Finding] = []
        experiments = (document or {}).get("experiments", {})
        if not isinstance(experiments, dict):
            return []
        for exp_name, spec in sorted(experiments.items()):
            driver = (spec or {}).get("driver")
            if not isinstance(driver, str):
                continue
            if _find_module(driver):
                continue
            findings.append(
                Finding(
                    path="benchmarks/fleet.yaml",
                    line=1,
                    col=0,
                    rule=self.name,
                    message=(
                        f"experiment {exp_name!r} names driver "
                        f"{driver!r} which importlib cannot locate"
                    ),
                    symbol=driver,
                )
            )
        return findings


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _find_module(name: str) -> bool:
    try:
        return importlib.util.find_spec(name) is not None
    except (ImportError, ValueError):
        return False


def _check_ref(ref: str) -> str | None:
    """Return a problem description, or None when ``ref`` resolves."""
    if not _REF_RE.match(ref):
        return "not of the form 'pkg.mod:attr'"
    module_name, attr = ref.split(":", 1)
    if not module_name.startswith("repro."):
        # Foreign modules are located but never imported.
        if not _find_module(module_name):
            return f"module {module_name!r} not found"
        return None
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        return f"module {module_name!r} does not import: {exc}"
    if not hasattr(module, attr):
        return f"module {module_name!r} has no attribute {attr!r}"
    return None


__all__ = ["RegistryContractRule"]
