"""``fork-safety`` — nothing unpicklable crosses a process pool.

Two checks, both aimed at the parallel-build tier
(:mod:`repro.index.parallel`, :mod:`repro.index.shm`):

* In modules that use :class:`~concurrent.futures.ProcessPoolExecutor`
  (or ``multiprocessing``), the callable handed to ``.submit(...)`` /
  ``.map(...)`` or passed as ``initializer=`` must be a module-level
  function: lambdas and nested ``def``\\ s cannot be pickled by the
  default fork/spawn machinery and fail only at runtime — on spawn
  platforms, only in CI.
* Classes that store synchronization primitives on instances
  (``self.x = threading.Lock()`` and friends) must either define
  ``__getstate__`` (proving someone thought about what crosses the
  fork) or sit on the :data:`PROCESS_LOCAL` allowlist of types that
  are documented never to be shipped to workers.
"""

from __future__ import annotations

import ast

from repro.analysis.base import ModuleInfo, Project, Rule, register
from repro.analysis.findings import Finding

#: Types documented as process-local: they live on the serving /
#: observability side and are never submitted to a pool. Growing this
#: list is an explicit, reviewable act.
PROCESS_LOCAL = frozenset(
    {
        "CarrierCache",
        "Counter",
        "Gauge",
        "Histogram",
        "IndexedWarehouse",
        "LiveIndex",
        "MetricsRegistry",
        "Tracer",
    }
)

_SYNC_PRIMITIVES = frozenset(
    {"Lock", "RLock", "Event", "Condition", "Semaphore", "BoundedSemaphore"}
)


@register
class ForkSafetyRule(Rule):
    name = "fork-safety"
    description = (
        "callables submitted to process pools must be module-level; "
        "lock-holding classes need __getstate__ or a PROCESS_LOCAL entry"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> list[Finding]:
        findings: list[Finding] = []
        if (
            "ProcessPoolExecutor" in module.source
            or "multiprocessing" in module.source
        ):
            findings.extend(self._check_submissions(module))
        findings.extend(self._check_lock_holders(module))
        return findings

    # -- executor submissions -----------------------------------------
    def _check_submissions(self, module: ModuleInfo) -> list[Finding]:
        nested = _nested_function_names(module.tree)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            candidates: list[ast.expr] = []
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map")
                and node.args
            ):
                candidates.append(node.args[0])
            if _call_name(node) == "ProcessPoolExecutor":
                for keyword in node.keywords:
                    if keyword.arg == "initializer":
                        candidates.append(keyword.value)
            for arg in candidates:
                reason = None
                if isinstance(arg, ast.Lambda):
                    reason = "a lambda"
                elif isinstance(arg, ast.Name) and arg.id in nested:
                    reason = f"nested function '{arg.id}'"
                if reason is None:
                    continue
                findings.append(
                    Finding(
                        path=module.relpath,
                        line=arg.lineno,
                        col=arg.col_offset,
                        rule=self.name,
                        message=(
                            f"{reason} submitted to a process pool "
                            f"cannot be pickled; use a module-level "
                            f"function"
                        ),
                        symbol=(
                            arg.id
                            if isinstance(arg, ast.Name)
                            else "<lambda>"
                        ),
                    )
                )
        return findings

    # -- lock-holding classes -----------------------------------------
    def _check_lock_holders(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name in PROCESS_LOCAL:
                continue
            methods = {
                child.name
                for child in node.body
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "__getstate__" in methods:
                continue
            primitive = _first_sync_assignment(node)
            if primitive is None:
                continue
            lineno, attr, kind = primitive
            findings.append(
                Finding(
                    path=module.relpath,
                    line=lineno,
                    col=node.col_offset,
                    rule=self.name,
                    message=(
                        f"class {node.name} stores threading.{kind} on "
                        f"'self.{attr}' but defines no __getstate__ and "
                        f"is not on the fork-safety PROCESS_LOCAL "
                        f"allowlist"
                    ),
                    symbol=node.name,
                )
            )
        return findings


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _nested_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside other functions."""
    nested: set[str] = set()
    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(outer):
            if inner is outer:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(inner.name)
    return nested


def _first_sync_assignment(
    cls: ast.ClassDef,
) -> tuple[int, str, str] | None:
    """First ``self.<attr> = threading.<Primitive>()`` in the class."""
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        kind = _call_name(node.value)
        if kind not in _SYNC_PRIMITIVES:
            continue
        func = node.value.func
        if isinstance(func, ast.Attribute) and not (
            isinstance(func.value, ast.Name)
            and func.value.id in ("threading", "multiprocessing")
        ):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                return node.lineno, target.attr, kind
    return None


__all__ = ["ForkSafetyRule", "PROCESS_LOCAL"]
