"""Built-in lint rules; importing this package registers them all."""

from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.error_taxonomy import ErrorTaxonomyRule
from repro.analysis.rules.fork_safety import PROCESS_LOCAL, ForkSafetyRule
from repro.analysis.rules.lock_discipline import LockDisciplineRule
from repro.analysis.rules.registry_contract import RegistryContractRule

__all__ = [
    "DeterminismRule",
    "ErrorTaxonomyRule",
    "ForkSafetyRule",
    "LockDisciplineRule",
    "PROCESS_LOCAL",
    "RegistryContractRule",
]
