"""``lock-discipline`` — ``# guarded-by:`` fields need their lock held.

An assignment annotated with ``# guarded-by: <lockexpr>`` declares that
the assigned field may only be touched while ``<lockexpr>`` is held::

    self._counts = {}  # guarded-by: self._lock

Every later read or write of that attribute (on *any* receiver, with
base substitution: ``histogram._counts`` demands ``with
histogram._lock:``) must sit lexically inside a matching ``with``
block. Module globals work the same way with a module-level lock::

    _FACTORIES = {}  # guarded-by: _LOCK

Exemptions: the declaring statement itself, and ``self.<attr>``
accesses inside ``__init__`` (construction happens-before sharing).
Sites that are safe for non-lexical reasons (worker processes, manual
``acquire``/``release`` spanning a scope) carry explicit
``# repro-lint: disable=lock-discipline`` waivers.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.base import ModuleInfo, Project, Rule, register
from repro.analysis.findings import Finding

_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][\w.]*)")


@dataclass(frozen=True)
class _Guard:
    """One ``# guarded-by`` declaration."""

    name: str  # attribute or global name being guarded
    lock: str  # declared lock expression text
    is_attribute: bool  # self.<name> declaration vs module global
    decl_span: tuple[int, int]  # lines of the declaring statement

    def required_lock(self, access: ast.AST) -> str:
        """Lock expression an access site must hold, after base
        substitution (``self._lock`` declared on ``self._counts``
        means ``obj._counts`` needs ``obj._lock``)."""
        if (
            self.is_attribute
            and self.lock.startswith("self.")
            and isinstance(access, ast.Attribute)
        ):
            base = ast.unparse(access.value)
            return f"{base}.{self.lock[len('self.'):]}"
        return self.lock


@register
class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = (
        "fields declared '# guarded-by: <lock>' may only be accessed "
        "inside a matching 'with <lock>:' block"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> list[Finding]:
        guards = _collect_guards(module)
        if not guards:
            return []
        attr_guards: dict[str, list[_Guard]] = {}
        global_guards: dict[str, list[_Guard]] = {}
        for guard in guards:
            table = attr_guards if guard.is_attribute else global_guards
            table.setdefault(guard.name, []).append(guard)

        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and node.attr in attr_guards:
                findings.extend(
                    self._check_access(
                        module, node, attr_guards[node.attr], node.attr
                    )
                )
            elif isinstance(node, ast.Name) and node.id in global_guards:
                findings.extend(
                    self._check_access(
                        module, node, global_guards[node.id], node.id
                    )
                )
        return findings

    def _check_access(
        self,
        module: ModuleInfo,
        node: ast.AST,
        guards: list[_Guard],
        symbol: str,
    ) -> list[Finding]:
        lineno = getattr(node, "lineno", 0)
        for guard in guards:
            lo, hi = guard.decl_span
            if lo <= lineno <= hi:
                return []  # the declaration itself
        if _in_constructor(module, node):
            return []
        required = {guard.required_lock(node) for guard in guards}
        if _held_locks(module, node) & required:
            return []
        wanted = " or ".join(f"'with {lock}:'" for lock in sorted(required))
        return [
            Finding(
                path=module.relpath,
                line=lineno,
                col=getattr(node, "col_offset", 0),
                rule=self.name,
                message=(
                    f"'{ast.unparse(node)}' is guarded by "
                    f"{sorted(g.lock for g in guards)!r} but accessed "
                    f"outside {wanted}"
                ),
                symbol=symbol,
            )
        ]


def _collect_guards(module: ModuleInfo) -> list[_Guard]:
    guards: list[_Guard] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        lock = None
        end = node.end_lineno or node.lineno
        for lineno in range(node.lineno, end + 1):
            match = _GUARDED_RE.search(module.comment_on(lineno))
            if match:
                lock = match.group(1)
                break
        if lock is None:
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                guards.append(
                    _Guard(target.attr, lock, True, (node.lineno, end))
                )
            elif isinstance(target, ast.Name):
                guards.append(
                    _Guard(target.id, lock, False, (node.lineno, end))
                )
    return guards


def _held_locks(module: ModuleInfo, node: ast.AST) -> set[str]:
    """Lock expressions lexically held at ``node`` (enclosing withs)."""
    held: set[str] = set()
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                held.add(ast.unparse(item.context_expr))
    return held


def _in_constructor(module: ModuleInfo, node: ast.AST) -> bool:
    """True for ``self.<attr>`` accesses inside ``__init__``."""
    if not (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return False
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor.name == "__init__"
    return False


__all__ = ["LockDisciplineRule"]
