"""``error-taxonomy`` — library code raises :class:`ReproError` subclasses.

Every ``raise`` statement must either re-raise (bare ``raise`` or
``raise exc`` of a caught variable) or construct a class from the
project taxonomy in ``src/repro/errors.py``. Raising builtin
exceptions (``ValueError``, ``RuntimeError``, ...) is flagged: callers
are promised that library failures are catchable as ``ReproError``.

A handful of builtins carry protocol meaning and stay allowed:
``NotImplementedError`` (abstract hooks), ``StopIteration``
(generators), ``SystemExit`` (CLI entry points), ``KeyboardInterrupt``.
``AttributeError`` from a module ``__getattr__`` is a protocol raise
too, but rare enough that those sites carry explicit suppressions.
"""

from __future__ import annotations

import ast
import builtins

from repro.analysis.base import ModuleInfo, Project, Rule, register
from repro.analysis.findings import Finding

_BUILTIN_EXCEPTIONS = frozenset(
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)

_ALLOWED_BUILTINS = frozenset(
    {"NotImplementedError", "StopIteration", "SystemExit", "KeyboardInterrupt"}
)


@register
class ErrorTaxonomyRule(Rule):
    name = "error-taxonomy"
    description = (
        "every raise constructs a ReproError subclass or re-raises; "
        "no builtin exceptions in library code"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> list[Finding]:
        taxonomy = _taxonomy_classes(project)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise):
                continue
            name = _raised_name(node)
            if name is None:
                continue  # bare raise, raise exc.with_traceback(...), ...
            if name in taxonomy or name in _ALLOWED_BUILTINS:
                continue
            if name not in _BUILTIN_EXCEPTIONS:
                continue  # custom class or re-raised variable
            if isinstance(node.exc, ast.Name):
                # ``raise ValueError`` without a call is pathological
                # enough to flag, but ``raise exc`` where ``exc``
                # merely shadows a builtin name is not worth chasing;
                # only flag constructed (called) builtins by name.
                continue
            findings.append(
                Finding(
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.name,
                    message=(
                        f"raises builtin {name}; use a ReproError "
                        f"subclass from repro.errors instead"
                    ),
                    symbol=name,
                )
            )
        return findings


def _raised_name(node: ast.Raise) -> str | None:
    """Class name a ``raise`` constructs, if statically evident."""
    exc = node.exc
    if exc is None:
        return None
    if isinstance(exc, ast.Call):
        func = exc.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None
    if isinstance(exc, ast.Name):
        return exc.id
    return None


def _taxonomy_classes(project: Project) -> frozenset[str]:
    """Names of ReproError and its transitive subclasses.

    Parsed from ``src/repro/errors.py`` under the project root (the
    already-loaded module is reused when it is part of the lint run),
    so the rule never imports the code it is checking.
    """
    cached = project.cache.get("error-taxonomy.classes")
    if cached is not None:
        return cached  # type: ignore[return-value]
    module = project.module("src/repro/errors.py")
    if module is not None:
        tree: ast.Module | None = module.tree
    else:
        path = project.root / "src" / "repro" / "errors.py"
        tree = ast.parse(path.read_text(encoding="utf-8")) if path.is_file() else None
    names: set[str] = {"ReproError"}
    if tree is not None:
        # Iterate to a fixed point so order of class definitions does
        # not matter (it does not today, but cheap to be robust).
        changed = True
        while changed:
            changed = False
            for node in tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                if node.name in names:
                    continue
                bases = {
                    base.id
                    for base in node.bases
                    if isinstance(base, ast.Name)
                }
                if bases & names:
                    names.add(node.name)
                    changed = True
    result = frozenset(names)
    project.cache["error-taxonomy.classes"] = result
    return result


__all__ = ["ErrorTaxonomyRule"]
