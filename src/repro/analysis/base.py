"""Core of the ``repro lint`` framework.

Three pieces live here:

* :class:`ModuleInfo` — one parsed source file: AST, a parent map for
  upward walks, the comment text per line (via :mod:`tokenize`, so
  string literals containing ``#`` are never misread), and the
  per-line suppression table parsed from ``# repro-lint:
  disable=<rule>[,<rule>...]`` comments.
* :class:`Project` — the set of modules under analysis plus the
  project root, so project-scoped rules (fleet manifests, taxonomy
  extraction) know where to look.
* :class:`Rule` — the plug-in base class and its registry. Rules are
  registered by decorating the class with :func:`register`; the CLI
  and runner look them up by name.

A suppression comment applies to findings on its own line or, when the
line holds nothing but the comment, to the following line — mirroring
how ``noqa``-style tools scope inline waivers.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import AnalysisError
from repro.analysis.findings import Finding

#: ``# repro-lint: disable=rule-a,rule-b`` (whitespace-tolerant).
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s-]+)"
)


class ModuleInfo:
    """A parsed source module plus the lookup tables rules need."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        try:
            self.tree: ast.Module = ast.parse(source, filename=relpath)
        except SyntaxError as exc:
            raise AnalysisError(f"cannot parse {relpath}: {exc}") from exc
        self.comments: dict[int, str] = _comment_map(source)
        #: Lines that contain only a comment (candidates for
        #: next-line suppression scope).
        self._comment_only = {
            lineno
            for lineno, _text in self.comments.items()
            if _line_is_comment_only(source, lineno)
        }
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self._suppressions = self._parse_suppressions()

    # -- suppressions --------------------------------------------------
    def _parse_suppressions(self) -> dict[int, set[str]]:
        table: dict[int, set[str]] = {}
        for lineno, text in self.comments.items():
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            rules = {
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            }
            table.setdefault(lineno, set()).update(rules)
            if lineno in self._comment_only:
                # A standalone suppression comment waives the next line.
                table.setdefault(lineno + 1, set()).update(rules)
        return table

    def suppressed(self, rule: str, lineno: int) -> bool:
        """True when ``rule`` findings on ``lineno`` are waived."""
        rules = self._suppressions.get(lineno, ())
        return rule in rules or "all" in rules

    # -- navigation helpers -------------------------------------------
    def ancestors(self, node: ast.AST):
        """Yield ``node``'s AST ancestors, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def comment_on(self, lineno: int) -> str:
        return self.comments.get(lineno, "")


def _comment_map(source: str) -> dict[int, str]:
    """Map line number -> comment text, tokenize-accurate."""
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except tokenize.TokenizeError:  # pragma: no cover - parse guards first
        pass
    return comments


def _line_is_comment_only(source: str, lineno: int) -> bool:
    lines = source.splitlines()
    if not 1 <= lineno <= len(lines):
        return False
    return lines[lineno - 1].lstrip().startswith("#")


@dataclass
class Project:
    """Everything a project-scoped rule may inspect."""

    root: Path
    modules: list[ModuleInfo] = field(default_factory=list)
    #: Per-rule scratch space (e.g. the parsed error taxonomy) so
    #: expensive derivations run once per lint invocation.
    cache: dict[str, object] = field(default_factory=dict)

    def module(self, relpath: str) -> ModuleInfo | None:
        for module in self.modules:
            if module.relpath == relpath:
                return module
        return None


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`name` / :attr:`description` and override one
    or both hooks. ``check_module`` runs once per source file;
    ``check_project`` runs once per invocation with the full module
    set (for cross-file or non-Python inputs such as ``fleet.yaml``).
    """

    name: str = ""
    description: str = ""

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> list[Finding]:
        return []

    def check_project(self, project: Project) -> list[Finding]:
        return []


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.name:
        raise AnalysisError(f"rule class {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise AnalysisError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def rule_names() -> list[str]:
    _load_builtin_rules()
    return sorted(_REGISTRY)


def get_rules(names: list[str] | None = None) -> list[Rule]:
    """Instantiate the named rules (all registered rules by default)."""
    _load_builtin_rules()
    if names is None:
        return [_REGISTRY[name]() for name in sorted(_REGISTRY)]
    rules = []
    for name in names:
        if name not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise AnalysisError(f"unknown rule {name!r} (known: {known})")
        rules.append(_REGISTRY[name]())
    return rules


def _load_builtin_rules() -> None:
    # Import for the registration side effect; idempotent.
    from repro.analysis import rules  # noqa: F401


__all__ = [
    "ModuleInfo",
    "Project",
    "Rule",
    "get_rules",
    "register",
    "rule_names",
]
